"""Named feature-map stacks.

A :class:`FeatureStack` pairs a ``(C, H, W)`` float array with channel
names, so models and ablations can select channels symbolically instead of
by magic index.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np


@dataclass
class FeatureStack:
    """An ordered, named stack of equally sized 2D feature maps."""

    channels: list[str]
    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 3:
            raise ValueError(f"data must be (C, H, W), got shape {self.data.shape}")
        if len(self.channels) != self.data.shape[0]:
            raise ValueError(
                f"{len(self.channels)} channel names for {self.data.shape[0]} maps"
            )
        if len(set(self.channels)) != len(self.channels):
            raise ValueError("channel names must be unique")

    # -- basic access --------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return self.data.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Spatial shape (H, W)."""
        return self.data.shape[1], self.data.shape[2]

    def __getitem__(self, channel: str) -> np.ndarray:
        return self.data[self.channels.index(channel)]

    def __contains__(self, channel: str) -> bool:
        return channel in self.channels

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dict(cls, maps: dict[str, np.ndarray]) -> "FeatureStack":
        """Stack maps in dict insertion order."""
        if not maps:
            raise ValueError("cannot build an empty feature stack")
        channels = list(maps)
        data = np.stack([np.asarray(maps[c], dtype=float) for c in channels])
        return cls(channels=channels, data=data)

    def select(self, channels: list[str]) -> "FeatureStack":
        """A new stack with only the requested channels, in that order."""
        indices = [self.channels.index(c) for c in channels]
        return FeatureStack(channels=list(channels), data=self.data[indices].copy())

    def concat(self, other: "FeatureStack") -> "FeatureStack":
        """Channel-wise concatenation of two stacks with matching shapes."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return FeatureStack(
            channels=self.channels + other.channels,
            data=np.concatenate([self.data, other.data], axis=0),
        )

    # -- normalisation ----------------------------------------------------------

    def normalized(self, mode: str = "minmax", eps: float = 1e-12) -> "FeatureStack":
        """Per-channel normalisation.

        ``"minmax"`` maps each channel to [0, 1]; ``"zscore"`` standardises
        to zero mean / unit variance.  Constant channels map to zero.
        """
        if mode not in ("minmax", "zscore"):
            raise ValueError(f"unknown normalisation mode {mode!r}")
        out = np.empty_like(self.data)
        for i in range(self.num_channels):
            channel = self.data[i]
            if mode == "minmax":
                lo, hi = channel.min(), channel.max()
                out[i] = (channel - lo) / (hi - lo) if hi - lo > eps else 0.0
            else:
                mu, sigma = channel.mean(), channel.std()
                out[i] = (channel - mu) / sigma if sigma > eps else 0.0
        return FeatureStack(channels=list(self.channels), data=out)

    # -- serialisation -----------------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the stack to a compressed ``.npz`` file."""
        np.savez_compressed(
            path, data=self.data, channels=np.array(self.channels, dtype=object)
        )

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "FeatureStack":
        """Load a stack written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as archive:
            return cls(
                channels=[str(c) for c in archive["channels"]],
                data=archive["data"],
            )
