"""Effective distance to the voltage sources.

"The effective distance, calculated as the reciprocal of the sum of the
reciprocals of Euclidean distances, measures proximity to voltage sources"
(Section III-C) — the harmonic combination used by IREDGe and the
ICCAD-2023 data release:

    d_eff(p) = 1 / sum_i (1 / ||p - pad_i||)

Pixels containing a pad get distance 0.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid


def effective_distance_map(
    geometry: GridGeometry, grid: PowerGrid, eps_nm: float = 1.0
) -> np.ndarray:
    """Per-pixel effective (harmonic) distance to all pads, in nanometres.

    Parameters
    ----------
    eps_nm:
        Floor applied to individual distances so a pad-containing pixel
        yields 0-ish distance instead of a division by zero.
    """
    pads = grid.pads()
    if not pads:
        raise ValueError("cannot compute effective distance without pads")
    rows, cols = geometry.shape
    ys = (np.arange(rows) + 0.5) * geometry.pixel_h_nm
    xs = (np.arange(cols) + 0.5) * geometry.pixel_w_nm
    grid_x, grid_y = np.meshgrid(xs, ys)

    inverse_sum = np.zeros((rows, cols), dtype=float)
    for pad in pads:
        if pad.structured is None:
            continue
        dx = grid_x - pad.structured.x
        dy = grid_y - pad.structured.y
        distance = np.maximum(np.hypot(dx, dy), eps_nm)
        inverse_sum += 1.0 / distance
    if not inverse_sum.any():
        raise ValueError("no structured pads; effective distance undefined")
    # Guard the final division explicitly: pads astronomically far from a
    # pixel can underflow the inverse sum to exactly 0, which would emit
    # inf into the feature channel.
    tiny = np.finfo(float).tiny
    underflowed = int((inverse_sum < tiny).sum())
    if underflowed:
        warnings.warn(
            f"effective_distance_map: {underflowed} pixel(s) underflowed the "
            "harmonic sum; clamping to the representable maximum distance",
            RuntimeWarning,
            stacklevel=2,
        )
    return 1.0 / np.maximum(inverse_sum, tiny)
