"""Assembly of the full numerical-structural fusion stack.

"Hierarchical numerical and structure features together make up features
for ML (P_map_1, ..., P_map_n)" (Section III-C).  The two ablation switches
correspond to the Fig. 8 variants: ``use_numerical=False`` drops the rough
solver maps ("w/o Num. Solu."), ``hierarchical=False`` collapses to the
flat three-channel representation earlier ML methods use ("w/o Hier.
Feat.").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.current import layer_current_maps, load_current_map
from repro.features.density import pdn_density_map
from repro.features.distance import effective_distance_map
from repro.features.maps import FeatureStack
from repro.features.numerical import numerical_layer_maps
from repro.features.resistance import resistance_map, shortest_path_resistance_map
from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid


@dataclass(frozen=True)
class FeatureConfig:
    """Which feature families enter the stack.

    Attributes
    ----------
    use_numerical:
        Include per-layer rough-solution IR maps (needs ``voltages``).
    hierarchical:
        Per-layer current/numerical maps plus resistance features; when
        off, only the flat current / effective-distance / density triple
        is produced (the representation of IREDGe-era models).
    normalize:
        Min-max normalise the *structural* channels.  Numerical channels
        are never min-maxed — their absolute scale carries the rough
        solution's physical information — they are multiplied by
        ``numerical_scale`` instead.
    numerical_scale:
        Fixed multiplier for numerical (volt-valued) channels; keeping it
        equal to the trainer's ``label_scale`` puts rough solutions and
        labels in the same units, so the residual correction is well
        conditioned.
    """

    use_numerical: bool = True
    hierarchical: bool = True
    normalize: bool = True
    numerical_scale: float = 20.0


def channel_names(config: FeatureConfig, layers: list[int]) -> list[str]:
    """The channel list :func:`assemble_feature_stack` will produce."""
    names: list[str] = []
    if config.use_numerical:
        if config.hierarchical:
            names += [f"numerical_m{layer}" for layer in layers]
        else:
            names.append("numerical")
    if config.hierarchical:
        names += [f"current_m{layer}" for layer in layers]
        names += [
            "effective_distance",
            "pdn_density",
            "resistance",
            "shortest_path_resistance",
        ]
    else:
        names += ["current", "effective_distance", "pdn_density"]
    return names


def assemble_feature_stack(
    geometry: GridGeometry,
    grid: PowerGrid,
    config: FeatureConfig | None = None,
    voltages: np.ndarray | None = None,
    supply_voltage: float | None = None,
) -> FeatureStack:
    """Build the ML input stack for one design.

    Parameters
    ----------
    voltages:
        Full per-grid-node rough solution; required when
        ``config.use_numerical`` is on.
    supply_voltage:
        Pad voltage for converting voltages to drops; required with
        ``voltages``.
    """
    config = config or FeatureConfig()
    maps: dict[str, np.ndarray] = {}
    layers = grid.layers_present()

    if config.use_numerical:
        if voltages is None or supply_voltage is None:
            raise ValueError(
                "use_numerical=True requires voltages and supply_voltage"
            )
        layer_maps = numerical_layer_maps(
            geometry, grid, voltages, supply_voltage, layers=layers
        )
        if config.hierarchical:
            for layer in layers:
                maps[f"numerical_m{layer}"] = layer_maps[layer]
        else:
            # Flat variant: bottom-layer rough drop only.
            maps["numerical"] = layer_maps[min(layers)]

    if config.hierarchical:
        current_maps = layer_current_maps(geometry, grid)
        for layer in layers:
            maps[f"current_m{layer}"] = current_maps.get(
                layer, np.zeros(geometry.shape)
            )
        maps["effective_distance"] = effective_distance_map(geometry, grid)
        maps["pdn_density"] = pdn_density_map(geometry, grid)
        maps["resistance"] = resistance_map(geometry, grid)
        maps["shortest_path_resistance"] = shortest_path_resistance_map(
            geometry, grid
        )
    else:
        maps["current"] = load_current_map(geometry, grid)
        maps["effective_distance"] = effective_distance_map(geometry, grid)
        maps["pdn_density"] = pdn_density_map(geometry, grid)

    stack = FeatureStack.from_dict(maps)
    expected = channel_names(config, layers)
    if stack.channels != expected:
        raise AssertionError(
            f"channel order drifted: {stack.channels} != {expected}"
        )
    if config.normalize:
        data = stack.data.copy()
        for i, channel in enumerate(stack.channels):
            if channel.startswith("numerical"):
                data[i] = data[i] * config.numerical_scale
            else:
                lo, hi = data[i].min(), data[i].max()
                data[i] = (data[i] - lo) / (hi - lo) if hi - lo > 1e-12 else 0.0
        stack = FeatureStack(channels=list(stack.channels), data=data)
    return stack
