"""Resistance-derived structural maps.

Two PG-structure-level features from Section III-C:

- the **resistance map** "distributes the resistance of each resistor
  across overlapping grids": every wire's resistance is spread uniformly
  over the pixels its straight-line span crosses;
- the **shortest path resistance map** "is the average of the cumulative
  resistance from each node to voltage sources": multi-source Dijkstra over
  the wire-resistance graph, rasterised with a per-pixel mean.

Both hot paths are vectorised.  Axis-aligned wire spans (the entire PG in
practice) are enumerated with a repeat/arange scatter that accumulates in
the same wire-then-pixel order as the old Python loop, so sums stay
bitwise identical; the shortest-path pass runs scipy's multi-source
Dijkstra over a min-deduplicated CSR adjacency (parallel wires keep the
*smallest* resistance — CSR construction would otherwise sum duplicates,
which is wrong for path weights).
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import pixel_coords, scatter_to_image


def _pixels_on_span(
    geometry: GridGeometry,
    start: tuple[int, int],
    end: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Pixels visited by the straight segment from *start* to *end* (nm).

    Returns ``(rows, cols)`` index arrays ready for fancy indexing.  PG
    wires are axis-aligned, so simple per-axis stepping at pixel
    resolution is exact; diagonal segments (vias render as points) are
    sampled at pixel pitch and deduplicated in (row, col) order.
    """
    (x0, y0), (x1, y1) = start, end
    r0, c0 = geometry.to_pixel(x0, y0)
    r1, c1 = geometry.to_pixel(x1, y1)
    if (r0, c0) == (r1, c1):
        return np.array([r0], dtype=np.int64), np.array([c0], dtype=np.int64)
    if r0 == r1:
        cols = np.arange(min(c0, c1), max(c0, c1) + 1, dtype=np.int64)
        return np.full_like(cols, r0), cols
    if c0 == c1:
        rows = np.arange(min(r0, r1), max(r0, r1) + 1, dtype=np.int64)
        return rows, np.full_like(rows, c0)
    steps = max(abs(r1 - r0), abs(c1 - c0))
    t = np.arange(steps + 1, dtype=np.float64)
    rows = np.rint(r0 + (r1 - r0) * t / steps).astype(np.int64)
    cols = np.rint(c0 + (c1 - c0) * t / steps).astype(np.int64)
    n_cols = geometry.shape[1]
    flat = np.unique(rows * n_cols + cols)  # sorted (row, col) pairs
    return flat // n_cols, flat % n_cols


def resistance_map(geometry: GridGeometry, grid: PowerGrid) -> np.ndarray:
    """Total wire resistance per pixel, each wire spread over its span.

    Wires with non-finite or negative resistance are skipped with an
    explicit warning rather than letting NaN/garbage leak into the feature
    channel (a repaired netlist should never contain any, but the map must
    stay finite even on raw inputs).
    """
    shape = geometry.shape
    node_a, node_b, res = grid.wire_arrays()
    x, y, _, structured = grid.node_arrays()

    usable = np.isfinite(res) & (res >= 0)
    skipped = int(np.count_nonzero(~usable))
    usable &= structured[node_a] & structured[node_b]

    r0, c0 = pixel_coords(geometry, x[node_a[usable]], y[node_a[usable]])
    r1, c1 = pixel_coords(geometry, x[node_b[usable]], y[node_b[usable]])
    res = res[usable]

    axis = (r0 == r1) | (c0 == c1)
    image = np.zeros(shape, dtype=float)
    if np.any(axis):
        row_lo = np.minimum(r0[axis], r1[axis])
        col_lo = np.minimum(c0[axis], c1[axis])
        d_row = np.abs(r1[axis] - r0[axis])
        d_col = np.abs(c1[axis] - c0[axis])
        lengths = d_row + d_col + 1
        total = int(lengths.sum())
        # Enumerate every (wire, pixel-offset) pair flat: offset k of wire w
        # lands at position starts[w] + k.
        starts = np.cumsum(lengths) - lengths
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        rows = np.repeat(row_lo, lengths) + offsets * np.repeat(d_row > 0, lengths)
        cols = np.repeat(col_lo, lengths) + offsets * np.repeat(d_col > 0, lengths)
        weights = np.repeat(res[axis] / lengths, lengths)
        image += np.bincount(
            rows * shape[1] + cols, weights=weights, minlength=shape[0] * shape[1]
        ).reshape(shape)
    if not np.all(axis):
        # Diagonal spans (exotic decks only): per-wire sampling fallback.
        x_a, y_a = x[node_a[usable]][~axis], y[node_a[usable]][~axis]
        x_b, y_b = x[node_b[usable]][~axis], y[node_b[usable]][~axis]
        for k, resistance in enumerate(res[~axis]):
            rows, cols = _pixels_on_span(
                geometry,
                (int(x_a[k]), int(y_a[k])),
                (int(x_b[k]), int(y_b[k])),
            )
            np.add.at(image, (rows, cols), resistance / max(len(rows), 1))
    if skipped:
        warnings.warn(
            f"resistance_map: skipped {skipped} wire(s) with non-finite or "
            "negative resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    return image


def _shortest_path_resistances_python(grid: PowerGrid) -> np.ndarray:
    """Heap Dijkstra over the PowerGrid adjacency (reference / fallback).

    Retained for wire sets scipy's Dijkstra rejects (negative weights):
    matches the historical semantics exactly — negative or NaN edges
    simply relax like any other candidate.
    """
    import heapq

    distances = np.full(grid.num_nodes, np.inf, dtype=float)
    heap: list[tuple[float, int]] = []
    for pad in grid.pads():
        distances[pad.index] = 0.0
        heapq.heappush(heap, (0.0, pad.index))
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances[node]:
            continue
        for wire in grid.wires_at(node):
            other = wire.other(node)
            candidate = dist + wire.resistance
            if candidate < distances[other]:
                distances[other] = candidate
                heapq.heappush(heap, (candidate, other))
    return distances


def shortest_path_resistances(grid: PowerGrid) -> np.ndarray:
    """Per-node shortest-path resistance to the nearest pad.

    Multi-source Dijkstra with wire resistance as edge weight; floating
    nodes get ``inf``.  The fast path builds a min-deduplicated CSR
    adjacency and runs scipy's compiled Dijkstra from all pads at once;
    grids with negative-resistance wires (unrepaired garbage) fall back
    to the Python heap implementation, which tolerates them.
    """
    n = grid.num_nodes
    pads = np.fromiter(
        (node.index for node in grid.pads()), dtype=np.int64
    )
    if n == 0 or pads.size == 0:
        distances = np.full(n, np.inf, dtype=float)
        distances[pads] = 0.0
        return distances
    node_a, node_b, res = grid.wire_arrays()
    if res.size and (res < 0).any():
        return _shortest_path_resistances_python(grid)
    if res.size:
        # Parallel wires between the same node pair must keep the MINIMUM
        # resistance: coo->csr construction would sum duplicates, which is
        # wrong for path weights.
        lo = np.minimum(node_a, node_b)
        hi = np.maximum(node_a, node_b)
        key = lo * np.int64(n) + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        group_starts = np.flatnonzero(
            np.r_[True, key_sorted[1:] != key_sorted[:-1]]
        )
        min_res = np.minimum.reduceat(res[order], group_starts)
        key_unique = key_sorted[group_starts]
        graph = sp.csr_matrix(
            (min_res, (key_unique // n, key_unique % n)), shape=(n, n)
        )
    else:
        graph = sp.csr_matrix((n, n), dtype=float)
    return dijkstra(graph, directed=False, indices=pads, min_only=True)


def shortest_path_resistance_map(
    geometry: GridGeometry,
    grid: PowerGrid,
    layer: int | None = 1,
) -> np.ndarray:
    """Per-pixel mean shortest-path resistance to the pads.

    Parameters
    ----------
    layer:
        Restrict to one metal layer's nodes (default: bottom layer, whose
        cells experience the drop); ``None`` averages over all layers.
    """
    distances = shortest_path_resistances(grid)
    x, y, layers, structured = grid.node_arrays()
    if layer is None:
        selected = structured
    else:
        selected = structured & (layers == layer)
    finite = selected & np.isfinite(distances)
    num_selected = int(np.count_nonzero(selected))
    num_finite = int(np.count_nonzero(finite))
    if num_selected and not num_finite:
        # Every node on the layer is floating: emit a defined (zero) map
        # with a warning instead of dividing by an empty rasterisation.
        warnings.warn(
            "shortest_path_resistance_map: no node has a finite path "
            "resistance to a pad; returning zeros",
            RuntimeWarning,
            stacklevel=2,
        )
        return np.zeros(geometry.shape, dtype=float)
    dropped = num_selected - num_finite
    if dropped:
        warnings.warn(
            f"shortest_path_resistance_map: ignoring {dropped} floating "
            "node(s) with infinite path resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    rows, cols = pixel_coords(geometry, x[finite], y[finite])
    return scatter_to_image(
        geometry.shape, rows, cols, distances[finite], reduce="mean"
    )
