"""Resistance-derived structural maps.

Two PG-structure-level features from Section III-C:

- the **resistance map** "distributes the resistance of each resistor
  across overlapping grids": every wire's resistance is spread uniformly
  over the pixels its straight-line span crosses;
- the **shortest path resistance map** "is the average of the cumulative
  resistance from each node to voltage sources": multi-source Dijkstra over
  the wire-resistance graph, rasterised with a per-pixel mean.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import rasterize


def _pixels_on_span(
    geometry: GridGeometry,
    start: tuple[int, int],
    end: tuple[int, int],
) -> list[tuple[int, int]]:
    """Pixels visited by the straight segment from *start* to *end* (nm).

    PG wires are axis-aligned, so simple per-axis stepping at pixel
    resolution is exact; diagonal segments (vias render as points) are
    sampled at pixel pitch.
    """
    (x0, y0), (x1, y1) = start, end
    r0, c0 = geometry.to_pixel(x0, y0)
    r1, c1 = geometry.to_pixel(x1, y1)
    if (r0, c0) == (r1, c1):
        return [(r0, c0)]
    if r0 == r1:
        lo, hi = sorted((c0, c1))
        return [(r0, c) for c in range(lo, hi + 1)]
    if c0 == c1:
        lo, hi = sorted((r0, r1))
        return [(r, c0) for r in range(lo, hi + 1)]
    steps = max(abs(r1 - r0), abs(c1 - c0))
    pixels = {
        (
            round(r0 + (r1 - r0) * t / steps),
            round(c0 + (c1 - c0) * t / steps),
        )
        for t in range(steps + 1)
    }
    return sorted(pixels)


def resistance_map(geometry: GridGeometry, grid: PowerGrid) -> np.ndarray:
    """Total wire resistance per pixel, each wire spread over its span.

    Wires with non-finite or negative resistance are skipped with an
    explicit warning rather than letting NaN/garbage leak into the feature
    channel (a repaired netlist should never contain any, but the map must
    stay finite even on raw inputs).
    """
    image = np.zeros(geometry.shape, dtype=float)
    skipped = 0
    for wire in grid.wires:
        if not np.isfinite(wire.resistance) or wire.resistance < 0:
            skipped += 1
            continue
        node_a = grid.node(wire.node_a)
        node_b = grid.node(wire.node_b)
        if node_a.structured is None or node_b.structured is None:
            continue
        pixels = _pixels_on_span(
            geometry, node_a.structured.position, node_b.structured.position
        )
        share = wire.resistance / len(pixels)
        for row, col in pixels:
            image[row, col] += share
    if skipped:
        warnings.warn(
            f"resistance_map: skipped {skipped} wire(s) with non-finite or "
            "negative resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    return image


def shortest_path_resistances(grid: PowerGrid) -> np.ndarray:
    """Per-node shortest-path resistance to the nearest pad.

    Multi-source Dijkstra with wire resistance as edge weight, implemented
    on the PowerGrid adjacency directly (no graph copy).  Floating nodes
    get ``inf``.
    """
    import heapq

    distances = np.full(grid.num_nodes, np.inf, dtype=float)
    heap: list[tuple[float, int]] = []
    for pad in grid.pads():
        distances[pad.index] = 0.0
        heapq.heappush(heap, (0.0, pad.index))
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances[node]:
            continue
        for wire in grid.wires_at(node):
            other = wire.other(node)
            candidate = dist + wire.resistance
            if candidate < distances[other]:
                distances[other] = candidate
                heapq.heappush(heap, (candidate, other))
    return distances


def shortest_path_resistance_map(
    geometry: GridGeometry,
    grid: PowerGrid,
    layer: int | None = 1,
) -> np.ndarray:
    """Per-pixel mean shortest-path resistance to the pads.

    Parameters
    ----------
    layer:
        Restrict to one metal layer's nodes (default: bottom layer, whose
        cells experience the drop); ``None`` averages over all layers.
    """
    distances = shortest_path_resistances(grid)
    if layer is None:
        nodes = [n for n in grid.nodes if n.structured is not None]
    else:
        nodes = grid.nodes_on_layer(layer)
    finite_nodes = [n for n in nodes if np.isfinite(distances[n.index])]
    if nodes and not finite_nodes:
        # Every node on the layer is floating: emit a defined (zero) map
        # with a warning instead of dividing by an empty rasterisation.
        warnings.warn(
            "shortest_path_resistance_map: no node has a finite path "
            "resistance to a pad; returning zeros",
            RuntimeWarning,
            stacklevel=2,
        )
        return np.zeros(geometry.shape, dtype=float)
    dropped = len(nodes) - len(finite_nodes)
    if dropped:
        warnings.warn(
            f"shortest_path_resistance_map: ignoring {dropped} floating "
            "node(s) with infinite path resistance",
            RuntimeWarning,
            stacklevel=2,
        )
    values = np.array([distances[n.index] for n in finite_nodes], dtype=float)
    return rasterize(geometry, finite_nodes, values, reduce="mean")
