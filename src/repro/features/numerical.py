"""Hierarchical numerical feature maps from rough solver solutions.

Section III-C: "we construct hierarchical numerical features based on the
numerical solution, according to the layer they belong to and their 2D
spatial coordinate ... Each metal layer corresponds to a generated feature
map."  Given a (rough) per-node voltage vector, this module emits one
IR-drop image per metal layer.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import layer_values_image


def numerical_layer_maps(
    geometry: GridGeometry,
    grid: PowerGrid,
    voltages: np.ndarray,
    supply_voltage: float,
    layers: list[int] | None = None,
) -> dict[int, np.ndarray]:
    """Per-layer rough IR-drop images from a per-grid-node voltage vector.

    Parameters
    ----------
    voltages:
        Full per-grid-node voltages (e.g. ``ReducedSystem.scatter`` of a
        rough AMG-PCG iterate).
    supply_voltage:
        Pad voltage; maps hold ``vdd - v`` so hotter = larger drop.
    layers:
        Which metal layers to emit (default: every layer present).
    """
    if voltages.shape != (grid.num_nodes,):
        raise ValueError(
            f"expected {grid.num_nodes} voltages, got shape {voltages.shape}"
        )
    bad = ~np.isfinite(voltages)
    if bad.any():
        # A guarded cascade never hands us NaN, but a caller feeding raw
        # iterates might: replace with the supply level (zero drop) loudly
        # rather than rasterising NaN into the model input.
        warnings.warn(
            f"numerical_layer_maps: {int(bad.sum())} non-finite voltage(s) "
            "replaced with the supply level (zero drop)",
            RuntimeWarning,
            stacklevel=2,
        )
        voltages = np.where(bad, supply_voltage, voltages)
    drop = supply_voltage - voltages
    target_layers = layers if layers is not None else grid.layers_present()
    return {
        layer: layer_values_image(geometry, grid, drop, layer=layer, reduce="max")
        for layer in target_layers
    }
