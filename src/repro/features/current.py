"""Current maps.

"The current map for each layer, representing the current distribution, is
allocated proportionally based on the contribution from each layer, which
is tied to resistance" (Section III-C).  The bottom-layer load map is the
measured drain current per pixel; upper-layer maps redistribute it by each
layer's conductance share, smoothed to that layer's pitch — upper metals
see the same demand but aggregated over wider regions.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import rasterize


def load_current_map(geometry: GridGeometry, grid: PowerGrid) -> np.ndarray:
    """Per-pixel total drain current (A), summed over co-located loads."""
    loads = grid.loads()
    values = np.array([n.load_current for n in loads], dtype=float)
    return rasterize(geometry, loads, values, reduce="sum")


def _layer_conductance_shares(geometry: GridGeometry) -> dict[int, float]:
    """Each layer's share of total stack conductance (from sheet resistance)."""
    tiny = np.finfo(float).tiny
    conductances = {
        info.index: 1.0 / max(info.sheet_resistance, tiny)
        for info in geometry.layers
    }
    total = max(sum(conductances.values()), tiny)
    return {layer: g / total for layer, g in conductances.items()}


def layer_current_maps(
    geometry: GridGeometry, grid: PowerGrid
) -> dict[int, np.ndarray]:
    """Per-layer current maps.

    Layer ℓ's map is the load map scaled by ℓ's conductance share and
    box-smoothed with a window of the layer pitch (in pixels), modelling
    how coarser upper layers spread current over wider regions.
    """
    base = load_current_map(geometry, grid)
    shares = _layer_conductance_shares(geometry)
    maps: dict[int, np.ndarray] = {}
    for info in geometry.layers:
        window = max(1, int(round(info.pitch_nm / max(geometry.pixel_w_nm, 1))))
        smoothed = uniform_filter(base, size=window, mode="nearest")
        maps[info.index] = shares[info.index] * smoothed
    return maps
