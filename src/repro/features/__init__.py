"""Hierarchical numerical-structural feature maps (Section III-C).

Each PG design becomes a stack of 2D images over the die:

- per-metal-layer *numerical* IR-drop maps from the rough AMG-PCG solution,
- per-layer *current* maps (load current allocated by layer conductance),
- the *effective distance* map (reciprocal of summed reciprocal distances
  to the pads),
- the *PDN density* map (stripe density per pixel),
- the *resistance* map (each resistor spread over the pixels it crosses),
- the *shortest-path resistance* map (Dijkstra resistance to the pads).

:func:`~repro.features.fusion.assemble_feature_stack` builds the full
fusion stack; ablation switches reproduce Fig. 8 variants.
"""

from repro.features.current import layer_current_maps, load_current_map
from repro.features.density import pdn_density_map
from repro.features.distance import effective_distance_map
from repro.features.fusion import FeatureConfig, assemble_feature_stack
from repro.features.maps import FeatureStack
from repro.features.numerical import numerical_layer_maps
from repro.features.resistance import resistance_map, shortest_path_resistance_map

__all__ = [
    "FeatureConfig",
    "FeatureStack",
    "assemble_feature_stack",
    "effective_distance_map",
    "layer_current_maps",
    "load_current_map",
    "numerical_layer_maps",
    "pdn_density_map",
    "resistance_map",
    "shortest_path_resistance_map",
]
