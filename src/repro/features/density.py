"""PDN density map.

"The PDN density map is derived from the average PDN pitch within each
grid" (Section III-C).  Density here is the count of PG nodes (stripe
intersections / via landings) per pixel, optionally per layer; denser
pixels have finer local pitch and hence lower local resistance.
"""

from __future__ import annotations

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import pixel_coords, scatter_to_image


def pdn_density_map(
    geometry: GridGeometry, grid: PowerGrid, layer: int | None = None
) -> np.ndarray:
    """Node density per pixel.

    Parameters
    ----------
    layer:
        Restrict to one metal layer; ``None`` counts nodes of all layers.
    """
    x, y, layers, structured = grid.node_arrays()
    selected = structured if layer is None else structured & (layers == layer)
    rows, cols = pixel_coords(geometry, x[selected], y[selected])
    ones = np.ones(int(np.count_nonzero(selected)), dtype=float)
    return scatter_to_image(geometry.shape, rows, cols, ones, reduce="sum")
