"""PDN density map.

"The PDN density map is derived from the average PDN pitch within each
grid" (Section III-C).  Density here is the count of PG nodes (stripe
intersections / via landings) per pixel, optionally per layer; denser
pixels have finer local pitch and hence lower local resistance.
"""

from __future__ import annotations

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PowerGrid
from repro.grid.raster import rasterize


def pdn_density_map(
    geometry: GridGeometry, grid: PowerGrid, layer: int | None = None
) -> np.ndarray:
    """Node density per pixel.

    Parameters
    ----------
    layer:
        Restrict to one metal layer; ``None`` counts nodes of all layers.
    """
    if layer is None:
        nodes = [n for n in grid.nodes if n.structured is not None]
    else:
        nodes = grid.nodes_on_layer(layer)
    ones = np.ones(len(nodes), dtype=float)
    return rasterize(geometry, nodes, ones, reduce="sum")
