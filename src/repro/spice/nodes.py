"""Node-name grammar for power-grid decks.

Following the ICCAD-2023 contest convention a PG node is named

    ``n{net}_m{layer}_{x}_{y}``

where *net* is the power-net index (1 for VDD), *layer* is the metal layer
index (1 = bottom / cell layer) and *x*, *y* are the node coordinates in
nanometres.  Ground is the literal name ``0``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

GROUND = "0"

_NODE_RE = re.compile(
    r"^n(?P<net>\d+)_m(?P<layer>\d+)_(?P<x>-?\d+)_(?P<y>-?\d+)$"
)


@dataclass(frozen=True, slots=True, order=True)
class NodeName:
    """A structured PG node name.

    Ordering is lexicographic on (net, layer, x, y) which gives a stable,
    geometry-aware node ordering used throughout the matrix assembly.
    """

    net: int
    layer: int
    x: int
    y: int

    def __str__(self) -> str:
        return format_node_name(self.net, self.layer, self.x, self.y)

    @property
    def position(self) -> tuple[int, int]:
        """(x, y) coordinate pair in nanometres."""
        return (self.x, self.y)

    def with_layer(self, layer: int) -> "NodeName":
        """The same (net, x, y) location on a different metal layer."""
        return NodeName(self.net, layer, self.x, self.y)


def format_node_name(net: int, layer: int, x: int, y: int) -> str:
    """Render a node name in the contest grammar."""
    return f"n{net}_m{layer}_{x}_{y}"


def parse_node_name(name: str) -> NodeName:
    """Parse a contest-grammar node name.

    Raises
    ------
    ValueError
        If the name is ground or does not follow the grammar.
    """
    match = _NODE_RE.match(name)
    if match is None:
        raise ValueError(f"node name {name!r} does not match n*_m*_x_y grammar")
    return NodeName(
        net=int(match.group("net")),
        layer=int(match.group("layer")),
        x=int(match.group("x")),
        y=int(match.group("y")),
    )


def is_structured_name(name: str) -> bool:
    """Whether *name* follows the contest grammar (ground does not)."""
    return _NODE_RE.match(name) is not None
