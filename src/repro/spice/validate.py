"""Netlist/grid validation and graceful-degradation repair.

A production analysis service cannot crash on a malformed deck: floating
nodes, disconnected islands, zero/negative resistances and a singular
conductance matrix must all be detected *before* solving and either
repaired (with a structured record of what was done) or rejected with a
precise diagnostic.

Two levels are covered:

- **Netlist level** (:func:`validate_netlist`, :func:`repair_netlist`) —
  element-value problems: non-positive resistances, 0-ohm shorts,
  duplicate pad pins.  Repair clamps sick resistances to a floor and
  collapses shorts via :func:`~repro.spice.preprocess.collapse_shorts`.
- **Grid level** (:func:`validate_grid`, :func:`repair_grid`) — topology
  problems: no pads at all, floating (pad-less) components.  Repair
  ground-ties one node of every floating component to the supply rail
  (``strategy="ground_tie"``: the island then reports zero drop, a
  conservative bounded answer) or drops the island's load currents
  (``strategy="isolate"``).

Every repair is an explicit :class:`RepairRecord`; nothing is silent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.spice.ast import Netlist, Resistor
from repro.spice.preprocess import collapse_shorts, count_shorts

if TYPE_CHECKING:  # grid imports stay lazy: keep `import repro.spice` light
    from repro.grid.netlist import PowerGrid

#: Resistance floor used when clamping non-positive/sub-floor values (ohms).
MIN_RESISTANCE = 1e-6


class NetlistValidationError(ValueError):
    """An input deck/grid is unusable and could not be repaired."""


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found during validation.

    Attributes
    ----------
    kind:
        Machine-readable tag, e.g. ``"floating_nodes"``, ``"no_pads"``,
        ``"nonpositive_resistance"``, ``"short_resistor"``.
    message:
        Human-readable description.
    count:
        How many elements/nodes are affected.
    fatal:
        ``True`` when solving without repair would produce a singular or
        indefinite system.
    """

    kind: str
    message: str
    count: int = 1
    fatal: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "count": self.count,
            "fatal": self.fatal,
        }


@dataclass(frozen=True)
class RepairRecord:
    """One repair action applied during graceful degradation."""

    action: str
    detail: str
    count: int = 1

    def to_dict(self) -> dict:
        return {"action": self.action, "detail": self.detail, "count": self.count}


# -- netlist level ----------------------------------------------------------


def validate_netlist(netlist: Netlist) -> list[ValidationIssue]:
    """Element-value checks on a parsed deck (no topology analysis)."""
    issues: list[ValidationIssue] = []
    shorts = count_shorts(netlist)
    if shorts:
        issues.append(
            ValidationIssue(
                kind="short_resistor",
                message=f"{shorts} zero-ohm resistor(s); must be collapsed",
                count=shorts,
                fatal=True,
            )
        )
    bad = [
        r for r in netlist.resistors
        if not r.is_short and (r.resistance < 0 or not np.isfinite(r.resistance))
    ]
    if bad:
        sample = ", ".join(r.name for r in bad[:3])
        issues.append(
            ValidationIssue(
                kind="nonpositive_resistance",
                message=(
                    f"{len(bad)} resistor(s) with negative or non-finite "
                    f"value (e.g. {sample}); G would not be SPD"
                ),
                count=len(bad),
                fatal=True,
            )
        )
    if not netlist.voltage_sources:
        issues.append(
            ValidationIssue(
                kind="no_pads",
                message="deck has no voltage sources; Gx=I is singular",
                fatal=True,
            )
        )
    return issues


def repair_netlist(
    netlist: Netlist,
) -> tuple[Netlist, list[RepairRecord]]:
    """Fix element-value problems, returning a new deck + repair records.

    0-ohm shorts are contracted; negative/non-finite resistances are
    clamped to :data:`MIN_RESISTANCE` (magnitude preserved when finite).
    A deck with no voltage sources cannot be repaired here — that is a
    topology-level rejection.
    """
    repairs: list[RepairRecord] = []
    shorts = count_shorts(netlist)
    if shorts:
        netlist = collapse_shorts(netlist)
        repairs.append(
            RepairRecord(
                action="collapse_shorts",
                detail=f"contracted {shorts} zero-ohm resistor(s)",
                count=shorts,
            )
        )
    clamped = 0
    resistors = []
    for res in netlist.resistors:
        value = res.resistance
        if value < 0 or not np.isfinite(value):
            magnitude = abs(value) if np.isfinite(value) else MIN_RESISTANCE
            value = max(magnitude, MIN_RESISTANCE)
            clamped += 1
            res = Resistor(res.name, res.node_a, res.node_b, value)
        resistors.append(res)
    if clamped:
        out = Netlist(title=netlist.title)
        out.resistors.extend(resistors)
        out.current_sources.extend(netlist.current_sources)
        out.voltage_sources.extend(netlist.voltage_sources)
        netlist = out
        repairs.append(
            RepairRecord(
                action="clamp_resistance",
                detail=(
                    f"clamped {clamped} negative/non-finite resistance(s) "
                    f"to >= {MIN_RESISTANCE} ohm"
                ),
                count=clamped,
            )
        )
    return netlist, repairs


# -- grid level -------------------------------------------------------------


def floating_components(grid: "PowerGrid") -> list[set[int]]:
    """Connected components with no pad (each is exactly singular)."""
    from repro.grid.topology import connected_components

    pad_indices = {n.index for n in grid.pads()}
    return [
        component
        for component in connected_components(grid)
        if component.isdisjoint(pad_indices)
    ]


def validate_grid(grid: "PowerGrid") -> list[ValidationIssue]:
    """Topology checks mirroring what MNA stamping requires."""
    from repro.grid.topology import connected_components

    issues: list[ValidationIssue] = []
    if not grid.pads():
        issues.append(
            ValidationIssue(
                kind="no_pads",
                message="power grid has no voltage pads; Gx=I is singular",
                fatal=True,
            )
        )
        return issues
    # One component pass serves both the island check and the count below.
    all_components = connected_components(grid)
    pad_indices = {n.index for n in grid.pads()}
    islands = [c for c in all_components if c.isdisjoint(pad_indices)]
    if islands:
        total = sum(len(c) for c in islands)
        sample = [grid.node(min(c)).name for c in islands[:3]]
        issues.append(
            ValidationIssue(
                kind="floating_nodes",
                message=(
                    f"{len(islands)} component(s) / {total} node(s) with no "
                    f"resistive path to a pad (e.g. {sample}); the reduced "
                    "system is singular"
                ),
                count=total,
                fatal=True,
            )
        )
    components = len(all_components)
    if components > 1:
        issues.append(
            ValidationIssue(
                kind="disconnected_grid",
                message=(
                    f"grid splits into {components} components; each is "
                    "solved independently (block-diagonal G)"
                ),
                count=components,
                fatal=False,
            )
        )
    return issues


def repair_grid(
    grid: "PowerGrid",
    supply_voltage: float,
    strategy: str = "ground_tie",
) -> tuple["PowerGrid", list[RepairRecord]]:
    """Make a grid solvable, returning a (possibly cloned) grid + records.

    Parameters
    ----------
    strategy:
        ``"ground_tie"`` pins the lowest-index node of each floating
        component to *supply_voltage* (the island then reads zero drop —
        a bounded, conservative answer).  ``"isolate"`` additionally zeroes
        the island's load currents so it draws nothing.

    Raises
    ------
    NetlistValidationError
        If the grid has no pads at all — there is no supply level to tie
        to and no meaningful IR-drop question to answer.
    """
    if strategy not in ("ground_tie", "isolate"):
        raise ValueError(f"unknown repair strategy {strategy!r}")
    if not grid.pads():
        raise NetlistValidationError(
            "power grid has no voltage pads; cannot repair (exit: bad input)"
        )
    islands = floating_components(grid)
    if not islands:
        return grid, []
    repaired = grid.clone()
    repairs: list[RepairRecord] = []
    for component in sorted(islands, key=min):
        anchor = min(component)
        repaired.node(anchor).pad_voltage = supply_voltage
        detail = (
            f"tied node {grid.node(anchor).name!r} of a {len(component)}-node "
            f"floating component to {supply_voltage} V"
        )
        if strategy == "isolate":
            zeroed = 0
            for index in component:
                node = repaired.node(index)
                if node.load_current:
                    node.load_current = 0.0
                    zeroed += 1
            detail += f"; zeroed {zeroed} load current(s)"
        repairs.append(
            RepairRecord(action=strategy, detail=detail, count=len(component))
        )
    return repaired, repairs


# -- system level -----------------------------------------------------------


def singular_rows(matrix) -> np.ndarray:
    """Row indices of a stamped reduced matrix with a non-positive diagonal.

    A healthy reduced conductance matrix is SPD with a strictly positive
    diagonal; zero rows betray a floating node that slipped past topology
    checks, negative entries betray bad element values.
    """
    diag = matrix.diagonal()
    return np.flatnonzero(~(diag > 0) | ~np.isfinite(diag))
