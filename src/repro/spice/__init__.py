"""SPICE netlist substrate for power-grid designs.

The ICCAD-2023 contest (and this reproduction) describe a power grid as a
flat SPICE deck containing only resistors (``R``), independent current
sources (``I``, the cell current drains) and independent voltage sources
(``V``, the power pads).  Node names follow the grammar
``n{net}_m{layer}_{x}_{y}`` with coordinates in nanometres; ``0`` is ground.

Public API
----------
- :class:`~repro.spice.ast.Resistor`, :class:`~repro.spice.ast.CurrentSource`,
  :class:`~repro.spice.ast.VoltageSource`, :class:`~repro.spice.ast.Netlist`
- :class:`~repro.spice.nodes.NodeName` and :func:`~repro.spice.nodes.parse_node_name`
- :func:`~repro.spice.parser.parse_spice` / :func:`~repro.spice.parser.parse_spice_file`
- :func:`~repro.spice.writer.write_spice` / :func:`~repro.spice.writer.netlist_to_string`
"""

from repro.spice.ast import CurrentSource, Netlist, Resistor, VoltageSource
from repro.spice.nodes import GROUND, NodeName, format_node_name, parse_node_name
from repro.spice.parser import SpiceParseError, parse_spice, parse_spice_file
from repro.spice.preprocess import collapse_shorts, count_shorts
from repro.spice.validate import (
    NetlistValidationError,
    RepairRecord,
    ValidationIssue,
    repair_grid,
    repair_netlist,
    validate_grid,
    validate_netlist,
)
from repro.spice.writer import netlist_to_string, write_spice

__all__ = [
    "CurrentSource",
    "GROUND",
    "Netlist",
    "NetlistValidationError",
    "NodeName",
    "RepairRecord",
    "Resistor",
    "SpiceParseError",
    "ValidationIssue",
    "VoltageSource",
    "collapse_shorts",
    "count_shorts",
    "repair_grid",
    "repair_netlist",
    "validate_grid",
    "validate_netlist",
    "format_node_name",
    "netlist_to_string",
    "parse_node_name",
    "parse_spice",
    "parse_spice_file",
    "write_spice",
]
