"""Netlist preprocessing: collapsing 0-ohm shorts.

Industrial decks model stacked vias and star connections as 0-ohm
resistors; the PowerGrid builder (and any SPD solver) requires them to be
merged first.  :func:`collapse_shorts` contracts every 0-ohm edge with a
union-find pass and rewrites the remaining elements onto the surviving
representative names.
"""

from __future__ import annotations

from repro.spice.ast import CurrentSource, Netlist, Resistor, VoltageSource
from repro.spice.nodes import GROUND


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # ground must always stay the representative of its class
        if rb == GROUND:
            ra, rb = rb, ra
        self._parent[rb] = ra


def collapse_shorts(netlist: Netlist) -> Netlist:
    """A new netlist with all 0-ohm resistors contracted away.

    Element order is preserved; shorts are dropped; any non-short element
    whose two endpoints merged into one node is dropped as well (it no
    longer carries current).  Node classes containing ground are renamed
    to ground.
    """
    union = _UnionFind()
    for res in netlist.resistors:
        if res.is_short:
            union.union(res.node_a, res.node_b)

    def rename(node: str) -> str:
        return union.find(node)

    out = Netlist(title=netlist.title)
    for res in netlist.resistors:
        if res.is_short:
            continue
        a, b = rename(res.node_a), rename(res.node_b)
        if a == b:
            continue  # became a self-loop after contraction
        out.resistors.append(Resistor(res.name, a, b, res.resistance))
    for src in netlist.current_sources:
        out.current_sources.append(
            CurrentSource(
                src.name, rename(src.node_from), rename(src.node_to), src.current
            )
        )
    for pad in netlist.voltage_sources:
        out.voltage_sources.append(
            VoltageSource(
                pad.name, rename(pad.node_pos), rename(pad.node_neg), pad.voltage
            )
        )
    return out


def count_shorts(netlist: Netlist) -> int:
    """How many 0-ohm resistors the deck contains."""
    return sum(1 for res in netlist.resistors if res.is_short)
