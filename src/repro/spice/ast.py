"""Dataclasses describing the elements of a power-grid SPICE netlist.

Only the three element kinds that occur in static PG analysis are modelled:
resistors, independent current sources (cell current drains) and independent
voltage sources (power pads).  A :class:`Netlist` is an ordered container of
those elements plus the title line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np


def pack_strings(strings: Sequence[str]) -> np.ndarray:
    """Flatten newline-free strings into one uint8 array.

    The transport-friendly dual of a list of python strings: a single
    ndarray rides the pool's shared-memory plane (and pickles as one
    contiguous buffer either way) instead of thousands of individual
    string objects.  Names in SPICE decks cannot contain whitespace, so
    newline is a safe separator.
    """
    if not strings:
        return np.empty(0, dtype=np.uint8)
    return np.frombuffer("\n".join(strings).encode("utf-8"), dtype=np.uint8)


def unpack_strings(packed: np.ndarray) -> list[str]:
    """Invert :func:`pack_strings`."""
    if packed.size == 0:
        return []
    return packed.tobytes().decode("utf-8").split("\n")


@dataclass(frozen=True, slots=True)
class Resistor:
    """A two-terminal resistor ``R<name> <node_a> <node_b> <ohms>``."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance < 0:
            raise ValueError(
                f"resistor {self.name!r} has negative resistance {self.resistance}"
            )

    @property
    def conductance(self) -> float:
        """Conductance in siemens; infinite resistance maps to zero."""
        if self.resistance == 0.0:
            raise ZeroDivisionError(
                f"resistor {self.name!r} is a short (0 ohm); shorts must be "
                "collapsed before conductance extraction"
            )
        return 1.0 / self.resistance

    @property
    def is_short(self) -> bool:
        """True for 0-ohm resistors (via shorts that need node merging)."""
        return self.resistance == 0.0


@dataclass(frozen=True, slots=True)
class Capacitor:
    """``C<name> <node_a> <node_b> <farads>`` — decap or wire capacitance.

    Capacitors are ignored by static analysis and consumed by
    :mod:`repro.transient`; ground may appear on either terminal.
    """

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(
                f"capacitor {self.name!r} has negative capacitance "
                f"{self.capacitance}"
            )


@dataclass(frozen=True, slots=True)
class CurrentSource:
    """``I<name> <node_from> <node_to> <amps>``.

    In PG decks current sources sink current from a bottom-metal node to
    ground, i.e. ``node_from`` is the PG node and ``node_to`` is ``0``.
    """

    name: str
    node_from: str
    node_to: str
    current: float


@dataclass(frozen=True, slots=True)
class VoltageSource:
    """``V<name> <node_pos> <node_neg> <volts>`` — a power pad."""

    name: str
    node_pos: str
    node_neg: str
    voltage: float


@dataclass(slots=True)
class Netlist:
    """An ordered power-grid netlist.

    Attributes
    ----------
    title:
        Free-form title (the first comment line of the deck, if any).
    resistors, current_sources, voltage_sources:
        Elements in file order.
    """

    title: str = ""
    resistors: list[Resistor] = field(default_factory=list)
    current_sources: list[CurrentSource] = field(default_factory=list)
    voltage_sources: list[VoltageSource] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)

    def __len__(self) -> int:
        return (
            len(self.resistors)
            + len(self.current_sources)
            + len(self.voltage_sources)
            + len(self.capacitors)
        )

    # -- transport ----------------------------------------------------------
    #
    # A parsed deck is tens of thousands of tiny element objects; pickled
    # naively they dominate every pool payload.  Serialise columnar
    # instead — packed name arrays plus one value vector per element
    # kind — so the bulk rides as a handful of ndarrays (which the
    # shared-memory transport then ships as ~100-byte descriptors) and
    # the element objects are rebuilt on the receiving side.

    def __getstate__(self) -> dict:
        def columns(elements, *fields_):
            return (
                *(
                    pack_strings([getattr(e, f) for e in elements])
                    for f in fields_[:-1]
                ),
                np.array([getattr(e, fields_[-1]) for e in elements]),
            )

        return {
            "title": self.title,
            "resistors": columns(
                self.resistors, "name", "node_a", "node_b", "resistance"
            ),
            "current_sources": columns(
                self.current_sources, "name", "node_from", "node_to", "current"
            ),
            "voltage_sources": columns(
                self.voltage_sources, "name", "node_pos", "node_neg", "voltage"
            ),
            "capacitors": columns(
                self.capacitors, "name", "node_a", "node_b", "capacitance"
            ),
        }

    def __setstate__(self, state: dict) -> None:
        def rebuild(factory, packed):
            *name_columns, values = packed
            unpacked = [unpack_strings(column) for column in name_columns]
            return [
                factory(*strings, float(value))
                for *strings, value in zip(*unpacked, values)
            ]

        self.title = state["title"]
        self.resistors = rebuild(Resistor, state["resistors"])
        self.current_sources = rebuild(CurrentSource, state["current_sources"])
        self.voltage_sources = rebuild(VoltageSource, state["voltage_sources"])
        self.capacitors = rebuild(Capacitor, state["capacitors"])

    def elements(
        self,
    ) -> Iterator[Resistor | CurrentSource | VoltageSource | Capacitor]:
        """Iterate over all elements, resistors first (file-order within kind)."""
        yield from self.resistors
        yield from self.current_sources
        yield from self.voltage_sources
        yield from self.capacitors

    def node_names(self) -> set[str]:
        """All node names referenced by any element, excluding ground."""
        names: set[str] = set()
        for res in self.resistors:
            names.add(res.node_a)
            names.add(res.node_b)
        for src in self.current_sources:
            names.add(src.node_from)
            names.add(src.node_to)
        for pad in self.voltage_sources:
            names.add(pad.node_pos)
            names.add(pad.node_neg)
        for cap in self.capacitors:
            names.add(cap.node_a)
            names.add(cap.node_b)
        names.discard("0")
        return names

    def total_load_current(self) -> float:
        """Sum of all current-source magnitudes (the total chip load)."""
        return sum(src.current for src in self.current_sources)

    def supply_voltage(self) -> float:
        """The pad voltage, assuming a single supply level.

        Raises
        ------
        ValueError
            If the deck has no voltage source or has pads at different
            voltages (multi-domain decks must be split first).
        """
        voltages = {pad.voltage for pad in self.voltage_sources}
        if not voltages:
            raise ValueError("netlist has no voltage sources (power pads)")
        if len(voltages) > 1:
            raise ValueError(
                f"netlist has multiple supply voltages {sorted(voltages)}; "
                "split multi-domain decks before analysis"
            )
        return voltages.pop()
