"""SPICE deck parser for static power-grid analysis.

The parser accepts the subset of SPICE used by PG decks:

- ``R<name> a b value`` resistors,
- ``I<name> a b value`` independent current sources,
- ``V<name> a b value`` independent voltage sources,
- ``C<name> a b value`` capacitors (decap / wire cap; transient only),
- ``*`` comment lines (the first one becomes the netlist title),
- ``.end`` / ``.END`` terminator (optional),
- engineering suffixes on values (``k``, ``m``, ``u``, ``n``, ``p``, ``f``,
  ``meg``, ``g``, ``t``) and plain scientific notation.

Everything else (subcircuits, capacitors, ...) raises
:class:`SpiceParseError` — static PG decks must be purely resistive.
"""

from __future__ import annotations

import os
from repro.spice.ast import (
    Capacitor,
    CurrentSource,
    Netlist,
    Resistor,
    VoltageSource,
)


class SpiceParseError(ValueError):
    """Raised on malformed or unsupported SPICE input."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}


def parse_value(token: str, line_no: int | None = None) -> float:
    """Parse a SPICE numeric token with optional engineering suffix.

    ``meg`` must be checked before ``m`` (milli); suffix matching is
    case-insensitive as in SPICE.
    """
    text = token.strip().lower()
    if not text:
        raise SpiceParseError("empty numeric token", line_no)
    for suffix in ("meg", "t", "g", "k", "m", "u", "n", "p", "f"):
        if text.endswith(suffix):
            stem = text[: -len(suffix)]
            try:
                return float(stem) * _SUFFIXES[suffix]
            except ValueError as exc:
                raise SpiceParseError(
                    f"bad numeric token {token!r}", line_no
                ) from exc
    try:
        return float(text)
    except ValueError as exc:
        raise SpiceParseError(f"bad numeric token {token!r}", line_no) from exc


def parse_spice(text: str) -> Netlist:
    """Parse a SPICE deck from a string into a :class:`Netlist`."""
    netlist = Netlist()
    saw_title = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("*"):
            if not saw_title:
                netlist.title = line.lstrip("*").strip()
                saw_title = True
            continue
        if line.startswith("."):
            directive = line.split()[0].lower()
            if directive in (".end", ".ends", ".op"):
                if directive == ".end":
                    break
                continue
            raise SpiceParseError(f"unsupported directive {directive!r}", line_no)
        _parse_element_line(line, line_no, netlist)
    return netlist


def _parse_element_line(line: str, line_no: int, netlist: Netlist) -> None:
    tokens = line.split()
    if len(tokens) != 4:
        raise SpiceParseError(
            f"expected 'NAME node node value', got {len(tokens)} tokens", line_no
        )
    name, node_a, node_b, value_token = tokens
    kind = name[0].upper()
    value = parse_value(value_token, line_no)
    if kind == "R":
        if value < 0:
            raise SpiceParseError(f"negative resistance {value}", line_no)
        netlist.resistors.append(Resistor(name, node_a, node_b, value))
    elif kind == "I":
        netlist.current_sources.append(CurrentSource(name, node_a, node_b, value))
    elif kind == "V":
        netlist.voltage_sources.append(VoltageSource(name, node_a, node_b, value))
    elif kind == "C":
        if value < 0:
            raise SpiceParseError(f"negative capacitance {value}", line_no)
        netlist.capacitors.append(Capacitor(name, node_a, node_b, value))
    else:
        raise SpiceParseError(
            f"unsupported element {name!r} (PG decks hold only R/I/V/C)",
            line_no,
        )


def parse_spice_file(path: str | os.PathLike[str]) -> Netlist:
    """Parse a SPICE deck from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_spice(handle.read())
