"""Serialise :class:`~repro.spice.ast.Netlist` objects back to SPICE text.

The writer emits a deck the parser round-trips exactly (element order and
values preserved); values are printed in repr-precision scientific notation
so no information is lost.
"""

from __future__ import annotations

import os
from repro.spice.ast import Netlist


def _format_value(value: float) -> str:
    """Shortest exact decimal representation of a float."""
    return repr(float(value))


def netlist_to_string(netlist: Netlist) -> str:
    """Render *netlist* as SPICE text."""
    lines: list[str] = []
    if netlist.title:
        lines.append(f"* {netlist.title}")
    for res in netlist.resistors:
        lines.append(
            f"{res.name} {res.node_a} {res.node_b} {_format_value(res.resistance)}"
        )
    for src in netlist.current_sources:
        lines.append(
            f"{src.name} {src.node_from} {src.node_to} {_format_value(src.current)}"
        )
    for pad in netlist.voltage_sources:
        lines.append(
            f"{pad.name} {pad.node_pos} {pad.node_neg} {_format_value(pad.voltage)}"
        )
    for cap in netlist.capacitors:
        lines.append(
            f"{cap.name} {cap.node_a} {cap.node_b} "
            f"{_format_value(cap.capacitance)}"
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_spice(netlist: Netlist, path: str | os.PathLike[str]) -> None:
    """Write *netlist* to *path* as a SPICE deck."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(netlist_to_string(netlist))
