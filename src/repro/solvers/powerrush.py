"""PowerRush-style end-to-end static PG simulator.

The paper's numerical baseline: SPICE deck in, per-node voltages and
IR-drop maps out, with AMG-PCG doing the solving.  Capping
``max_iterations`` reproduces the rough-solution regime the fusion
framework feeds into the ML model (and the Fig. 7 sweep).

The simulator is fault-tolerant by default: the input grid is validated
(and repaired — floating islands ground-tied) before stamping, and the
solve runs through the :class:`~repro.solvers.guard.FallbackCascade`
(AMG-PCG → adjusted retry → Jacobi-PCG → direct).  Everything non-nominal
is recorded on ``SimulationReport.diagnostics``; set ``robust=False`` to
restore the raise-on-anything behaviour for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.diagnostics import RunDiagnostics
from repro.grid.geometry import GridGeometry
from repro.obs import span
from repro.grid.netlist import PowerGrid
from repro.grid.raster import layer_values_image
from repro.mna.stamper import build_reduced_system
from repro.mna.system import ReducedSystem
from repro.solvers.amg import AMGOptions
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolveResult, SolverOptions
from repro.solvers.cache import setup_cache_stats
from repro.solvers.cycles import CycleOptions
from repro.solvers.guard import FallbackCascade, GuardrailOptions
from repro.spice.ast import Netlist
from repro.spice.parser import parse_spice, parse_spice_file
from repro.spice.validate import repair_grid, validate_grid


@dataclass
class SimulationReport:
    """Everything a static IR-drop run produces.

    Attributes
    ----------
    grid:
        The analysed power grid (post-repair when repairs were needed).
    system:
        The reduced linear system that was solved.
    voltages:
        Per-grid-node voltage vector (pads at their pinned value).
    ir_drop:
        Per-grid-node drop ``vdd - v``.
    solve:
        Solver statistics for the run.
    supply_voltage:
        The single supply level of the deck.
    diagnostics:
        Validation issues, repairs and solver fallback history for the
        run (empty record when everything was nominal).
    """

    grid: PowerGrid
    system: ReducedSystem
    voltages: np.ndarray
    ir_drop: np.ndarray
    solve: SolveResult
    supply_voltage: float
    diagnostics: RunDiagnostics = field(default_factory=RunDiagnostics)

    def worst_drop(self) -> float:
        """Maximum IR drop over all nodes (the signoff quantity)."""
        return float(self.ir_drop.max()) if self.ir_drop.size else 0.0

    def drop_image(
        self, geometry: GridGeometry, layer: int = 1, reduce: str = "max"
    ) -> np.ndarray:
        """IR-drop image for one metal layer (bottom layer by default)."""
        return layer_values_image(
            geometry, self.grid, self.ir_drop, layer=layer, reduce=reduce
        )

    def layer_drop_images(self, geometry: GridGeometry) -> dict[int, np.ndarray]:
        """IR-drop image per metal layer present in the grid."""
        return {
            layer: self.drop_image(geometry, layer=layer)
            for layer in self.grid.layers_present()
        }


#: Named solver configurations.  ``"quality"`` is the signoff setting
#: (double pairwise aggregation + K-cycle); ``"fast"`` trades per-iteration
#: cost for convergence rate (single-pass aggregation + damped-Jacobi
#: V-cycle), which is the configuration the fusion framework and the Fig. 7
#: trade-off sweep use for their 1-10 rough iterations.
PRESETS: dict[str, tuple[AMGOptions, CycleOptions]] = {
    "quality": (AMGOptions(), CycleOptions()),
    "fast": (
        AMGOptions(passes_per_level=1),
        CycleOptions(
            cycle="v", presmooth_sweeps=1, postsmooth_sweeps=0, smoother="jacobi"
        ),
    ),
}


class PowerRushSimulator:
    """SPICE → PowerGrid → MNA → AMG-PCG, packaged as one object.

    Parameters
    ----------
    max_iterations:
        Outer PCG iteration cap; small values give the rough solutions
        consumed by the fusion framework.
    tol:
        Relative-residual tolerance (reached ⇒ "golden-quality" solve).
    preset:
        ``"quality"`` or ``"fast"`` (see :data:`PRESETS`); ignored when
        explicit ``amg_options``/``cycle_options`` are given.
    amg_options, cycle_options:
        Forwarded to the underlying solver, overriding the preset.
    robust:
        Validate/repair the grid before stamping and solve through the
        fallback cascade (default).  ``False`` restores strict mode: any
        problem raises immediately.
    guard_options:
        Watchdog thresholds for the guarded solve (robust mode only).
        This is also the hook the fault-injection harness uses.

    Iterations start from the flat guess ``v = vdd`` (zero drop), the
    natural operating-point estimate a production simulator uses.
    """

    def __init__(
        self,
        max_iterations: int = 1000,
        tol: float = 1e-10,
        preset: str = "quality",
        amg_options: AMGOptions | None = None,
        cycle_options: CycleOptions | None = None,
        robust: bool = True,
        guard_options: GuardrailOptions | None = None,
    ) -> None:
        if preset not in PRESETS:
            raise ValueError(
                f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
            )
        preset_amg, preset_cycle = PRESETS[preset]
        self.preset = preset
        self.robust = robust
        self.guard_options = guard_options or GuardrailOptions()
        self.options = SolverOptions(tol=tol, max_iterations=max_iterations)
        self.amg_options = amg_options or preset_amg
        self.cycle_options = cycle_options or preset_cycle
        self.solver = AMGPCGSolver(
            options=self.options,
            amg_options=self.amg_options,
            cycle_options=self.cycle_options,
        )

    # -- entry points --------------------------------------------------------

    def simulate_file(self, path) -> SimulationReport:
        """Simulate a SPICE deck stored on disk."""
        return self.simulate_netlist(parse_spice_file(path))

    def simulate_text(self, text: str) -> SimulationReport:
        """Simulate a SPICE deck held in a string."""
        return self.simulate_netlist(parse_spice(text))

    def simulate_netlist(self, netlist: Netlist) -> SimulationReport:
        """Simulate a parsed deck."""
        grid = PowerGrid.from_netlist(netlist)
        return self.simulate_grid(grid, supply_voltage=netlist.supply_voltage())

    def simulate_grid(
        self, grid: PowerGrid, supply_voltage: float | None = None
    ) -> SimulationReport:
        """Simulate an already-built :class:`PowerGrid`.

        When *supply_voltage* is omitted it is taken from the pads (which
        must then agree on a single level).
        """
        if supply_voltage is None:
            levels = {n.pad_voltage for n in grid.pads()}
            if len(levels) != 1:
                raise ValueError(
                    f"cannot infer a single supply voltage from pads: {levels}"
                )
            supply_voltage = levels.pop()

        diagnostics = RunDiagnostics()
        with span("validate", robust=self.robust):
            if self.robust:
                diagnostics.validation = validate_grid(grid)
                grid, diagnostics.repairs = repair_grid(grid, supply_voltage)
                system = build_reduced_system(grid, validate=False)
            else:
                system = build_reduced_system(grid)

        flat_guess = np.full(system.size, supply_voltage, dtype=float)
        cache_before = setup_cache_stats()
        if self.robust:
            cascade = FallbackCascade(
                options=self.options,
                amg_options=self.amg_options,
                cycle_options=self.cycle_options,
                guard_options=self.guard_options,
            )
            result, diagnostics.solver = cascade.solve(
                system.matrix, system.rhs, x0=flat_guess
            )
        else:
            result = self.solver.solve(system.matrix, system.rhs, x0=flat_guess)
        diagnostics.solver_cache = setup_cache_stats().delta(cache_before)

        voltages = system.scatter(result.x)
        ir_drop = supply_voltage - voltages
        return SimulationReport(
            grid=grid,
            system=system,
            voltages=voltages,
            ir_drop=ir_drop,
            solve=result,
            supply_voltage=supply_voltage,
            diagnostics=diagnostics,
        )
