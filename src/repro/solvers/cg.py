"""Conjugate-gradient solvers: plain CG and Jacobi-preconditioned CG.

These are the classical Krylov baselines (Chen & Chen, DAC'01 lineage) that
AMG-PCG is compared against; they share the iteration skeleton used by
:class:`~repro.solvers.amg_pcg.AMGPCGSolver`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers.base import SolveResult, SolverOptions, Timer, check_system


class CGSolver:
    """Unpreconditioned conjugate gradients for SPD systems."""

    def __init__(self, options: SolverOptions | None = None) -> None:
        self.options = options or SolverOptions()

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        return _pcg(csr, rhs, x0, preconditioner=None, options=self.options)


class JacobiPCGSolver:
    """CG preconditioned by the inverse diagonal (point Jacobi)."""

    def __init__(self, options: SolverOptions | None = None) -> None:
        self.options = options or SolverOptions()

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        diag = csr.diagonal()
        if np.any(diag <= 0.0):
            raise ValueError("Jacobi preconditioning needs a positive diagonal")
        inv_diag = 1.0 / diag

        def precondition(r: np.ndarray) -> np.ndarray:
            return inv_diag * r

        return _pcg(csr, rhs, x0, preconditioner=precondition, options=self.options)


def _pcg(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    x0: np.ndarray | None,
    preconditioner,
    options: SolverOptions,
    flexible: bool = False,
) -> SolveResult:
    """Shared (optionally flexible) PCG iteration.

    With ``flexible=True`` the Polak-Ribiere form of beta is used,
    ``beta = z_{k+1}^T (r_{k+1} - r_k) / (z_k^T r_k)``, which tolerates a
    preconditioner that varies between iterations (the K-cycle does).
    """
    timer = Timer()
    n = rhs.shape[0]
    x = np.zeros(n, dtype=float) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = rhs - matrix @ x
    rhs_norm = float(np.linalg.norm(rhs))
    target = options.tol * rhs_norm if rhs_norm > 0 else options.tol
    history = [float(np.linalg.norm(r))] if options.record_history else []
    setup = timer.lap()

    if history and history[0] <= target:
        return SolveResult(
            x=x,
            iterations=0,
            converged=True,
            residual_norms=history,
            setup_seconds=setup,
            solve_seconds=timer.lap(),
        )

    z = preconditioner(r) if preconditioner is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    converged = False
    iterations = 0

    for _ in range(options.max_iterations):
        ap = matrix @ p
        pap = float(p @ ap)
        if pap <= 0.0:
            # A lost positive-definiteness numerically; stop with best iterate.
            break
        alpha = rz / pap
        x += alpha * p
        r_new = r - alpha * ap
        iterations += 1
        res_norm = float(np.linalg.norm(r_new))
        if options.record_history:
            history.append(res_norm)
        if res_norm <= target:
            r = r_new
            converged = True
            break
        z_new = preconditioner(r_new) if preconditioner is not None else r_new.copy()
        if flexible:
            beta = float(z_new @ (r_new - r)) / rz
        else:
            beta = float(r_new @ z_new) / rz
        rz = float(r_new @ z_new)
        p = z_new + beta * p
        r = r_new

    return SolveResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=history,
        setup_seconds=setup,
        solve_seconds=timer.lap(),
    )
