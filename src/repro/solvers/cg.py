"""Conjugate-gradient solvers: plain CG and Jacobi-preconditioned CG.

These are the classical Krylov baselines (Chen & Chen, DAC'01 lineage) that
AMG-PCG is compared against; they share the iteration skeleton used by
:class:`~repro.solvers.amg_pcg.AMGPCGSolver`.  Every solver accepts an
optional :class:`~repro.solvers.guard.IterationGuard` watchdog that can
abort a sick iteration (NaN residual, divergence, stagnation, blown time
budget) without raising.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers.base import SolveResult, SolverOptions, Timer, check_system
from repro.solvers.guard import GuardrailOptions, IterationGuard

#: Backend-dispatched sparse matvec, resolved on first use — importing
#: :mod:`repro.core.kernels` at module scope would run the
#: ``repro.core`` package init, which imports the solver stack.
_KERNEL_SPMV = None


def csr_matvec(matrix: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
    """CSR matvec through the tiered kernel backend."""
    global _KERNEL_SPMV
    if _KERNEL_SPMV is None:
        from repro.core.kernels import csr_matvec as kernel_spmv

        _KERNEL_SPMV = kernel_spmv
    return _KERNEL_SPMV(matrix, x)


class CGSolver:
    """Unpreconditioned conjugate gradients for SPD systems."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        guard_options: GuardrailOptions | None = None,
    ) -> None:
        self.options = options or SolverOptions()
        self.guard_options = guard_options

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
        guard: IterationGuard | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        if guard is None and self.guard_options is not None:
            guard = IterationGuard(self.guard_options, solver_name="cg")
        return _pcg(
            csr, rhs, x0, preconditioner=None, options=self.options, guard=guard
        )


class JacobiPCGSolver:
    """CG preconditioned by the inverse diagonal (point Jacobi)."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        guard_options: GuardrailOptions | None = None,
    ) -> None:
        self.options = options or SolverOptions()
        self.guard_options = guard_options

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
        guard: IterationGuard | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        diag = csr.diagonal()
        if np.any(diag <= 0.0):
            raise ValueError("Jacobi preconditioning needs a positive diagonal")
        inv_diag = 1.0 / diag
        if guard is None and self.guard_options is not None:
            guard = IterationGuard(self.guard_options, solver_name="jacobi_pcg")

        def precondition(r: np.ndarray) -> np.ndarray:
            return inv_diag * r

        return _pcg(
            csr, rhs, x0, preconditioner=precondition, options=self.options,
            guard=guard,
        )


def _pcg(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    x0: np.ndarray | None,
    preconditioner,
    options: SolverOptions,
    flexible: bool = False,
    guard: IterationGuard | None = None,
) -> SolveResult:
    """Shared (optionally flexible) PCG iteration.

    With ``flexible=True`` the Polak-Ribiere form of beta is used,
    ``beta = z_{k+1}^T (r_{k+1} - r_k) / (z_k^T r_k)``, which tolerates a
    preconditioner that varies between iterations (the K-cycle does).

    When a *guard* is supplied every residual norm flows through
    :meth:`IterationGuard.observe`; a tripped guard stops the loop and the
    trip reason lands in ``SolveResult.aborted``.

    ``setup_seconds`` is left at zero here: preconditioner setup belongs
    to whoever built the preconditioner, and callers add their own cost
    on top (a reused setup therefore reports exactly zero).
    """
    timer = Timer()
    n = rhs.shape[0]
    x = np.zeros(n, dtype=float) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = rhs - csr_matvec(matrix, x)
    rhs_norm = float(np.linalg.norm(rhs))
    target = options.tol * rhs_norm if rhs_norm > 0 else options.tol
    initial_norm = float(np.linalg.norm(r))
    if guard is not None:
        initial_norm = guard.observe(0, initial_norm)
    history = [initial_norm] if options.record_history else []
    aborted = guard.tripped if guard is not None else None

    if aborted is None and initial_norm <= target:
        return SolveResult(
            x=x,
            iterations=0,
            converged=True,
            residual_norms=history,
            solve_seconds=timer.lap(),
        )

    converged = False
    iterations = 0
    if aborted is None:
        z = preconditioner(r) if preconditioner is not None else r.copy()
        p = z.copy()
        rz = float(r @ z)

        for _ in range(options.max_iterations):
            ap = csr_matvec(matrix, p)
            pap = float(p @ ap)
            if not np.isfinite(pap):
                aborted = "nan_residual"
                break
            if pap <= 0.0:
                # A lost positive-definiteness numerically; stop with the
                # best iterate (aborted so the cascade can degrade).
                aborted = "indefinite_matrix"
                break
            alpha = rz / pap
            x += alpha * p
            r_new = r - alpha * ap
            iterations += 1
            res_norm = float(np.linalg.norm(r_new))
            if guard is not None:
                res_norm = guard.observe(iterations, res_norm)
            if options.record_history:
                history.append(res_norm)
            if guard is not None and guard.tripped is not None:
                aborted = guard.tripped
                r = r_new
                break
            if res_norm <= target:
                r = r_new
                converged = True
                break
            z_new = preconditioner(r_new) if preconditioner is not None else r_new.copy()
            if flexible:
                beta = float(z_new @ (r_new - r)) / rz
            else:
                beta = float(r_new @ z_new) / rz
            rz = float(r_new @ z_new)
            p = z_new + beta * p
            r = r_new

    return SolveResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=history,
        solve_seconds=timer.lap(),
        aborted=aborted,
    )
