"""Incremental re-analysis with warm starts.

ECO loops re-analyse a grid after small changes (a cell moved, a macro's
activity revised).  The conductance matrix is unchanged, so the AMG
hierarchy is reused, and the previous solution is an excellent initial
guess — small perturbations converge in a couple of iterations instead of
a full solve (the "spatial locality" observation of Köse & Friedman,
DAC'11, realised through warm-started AMG-PCG).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolveResult, SolverOptions


@dataclass
class IncrementalSolve:
    """One incremental step's outcome.

    Attributes
    ----------
    drops:
        Per-grid-node IR drop after the update.
    iterations:
        AMG-PCG iterations this step needed.
    """

    drops: np.ndarray
    iterations: int


class IncrementalAnalyzer:
    """Keeps solver state alive across load updates."""

    def __init__(
        self,
        grid: PowerGrid,
        supply_voltage: float | None = None,
        tol: float = 1e-8,
    ) -> None:
        if supply_voltage is None:
            levels = {n.pad_voltage for n in grid.pads()}
            if len(levels) != 1:
                raise ValueError(
                    f"cannot infer a single supply voltage from pads: {levels}"
                )
            supply_voltage = levels.pop()
        self.grid = grid
        self.supply_voltage = supply_voltage
        self.system = build_reduced_system(grid)
        self.solver = AMGPCGSolver(SolverOptions(tol=tol, max_iterations=500))
        self._row_of = {
            int(g): r for r, g in enumerate(self.system.unknown_indices)
        }
        # strip netlist loads out of the stamped RHS: updates supply them
        self._pad_rhs = self.system.rhs.copy()
        for node in grid.loads():
            row = self._row_of.get(node.index)
            if row is not None:
                self._pad_rhs[row] += node.load_current
        self._x: np.ndarray | None = None
        self._currents: dict[int, float] = {}

    @property
    def current_loads(self) -> dict[int, float]:
        """The load vector of the most recent solve."""
        return dict(self._currents)

    def _solve(self, warm: bool) -> SolveResult:
        rhs = self._pad_rhs.copy()
        for node_index, amps in self._currents.items():
            row = self._row_of.get(node_index)
            if row is None:
                raise ValueError(
                    f"node {node_index} is a pad or unknown; cannot load it"
                )
            rhs[row] -= amps
        x0 = self._x if (warm and self._x is not None) else np.full(
            self.system.size, self.supply_voltage
        )
        result = self.solver.solve(self.system.matrix, rhs, x0=x0)
        self._x = result.x
        return result

    def set_loads(self, currents: dict[int, float]) -> IncrementalSolve:
        """Replace the full load vector and (re)solve.

        The first call is a cold solve from the flat guess; later calls
        warm-start from the previous solution.
        """
        warm = bool(self._currents) or self._x is not None
        self._currents = dict(currents)
        result = self._solve(warm=warm)
        drops = self.supply_voltage - self.system.scatter(result.x)
        return IncrementalSolve(drops=drops, iterations=result.iterations)

    def update_loads(self, delta: dict[int, float]) -> IncrementalSolve:
        """Apply additive current changes to the current vector and re-solve."""
        merged = dict(self._currents)
        for node_index, amps in delta.items():
            merged[node_index] = merged.get(node_index, 0.0) + amps
        return self.set_loads(merged)
