"""Incremental ECO re-solve engine: structural deltas without restamping.

ECO loops re-analyse a grid after small edits — loads revised, a wire
resized, a pad added or removed.  The original analyzer could only
warm-start when the conductance matrix was *unchanged*; any structural
edit threw away the stamped system, the AMG hierarchy and the previous
solution.  This module keeps all three alive across edits:

- :class:`GridDelta` subclasses describe the edits
  (:class:`AddPad` / :class:`RemovePad` / :class:`ScaleWire` /
  :class:`SetWireResistance` / :class:`ReviseLoads`);
- delta stamping (:mod:`repro.mna.stamper`) patches the reduced CSR
  system in place, with undo records so candidate edits can be
  speculatively applied and reverted;
- low-rank edits solve through Sherman–Morrison–Woodbury corrections
  against the *cached* AMG hierarchy of the base matrix: a pad pin is a
  symmetric rank-2 update, a wire resize rank 1, so
  ``(G0 + U C Uᵀ)⁻¹ b`` costs a handful of base solves whose columns
  are cached across the whole sweep — followed by a short warm-started
  PCG polish on the patched matrix that restores full solver tolerance;
- when the accumulated delta rank or the stencil churn crosses a
  threshold (or a dimension-changing edit arrives), the engine falls
  back to a full restamp + hierarchy rebuild, keyed into the process
  setup cache by a *delta-chain fingerprint* so revisited structural
  states rehit the cache without rehashing the matrix.

The classic consumer is :mod:`repro.opt.pad_placement`: a greedy pad
sweep evaluates hundreds of nearly identical systems, and with this
engine each candidate costs one cached column solve plus dense algebra
instead of a from-scratch simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

import numpy as np

from repro.diagnostics import RunDiagnostics
from repro.grid.netlist import PowerGrid
from repro.mna.stamper import (
    SystemPatch,
    build_reduced_system,
    patch_conductance,
    patch_rhs,
    pin_row,
    revert_patch,
)
from repro.mna.system import ReducedSystem
from repro.obs import counter_add, deadline_active, span
from repro.solvers.amg import AMGOptions, build_hierarchy
from repro.solvers.base import SolveResult, SolverOptions
from repro.solvers.cache import (
    chained_fingerprint,
    global_setup_cache,
    matrix_fingerprint,
    setup_cache_enabled,
)
from repro.solvers.cg import _pcg
from repro.solvers.cycles import CycleOptions, CyclePreconditioner
from repro.solvers.guard import GuardrailOptions, IterationGuard


# ---------------------------------------------------------------------------
# Deltas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridDelta:
    """Base class for structural/electrical grid edits."""

    def token(self) -> str:
        """Stable identity string for delta-chain fingerprints."""
        raise NotImplementedError


@dataclass(frozen=True)
class AddPad(GridDelta):
    """Pin a (currently unknown) node to the supply: a new power pad.

    ``voltage=None`` uses the engine's supply voltage.  Numerically this
    is an exact symmetric rank-2 modification of the reduced system.
    """

    node: int | str
    voltage: float | None = None

    def token(self) -> str:
        return f"pad+:{self.node}:{self.voltage!r}"


@dataclass(frozen=True)
class RemovePad(GridDelta):
    """Un-pin a pad.

    Removing a pad that an earlier :class:`AddPad` delta created is the
    exact low-rank reversal when it is the most recent edit; any other
    removal changes the unknown set and forces a structural rebuild at
    the next solve.
    """

    node: int | str

    def token(self) -> str:
        return f"pad-:{self.node}"


@dataclass(frozen=True)
class ScaleWire(GridDelta):
    """Multiply one wire's resistance by ``factor`` (ECO resize)."""

    wire: int
    factor: float

    def token(self) -> str:
        return f"wire*:{self.wire}:{self.factor!r}"

    def __post_init__(self) -> None:
        if self.factor <= 0 or not np.isfinite(self.factor):
            raise ValueError(f"factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class SetWireResistance(GridDelta):
    """Set one wire's resistance to an absolute value."""

    wire: int
    resistance: float

    def token(self) -> str:
        return f"wire=:{self.wire}:{self.resistance!r}"

    def __post_init__(self) -> None:
        if self.resistance <= 0 or not np.isfinite(self.resistance):
            raise ValueError(
                f"resistance must be positive, got {self.resistance}"
            )


@dataclass(frozen=True)
class ReviseLoads(GridDelta):
    """Set per-node load currents (RHS-only edit).

    ``currents`` maps grid node (index or name) to the node's *new*
    absolute load; with ``additive=True`` values are added to the
    current loads instead.
    """

    currents: tuple[tuple[int | str, float], ...]
    additive: bool = False

    @classmethod
    def of(
        cls, currents: Mapping[int | str, float], additive: bool = False
    ) -> "ReviseLoads":
        return cls(currents=tuple(sorted(currents.items(), key=repr)),
                   additive=additive)

    def token(self) -> str:
        return f"loads:{self.additive}:{self.currents!r}"


@dataclass(frozen=True)
class IncrementalOptions:
    """Tuning knobs for the incremental engine.

    Attributes
    ----------
    max_rank:
        Accumulated low-rank budget; exceeding it triggers a full
        restamp + hierarchy rebuild at the next solve (the SMW capacity
        system and correction algebra grow with the rank).
    max_stencil_churn:
        Fraction of reduced-system rows the accumulated structural
        patches may touch before the stale base preconditioner is
        presumed ineffective and a rebuild is forced.
    polish_max_iterations:
        Iteration cap of the warm-started PCG polish that runs on the
        patched matrix after an SMW correction.  A polish that fails to
        converge within the cap falls back to a rebuild.
    polish:
        Disable to accept raw SMW corrections (benchmark ablations).
    column_tol:
        Relative tolerance of the cached SMW factor-column solves
        (``G0⁻¹ e_j``) on the iterative tier.  ``None`` (default) uses
        the engine's solver tolerance — corrections are then accurate to
        full precision before any polish.  ECO sweeps that preview many
        candidates and only need to *rank* them can loosen this:
        column accuracy bounds preview accuracy, while committed solves
        are always polished on the patched matrix to the requested
        tolerance regardless.  Ignored on the direct tier (columns are
        exact there).
    direct_max_size:
        Base-solve tier threshold.  The base matrix ``G0`` is fixed for
        the lifetime of a setup, so systems up to this many unknowns are
        factorised once (sparse LU) and every SMW factor column and
        base-RHS solve becomes an exact pair of triangular solves —
        the decisive ECO advantage, since a from-scratch simulator
        cannot amortise anything across candidates.  Larger systems
        (LU fill-in memory) fall back to AMG-preconditioned CG against
        the cached hierarchy.  Set to ``0`` to force the iterative tier.
    """

    max_rank: int = 24
    max_stencil_churn: float = 0.25
    polish_max_iterations: int = 50
    polish: bool = True
    column_tol: float | None = None
    direct_max_size: int = 120_000

    def __post_init__(self) -> None:
        if self.max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        if not 0.0 < self.max_stencil_churn <= 1.0:
            raise ValueError("max_stencil_churn must be in (0, 1]")


@dataclass
class IncrementalSolve:
    """One incremental step's outcome.

    Attributes
    ----------
    drops:
        Per-grid-node IR drop after the update.
    iterations:
        Inner PCG iterations this step needed (base solves + polish).
    converged:
        Whether the final iterate met the solver tolerance.
    strategy:
        How the step was solved: ``cold`` (first solve), ``warm``
        (warm-started re-solve, no structural terms), ``smw``
        (low-rank Woodbury correction + polish), ``rebuild`` (full
        restamp; includes threshold crossings and polish fallbacks).
    polish_iterations:
        PCG iterations spent polishing an SMW correction.
    residual:
        Relative residual of the returned solution on the patched
        system.
    aborted:
        Guard trip reason (e.g. ``"deadline"``) or ``None``.
    """

    drops: np.ndarray
    iterations: int
    converged: bool = True
    strategy: str = "cold"
    polish_iterations: int = 0
    residual: float = float("nan")
    aborted: str | None = None


@dataclass
class _Term:
    """One committed low-rank delta and everything needed to undo it."""

    token: str
    prev_fingerprint: str
    cols: list[np.ndarray] = field(default_factory=list)
    c_block: np.ndarray | None = None
    w_cols: list[np.ndarray] = field(default_factory=list)
    patch: SystemPatch = field(default_factory=SystemPatch.empty)
    y_delta: np.ndarray | None = None
    y_invalidated: bool = False
    grid_undo: Callable[[], None] | None = None
    pinned_row: int | None = None
    pinned_voltage: float | None = None
    touched_rows: tuple[int, ...] = ()
    structural: bool = False
    prev_structural_dirty: bool = False

    @property
    def rank(self) -> int:
        return len(self.cols)


class IncrementalEngine:
    """Keeps system, hierarchy and solution alive across grid deltas.

    The engine owns a private clone of the grid; the caller's object is
    never mutated.  ``apply`` commits a delta (returning a handle),
    ``revert`` undoes the *most recent* one (LIFO — candidate
    evaluation), ``preview`` wraps apply → solve → revert, and ``solve``
    produces the IR drop for the current state.
    """

    def __init__(
        self,
        grid: PowerGrid,
        supply_voltage: float | None = None,
        options: SolverOptions | None = None,
        incremental: IncrementalOptions | None = None,
        amg_options: AMGOptions | None = None,
        cycle_options: CycleOptions | None = None,
        guard_options: GuardrailOptions | None = None,
        validate: bool = True,
    ) -> None:
        if supply_voltage is None:
            levels = {n.pad_voltage for n in grid.pads()}
            if len(levels) != 1:
                raise ValueError(
                    f"cannot infer a single supply voltage from pads: {levels}"
                )
            supply_voltage = levels.pop()
        self.supply_voltage = float(supply_voltage)
        self.options = options or SolverOptions()
        self.incremental = incremental or IncrementalOptions()
        self.amg_options = amg_options or AMGOptions()
        self.cycle_options = cycle_options or CycleOptions()
        self.guard_options = guard_options or GuardrailOptions()
        self.diagnostics = RunDiagnostics()

        self._grid = grid.clone()
        self._terms: list[_Term] = []
        self._pinned: dict[int, float] = {}  # reduced row -> voltage
        self._w_cache: dict[tuple, tuple[np.ndarray, int]] = {}
        self._loads: dict[int, float] = {
            n.index: n.load_current for n in self._grid.loads()
        }
        self._structural_dirty = False
        self._x: np.ndarray | None = None  # last unknown-space solution
        self._x_full: np.ndarray | None = None  # last full-grid voltages
        self._y: np.ndarray | None = None  # S(b_cur) against the base
        self._y_guess: np.ndarray | None = None
        self._steps = 0
        self._setup(validate=validate, fingerprint=None)

    # -- setup / rebuild ---------------------------------------------------

    def _setup(self, validate: bool, fingerprint: str | None) -> None:
        """(Re)stamp from the working grid and (re)build the hierarchy."""
        base = build_reduced_system(self._grid, validate=validate)
        self._base_matrix = base.matrix  # unpatched: what the AMG setup saw
        self._system = base.mutable_copy()
        self._row_of = base.row_map()
        if fingerprint is None:
            fingerprint = matrix_fingerprint(base.matrix)
        self._fingerprint = fingerprint
        if setup_cache_enabled():
            hierarchy, hit = global_setup_cache().get_or_build(
                base.matrix, self.amg_options, fingerprint=fingerprint
            )
        else:
            hierarchy, hit = build_hierarchy(base.matrix, self.amg_options), False
        counter_add("incremental.setup_cache_hits" if hit else
                    "incremental.setup_builds")
        self._precond = CyclePreconditioner(hierarchy, self.cycle_options)
        self._factor: Callable[[np.ndarray], np.ndarray] | None = None
        self._factor_skipped = False
        self._terms.clear()
        self._pinned.clear()
        self._w_cache.clear()
        self._y = None
        self._y_guess = None
        self._structural_dirty = False

    def _rebuild(self) -> None:
        with span("incremental.rebuild", rank=self.rank):
            previous_full = self._x_full
            self._setup(validate=True, fingerprint=self._fingerprint)
            if previous_full is not None:
                # Re-gather the previous full-grid solution onto the new
                # unknown set: still an excellent warm start.
                self._x = self._system.gather(previous_full)
        counter_add("incremental.rebuilds")

    # -- introspection -----------------------------------------------------

    @property
    def grid(self) -> PowerGrid:
        """The engine's working grid (treat as read-only)."""
        return self._grid

    @property
    def system(self) -> ReducedSystem:
        """The current (patched) reduced system."""
        return self._system

    @property
    def rank(self) -> int:
        """Accumulated low-rank budget consumed by active deltas."""
        return sum(t.rank for t in self._terms)

    @property
    def fingerprint(self) -> str:
        """Delta-chain fingerprint of the current structural state."""
        return self._fingerprint

    @property
    def current_loads(self) -> dict[int, float]:
        """Per-node load currents of the current state (nonzero only)."""
        return {k: v for k, v in self._loads.items() if v != 0.0}

    def _stencil_churn(self) -> float:
        touched: set[int] = set()
        for term in self._terms:
            touched.update(term.touched_rows)
        size = max(self._system.size, 1)
        return len(touched) / size

    def _needs_rebuild(self) -> bool:
        return (
            self._structural_dirty
            or self.rank > self.incremental.max_rank
            or self._stencil_churn() > self.incremental.max_stencil_churn
        )

    # -- base solves (against the unpatched matrix + cached hierarchy) ----

    def _guard(self) -> IterationGuard | None:
        if not deadline_active():
            return None
        return IterationGuard(self.guard_options, solver_name="incremental")

    def _base_factor(self) -> Callable[[np.ndarray], np.ndarray] | None:
        """Sparse LU of ``G0``, built lazily once per (re)stamp.

        Skipped for systems above ``direct_max_size`` and while a
        deadline scope is active (a factorisation is not interruptible;
        the guarded PCG path is).
        """
        if deadline_active():
            return None
        if self._factor is None and not self._factor_skipped:
            if self._system.size > self.incremental.direct_max_size:
                self._factor_skipped = True
            else:
                import scipy.sparse as sp
                from scipy.sparse.linalg import splu

                with span("incremental.factorize", size=self._system.size):
                    lu = splu(sp.csc_matrix(self._base_matrix))
                self._factor = lu.solve
                counter_add("incremental.factorizations")
        return self._factor

    def _base_solve(
        self,
        rhs: np.ndarray,
        x0: np.ndarray | None,
        options: SolverOptions,
    ) -> SolveResult:
        counter_add("incremental.base_solves")
        factor = self._base_factor()
        if factor is not None:
            counter_add("incremental.direct_solves")
            return SolveResult(x=factor(rhs), iterations=0, converged=True)
        result = _pcg(
            self._base_matrix,
            rhs,
            x0,
            preconditioner=self._precond.apply,
            options=options,
            flexible=True,
            guard=self._guard(),
        )
        counter_add("pcg.iterations", result.iterations)
        return result

    def _column_solve(self, key: tuple, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        """Cached ``G0⁻¹ rhs`` for an SMW factor column."""
        cached = self._w_cache.get(key)
        if cached is not None:
            counter_add("incremental.column_cache_hits")
            return cached
        tol = self.incremental.column_tol
        column_options = replace(
            self.options,
            record_history=False,
            tol=self.options.tol if tol is None else tol,
        )
        result = self._base_solve(rhs, None, column_options)
        entry = (result.x, result.iterations)
        self._w_cache[key] = entry
        counter_add("incremental.column_solves")
        return entry

    def _unit(self, row: int) -> np.ndarray:
        e = np.zeros(self._system.size, dtype=float)
        e[row] = 1.0
        return e

    def _prior_correction(self, e_row: np.ndarray, row: int) -> np.ndarray:
        """``Σ W_i C_i (U_iᵀ e_row)`` over the active terms.

        With ``q = G_cur e_row`` this turns ``S(q)`` into pure algebra:
        ``S(q) = e_row + Σ W_i C_i (U_iᵀ e_row)`` — no extra solve.
        """
        correction = np.zeros_like(e_row)
        for term in self._terms:
            if not term.cols:
                continue
            proj = np.array([col[row] for col in term.cols])
            if not proj.any():
                continue
            coeff = term.c_block @ proj
            for w_col, c in zip(term.w_cols, coeff):
                if c != 0.0:
                    correction += c * w_col
        return correction

    # -- delta application -------------------------------------------------

    def _resolve_node(self, node: int | str) -> int:
        return self._grid.index_of(node) if isinstance(node, str) else int(node)

    def _resolve_endpoint(
        self, grid_index: int
    ) -> tuple[int | None, float | None]:
        """Map a grid node to (reduced row, pinned voltage).

        Original pads have no row; delta-pinned nodes have a row but are
        electrically pads, so both report ``row=None`` + their voltage
        for stamping purposes (returning the row separately for RHS
        bookkeeping is not needed — :func:`patch_conductance` mirrors
        the full stamp's elimination rules).
        """
        row = self._row_of.get(grid_index)
        if row is None:
            return None, self._system.pad_voltages[grid_index]
        pinned = self._pinned.get(row)
        if pinned is not None:
            return None, pinned
        return row, None

    def apply(self, delta: GridDelta) -> _Term:
        """Commit a delta; returns the handle :meth:`revert` accepts."""
        if isinstance(delta, AddPad):
            term = self._apply_add_pad(delta)
        elif isinstance(delta, RemovePad):
            term = self._apply_remove_pad(delta)
        elif isinstance(delta, (ScaleWire, SetWireResistance)):
            term = self._apply_wire(delta)
        elif isinstance(delta, ReviseLoads):
            term = self._apply_loads(delta)
        else:
            raise TypeError(f"unsupported delta {type(delta).__name__}")
        self._fingerprint = chained_fingerprint(
            term.prev_fingerprint, term.token
        )
        counter_add("incremental.deltas")
        return term

    def _apply_add_pad(self, delta: AddPad) -> _Term:
        index = self._resolve_node(delta.node)
        node = self._grid.node(index)
        if node.is_pad:
            raise ValueError(f"node {node.name!r} is already a pad")
        voltage = self.supply_voltage if delta.voltage is None else delta.voltage
        row = self._row_of[index]
        matrix, rhs = self._system.matrix, self._system.rhs
        rhs_j_old = float(rhs[row])
        patch, q_indices, q_values = pin_row(matrix, rhs, row, voltage)
        diag = float(q_values[np.searchsorted(q_indices, row)])

        e_row = self._unit(row)
        q_dense = np.zeros_like(e_row)
        q_dense[q_indices] = q_values
        alpha = 2.0 * diag
        c_block = np.array([[alpha, -1.0], [-1.0, 0.0]])

        w1, _ = self._column_solve(("node", row), e_row)
        # S(q) = S(G_cur e_row) = e_row + Σ W_i C_i (U_iᵀ e_row): algebra.
        w2 = e_row + self._prior_correction(e_row, row)
        # RHS moved by the pin: Δb = -V q + (2 d V - b_j) e_j, so the
        # cached base solution S(b) shifts by -V S(q) + (2 d V - b_j) w1.
        y_delta = -voltage * w2 + (2.0 * diag * voltage - rhs_j_old) * w1

        self._grid.pin_pad(index, voltage)
        self._pinned[row] = voltage
        if self._y is not None:
            self._y = self._y + y_delta

        term = _Term(
            token=delta.token(),
            prev_fingerprint=self._fingerprint,
            cols=[e_row, q_dense],
            c_block=c_block,
            w_cols=[w1, w2],
            patch=patch,
            y_delta=y_delta,
            grid_undo=lambda: (
                self._grid.unpin_pad(index),
                self._pinned.pop(row, None),
            ),
            pinned_row=row,
            pinned_voltage=voltage,
            touched_rows=(row,),
        )
        self._terms.append(term)
        return term

    def _apply_remove_pad(self, delta: RemovePad) -> _Term:
        index = self._resolve_node(delta.node)
        node = self._grid.node(index)
        if not node.is_pad:
            raise ValueError(f"node {node.name!r} is not a pad")
        row = self._row_of.get(index)
        if (
            row is not None
            and self._terms
            and self._terms[-1].pinned_row == row
        ):
            # Exact reversal of the most recent AddPad: pop it.
            self.revert(self._terms[-1])
            # Re-chain so the fingerprint reflects "add then remove"
            # rather than silently rewinding (apply() chains on top).
            return _Term(
                token=delta.token(),
                prev_fingerprint=self._fingerprint,
                grid_undo=None,
            )
        # Anything else changes the unknown set: structural rebuild.
        voltage = node.pad_voltage
        self._grid.unpin_pad(index)
        prev_dirty = self._structural_dirty
        self._structural_dirty = True
        counter_add("incremental.structural_deltas")
        term = _Term(
            token=delta.token(),
            prev_fingerprint=self._fingerprint,
            grid_undo=lambda: self._grid.pin_pad(index, voltage),
            structural=True,
            prev_structural_dirty=prev_dirty,
        )
        self._terms.append(term)
        return term

    def _apply_wire(self, delta: ScaleWire | SetWireResistance) -> _Term:
        wire_index = int(delta.wire)
        wire = self._grid.wires[wire_index]
        old_resistance = wire.resistance
        if isinstance(delta, ScaleWire):
            new_resistance = old_resistance * delta.factor
        else:
            new_resistance = delta.resistance
        delta_g = 1.0 / new_resistance - 1.0 / old_resistance

        a_index, b_index = wire.node_a, wire.node_b
        row_a, voltage_a = self._resolve_endpoint(a_index)
        row_b, voltage_b = self._resolve_endpoint(b_index)
        matrix, rhs = self._system.matrix, self._system.rhs
        patch = patch_conductance(
            matrix, rhs, row_a, row_b, delta_g, voltage_a, voltage_b
        )

        cols: list[np.ndarray] = []
        w_cols: list[np.ndarray] = []
        c_block: np.ndarray | None = None
        y_delta: np.ndarray | None = None
        touched: tuple[int, ...] = ()
        if delta_g != 0.0 and (row_a is not None or row_b is not None):
            if row_a is not None and row_b is not None:
                u = self._unit(row_a) - self._unit(row_b)
                w, _ = self._column_solve(("edge", row_a, row_b), u)
                touched = (row_a, row_b)
            else:
                live = row_a if row_a is not None else row_b
                pad_voltage = voltage_b if row_a is not None else voltage_a
                u = self._unit(live)
                w, _ = self._column_solve(("node", live), u)
                # RHS coupling to the pinned side moved by delta_g * V.
                y_delta = delta_g * pad_voltage * w
                touched = (live,)
            cols, w_cols = [u], [w]
            c_block = np.array([[delta_g]])
            if self._y is not None and y_delta is not None:
                self._y = self._y + y_delta

        self._grid.set_wire_resistance(wire_index, new_resistance)
        term = _Term(
            token=delta.token(),
            prev_fingerprint=self._fingerprint,
            cols=cols,
            c_block=c_block,
            w_cols=w_cols,
            patch=patch,
            y_delta=y_delta,
            grid_undo=lambda: self._grid.set_wire_resistance(
                wire_index, old_resistance
            ),
            touched_rows=touched,
        )
        self._terms.append(term)
        return term

    def _apply_loads(self, delta: ReviseLoads) -> _Term:
        rows: list[int] = []
        rhs_deltas: list[float] = []
        old_loads: list[tuple[int, float]] = []
        for node, amps in delta.currents:
            index = self._resolve_node(node)
            row = self._row_of.get(index)
            if row is None or row in self._pinned:
                name = self._grid.node(index).name
                raise ValueError(
                    f"node {name!r} ({index}) is a pad or unknown; "
                    "cannot load it"
                )
            old = self._loads.get(index, 0.0)
            new = old + amps if delta.additive else amps
            if new == old:
                continue
            rows.append(row)
            # Loads enter the stamped RHS with a negative sign.
            rhs_deltas.append(-(new - old))
            old_loads.append((index, old))
            self._loads[index] = new
            self._grid.set_load(index, new)
        patch = patch_rhs(
            self._system.rhs,
            np.asarray(rows, dtype=np.int64),
            np.asarray(rhs_deltas, dtype=float),
        )

        def undo() -> None:
            for index, old in old_loads:
                self._loads[index] = old
                self._grid.set_load(index, old)

        term = _Term(
            token=delta.token(),
            prev_fingerprint=self._fingerprint,
            patch=patch,
            y_invalidated=bool(rows),
            grid_undo=undo,
        )
        if rows:
            self._y = None  # general RHS move: re-solve (warm) on demand
        self._terms.append(term)
        return term

    def revert(self, term: _Term) -> None:
        """Undo the most recently applied delta (LIFO discipline)."""
        if not self._terms or self._terms[-1] is not term:
            raise ValueError(
                "revert only accepts the most recently applied delta"
            )
        self._terms.pop()
        revert_patch(self._system.matrix, self._system.rhs, term.patch)
        if term.grid_undo is not None:
            term.grid_undo()
        if term.structural:
            self._structural_dirty = term.prev_structural_dirty
        if term.y_invalidated:
            self._y = None
        elif term.y_delta is not None and self._y is not None:
            self._y = self._y - term.y_delta
        self._fingerprint = term.prev_fingerprint

    # -- solving -----------------------------------------------------------

    def set_loads(self, currents: Mapping[int | str, float]) -> _Term:
        """Replace the whole load vector (unmentioned loads go to zero)."""
        merged: dict[int | str, float] = {
            index: 0.0 for index, load in self._loads.items() if load != 0.0
        }
        merged.update(currents)
        return self.apply(ReviseLoads.of(merged))

    def preview(self, delta: GridDelta, tol: float | None = None) -> IncrementalSolve:
        """Evaluate a candidate edit without committing it."""
        term = self.apply(delta)
        previous_x = self._x
        previous_full = self._x_full
        try:
            return self.solve(tol=tol, commit=False)
        finally:
            self.revert(term)
            self._x = previous_x
            self._x_full = previous_full

    def solve(
        self, tol: float | None = None, commit: bool = True
    ) -> IncrementalSolve:
        """Solve the current state; warm-starts and corrects as possible.

        ``commit=False`` (used by :meth:`preview`) keeps the cached
        solution trajectory pointed at the last committed state.
        """
        options = self.options if tol is None else replace(self.options, tol=tol)
        with span("incremental.solve", rank=self.rank) as solve_span:
            # Previews must never rebuild: a rebuild folds the term
            # stack into the base system, and the caller still holds a
            # term it is about to revert.
            rebuilt = commit and self._needs_rebuild()
            if rebuilt:
                self._rebuild()
            if not self._terms:
                step = self._solve_direct(options)
                if rebuilt:
                    step.strategy = "rebuild"
            else:
                step = self._solve_smw(options, allow_rebuild=commit)
            solve_span.attrs["strategy"] = step.strategy
            solve_span.attrs["iterations"] = step.iterations
        self._steps += 1
        counter_add("incremental.solves")
        counter_add("incremental.polish_iterations", step.polish_iterations)
        if step.aborted is not None:
            counter_add("incremental.aborted")
        self.diagnostics.warnings.append(
            f"incremental step {self._steps}: strategy={step.strategy} "
            f"iterations={step.iterations} polish={step.polish_iterations} "
            f"converged={step.converged}"
            + (f" aborted={step.aborted}" if step.aborted else "")
        )
        return step

    def _finish(
        self,
        x: np.ndarray,
        iterations: int,
        strategy: str,
        polish_iterations: int = 0,
        aborted: str | None = None,
        converged: bool = True,
    ) -> IncrementalSolve:
        self._x = x
        voltages = self._system.scatter(x)
        self._x_full = voltages
        residual = self._system.relative_residual(x)
        return IncrementalSolve(
            drops=self.supply_voltage - voltages,
            iterations=iterations,
            converged=converged,
            strategy=strategy,
            polish_iterations=polish_iterations,
            residual=residual,
            aborted=aborted,
        )

    def _solve_direct(self, options: SolverOptions) -> IncrementalSolve:
        """No active low-rank terms: the matrix IS ``G0``; solve it."""
        if self._x is not None and self._x.shape == (self._system.size,):
            x0 = self._x
            strategy = "warm"
        else:
            x0 = np.full(self._system.size, self.supply_voltage)
            strategy = "cold" if self._steps == 0 else "rebuild"
        factor = self._base_factor()
        if factor is not None:
            counter_add("incremental.direct_solves")
            counter_add("incremental.warm_solves" if strategy == "warm" else
                        "incremental.full_solves")
            return self._finish(factor(self._system.rhs), 0, strategy)
        result = _pcg(
            self._system.matrix,
            self._system.rhs,
            x0,
            preconditioner=self._precond.apply,
            options=options,
            flexible=True,
            guard=self._guard(),
        )
        counter_add("pcg.iterations", result.iterations)
        counter_add("incremental.warm_solves" if strategy == "warm" else
                    "incremental.full_solves")
        return self._finish(
            result.x,
            result.iterations,
            strategy,
            aborted=result.aborted,
            converged=result.converged,
        )

    def _solve_smw(
        self, options: SolverOptions, allow_rebuild: bool = True
    ) -> IncrementalSolve:
        """Woodbury correction against the base hierarchy, then polish."""
        iterations = 0
        # y = G0⁻¹ b_cur; maintained algebraically across pad/wire edits,
        # re-solved (warm) after a general RHS move.
        if self._y is None:
            result = self._base_solve(
                self._system.rhs, self._y_guess, options
            )
            self._y = result.x
            iterations += result.iterations
            if result.aborted is not None:
                return self._finish(
                    result.x, iterations, "smw",
                    aborted=result.aborted, converged=False,
                )
        self._y_guess = self._y

        terms = [t for t in self._terms if t.cols]
        if terms:
            u_mat = np.column_stack(
                [col for t in terms for col in t.cols]
            )
            w_mat = np.column_stack(
                [col for t in terms for col in t.w_cols]
            )
            k = u_mat.shape[1]
            c_inv = np.zeros((k, k))
            offset = 0
            for t in terms:
                r = t.rank
                c_inv[offset : offset + r, offset : offset + r] = (
                    np.linalg.inv(t.c_block)
                )
                offset += r
            capacitance = c_inv + u_mat.T @ w_mat
            coeff = np.linalg.solve(capacitance, u_mat.T @ self._y)
            x = self._y - w_mat @ coeff
        else:
            x = self._y.copy()
        counter_add("incremental.smw_solves")

        # Polish on the *patched* matrix with the stale base
        # preconditioner: restores full tolerance regardless of the
        # conditioning of the capacitance solve.
        polish_iterations = 0
        aborted: str | None = None
        converged = self._system.relative_residual(x) <= options.tol
        if not converged and self.incremental.polish:
            polish_options = replace(
                options,
                max_iterations=self.incremental.polish_max_iterations,
                record_history=False,
            )
            result = _pcg(
                self._system.matrix,
                self._system.rhs,
                x,
                preconditioner=self._precond.apply,
                options=polish_options,
                flexible=True,
                guard=self._guard(),
            )
            counter_add("pcg.iterations", result.iterations)
            polish_iterations = result.iterations
            iterations += result.iterations
            x = result.x
            aborted = result.aborted
            converged = result.converged
            if not converged and aborted is None and allow_rebuild:
                # Stale preconditioner not pulling its weight: rebuild.
                counter_add("incremental.fallbacks")
                self._rebuild()
                return self._solve_direct(options)
        return self._finish(
            x,
            iterations,
            "smw",
            polish_iterations=polish_iterations,
            aborted=aborted,
            converged=converged,
        )


class IncrementalAnalyzer:
    """Warm-started load re-analysis (the classic ECO loop front-end).

    A thin wrapper over :class:`IncrementalEngine` for the common case
    of revising load currents only.  Accepts caller-supplied
    :class:`SolverOptions`, honours an ambient
    :func:`repro.obs.deadline_scope`, and surfaces per-step
    iteration/strategy records through :attr:`diagnostics`.
    """

    def __init__(
        self,
        grid: PowerGrid,
        supply_voltage: float | None = None,
        tol: float = 1e-8,
        options: SolverOptions | None = None,
        incremental: IncrementalOptions | None = None,
    ) -> None:
        if options is None:
            options = SolverOptions(tol=tol, max_iterations=500)
        self._engine = IncrementalEngine(
            grid,
            supply_voltage,
            options=options,
            incremental=incremental,
        )
        self._currents: dict[int, float] = {}

    @property
    def engine(self) -> IncrementalEngine:
        """The underlying incremental engine (for structural deltas)."""
        return self._engine

    @property
    def grid(self) -> PowerGrid:
        return self._engine.grid

    @property
    def supply_voltage(self) -> float:
        return self._engine.supply_voltage

    @property
    def options(self) -> SolverOptions:
        return self._engine.options

    @property
    def diagnostics(self) -> RunDiagnostics:
        """Per-step strategy/iteration records for the whole session."""
        return self._engine.diagnostics

    @property
    def current_loads(self) -> dict[int, float]:
        """The load vector of the most recent solve."""
        return dict(self._currents)

    def set_loads(self, currents: Mapping[int, float]) -> IncrementalSolve:
        """Replace the full load vector and (re)solve.

        The first call is a cold solve from the flat guess; later calls
        warm-start from the previous solution.
        """
        self._engine.set_loads(currents)
        self._currents = dict(currents)
        return self._engine.solve()

    def update_loads(self, delta: Mapping[int, float]) -> IncrementalSolve:
        """Apply additive current changes to the current vector and re-solve."""
        merged = dict(self._currents)
        for node_index, amps in delta.items():
            merged[node_index] = merged.get(node_index, 0.0) + amps
        return self.set_loads(merged)
