"""Process-wide AMG setup cache.

The AMG setup stage (pairwise aggregation, Galerkin products, coarse LU)
dominates the cost of a *rough* solve: the fusion framework runs only 1-10
PCG iterations, so rebuilding the hierarchy for every call to
``analyze_design`` throws away most of the paper's claimed speedup.  Many
workloads solve the **same conductance matrix** repeatedly — curriculum
epochs over a fixed design suite, the fallback cascade's adjusted retry,
Fig. 7 iteration sweeps, transient/incremental stepping — and for all of
them the hierarchy is a pure function of ``(matrix, AMGOptions)``.

This module keys hierarchies by a *content fingerprint* of the matrix
(shape + CSR structure + values, hashed with BLAKE2b) plus the frozen
:class:`~repro.solvers.amg.AMGOptions`.  A cache hit returns the exact
hierarchy object built before, so the preconditioner — and therefore the
PCG iterate stream — is **bitwise identical** to an uncached run.

The cache is process-global (workers forked by the batch engine inherit a
copy-on-write snapshot and then populate their own), LRU-bounded, and
thread-safe.  Hit/miss counters are exposed so
:class:`~repro.diagnostics.RunDiagnostics` can report per-run cache
behaviour.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

import scipy.sparse as sp

from repro.obs import counter_add
from repro.solvers.amg import AMGHierarchy, AMGOptions, build_hierarchy


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter movement since an *earlier* snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }


def matrix_fingerprint(matrix: sp.spmatrix) -> str:
    """Content hash of a sparse matrix: shape, CSR structure and values.

    Two matrices share a fingerprint iff their canonical CSR forms are
    bitwise identical, which is exactly the condition under which an AMG
    hierarchy may be reused without changing any downstream arithmetic.
    """
    csr = matrix.tocsr()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(csr.shape).encode())
    digest.update(csr.indptr.tobytes())
    digest.update(csr.indices.tobytes())
    digest.update(csr.data.tobytes())
    return digest.hexdigest()


def chained_fingerprint(parent: str, delta_token: str) -> str:
    """Fingerprint of ``parent`` matrix after one structural delta.

    The incremental engine identifies its patched systems by *delta
    chain* — ``chain(chain(fp0, d1), d2)`` — instead of re-hashing the
    full CSR content after every edit.  Two chains collide only when
    they apply the same token sequence to the same base, so an ECO sweep
    that revisits a structural state (apply candidate, revert, re-apply)
    hits the setup cache without touching the matrix data.  Chain keys
    live in the same namespace as content fingerprints but are distinct
    from them: the same matrix reached by stamping and by patching gets
    two cache entries, which costs one redundant build, never a wrong
    hierarchy.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(parent.encode())
    digest.update(b"\x00")
    digest.update(delta_token.encode())
    return digest.hexdigest()


class AMGSetupCache:
    """LRU cache of AMG hierarchies keyed by (matrix fingerprint, options)."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, AMGOptions], AMGHierarchy] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core API ------------------------------------------------------------

    def get_or_build(
        self,
        matrix: sp.spmatrix,
        options: AMGOptions,
        fingerprint: str | None = None,
    ) -> tuple[AMGHierarchy, bool]:
        """The hierarchy for *matrix* under *options*; builds on first use.

        Returns ``(hierarchy, hit)``.  The build itself runs outside the
        lock so concurrent threads are not serialised on setup; a racing
        duplicate build is resolved first-writer-wins.

        *fingerprint* lets a caller that already knows the matrix
        identity (the incremental engine's delta-chain keys) skip the
        content hash; the caller is then responsible for the key being
        injective over the matrices it presents.
        """
        key = (fingerprint or matrix_fingerprint(matrix), options)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                counter_add("amg_setup_cache.hits")
                return cached, True
            self._misses += 1
        counter_add("amg_setup_cache.misses")
        hierarchy = build_hierarchy(matrix, options)
        with self._lock:
            winner = self._entries.setdefault(key, hierarchy)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                counter_add("amg_setup_cache.evictions")
        return winner, False

    def resize(self, max_entries: int) -> None:
        """Change the capacity, evicting LRU entries if shrinking.

        Both the capacity write and the eviction loop happen under the
        lock: a racing :meth:`get_or_build` must never observe the new
        (smaller) capacity while the cache still holds more entries, nor
        interleave its own eviction loop with this one.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        with self._lock:
            self.max_entries = max_entries
            while len(self._entries) > max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                counter_add("amg_setup_cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache every AMG-PCG solver consults by default.
_GLOBAL_CACHE = AMGSetupCache()
_ENABLED = True


def global_setup_cache() -> AMGSetupCache:
    return _GLOBAL_CACHE


def setup_cache_enabled() -> bool:
    return _ENABLED


def setup_cache_stats() -> CacheStats:
    """Snapshot of the global cache counters."""
    return _GLOBAL_CACHE.stats


def clear_setup_cache() -> None:
    """Drop all cached hierarchies (counters are kept)."""
    _GLOBAL_CACHE.clear()


def configure_setup_cache(max_entries: int) -> None:
    """Resize the global cache (evicts immediately if shrinking)."""
    _GLOBAL_CACHE.resize(max_entries)


@contextmanager
def setup_cache_disabled():
    """Context manager forcing every setup to rebuild (benchmark baseline)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
