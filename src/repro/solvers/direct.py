"""Direct sparse solver — the golden reference.

EDA signoff flows treat a converged direct factorisation (KLU / CHOLMOD)
as ground truth.  Here sparse LU from SuperLU (via scipy) plays that role;
for the SPD reduced systems it is numerically equivalent to a Cholesky
solve and is used to produce golden IR-drop labels for the dataset.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.solvers.base import SolveResult, Timer, check_system


class DirectSolver:
    """Sparse-LU solver with factor caching for repeated right-hand sides."""

    def __init__(self) -> None:
        self._cached_factor = None
        self._cached_matrix_id: int | None = None

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        """Factor (or reuse a cached factor) and solve exactly.

        ``x0`` is accepted for interface compatibility and ignored.
        """
        csr = check_system(matrix, rhs)
        timer = Timer()
        if self._cached_matrix_id != id(matrix) or self._cached_factor is None:
            self._cached_factor = splu(csr.tocsc())
            self._cached_matrix_id = id(matrix)
        setup = timer.lap()
        x = self._cached_factor.solve(rhs)
        solve = timer.lap()
        residual = float(np.linalg.norm(rhs - csr @ x))
        return SolveResult(
            x=np.asarray(x, dtype=float),
            iterations=1,
            converged=True,
            residual_norms=[float(np.linalg.norm(rhs)), residual],
            setup_seconds=setup,
            solve_seconds=solve,
        )
