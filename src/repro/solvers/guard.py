"""Solver guardrails and the automatic fallback cascade.

The fusion framework tolerates *rough* solutions but not *broken* ones: a
NaN residual, a diverging Krylov iteration or a stalled preconditioner all
poison the numerical feature maps downstream.  This module adds two layers
of protection:

- :class:`IterationGuard` — per-iteration watchdog hooked into the shared
  PCG loop: NaN/Inf residual detection, divergence and stagnation
  detectors, and a wall-clock budget.
- :class:`FallbackCascade` — tries AMG-PCG first, retries with adjusted
  parameters (stronger smoothing, relaxed tolerance), then degrades to
  Jacobi-PCG and finally a dense/direct solve.  Every attempt and every
  fallback is recorded in a :class:`SolverDiagnostics`, never silent.

A cap-limited non-converged solve is *not* a failure — the paper's rough
regime deliberately stops after 1-10 iterations.  Failure means the guard
tripped, the solver raised, or the iterate contains non-finite entries.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.obs import counter_add, deadline_remaining, monotonic, span
from repro.solvers.base import SolveResult, SolverOptions

#: Signature of a fault hook: ``(solver_name, iteration, residual) -> residual``.
#: Used by the deterministic fault-injection harness to corrupt the residual
#: stream a guard observes; production code leaves it ``None``.
FaultHook = Callable[[str, int, float], float]


@dataclass(frozen=True)
class GuardrailOptions:
    """Watchdog thresholds applied per solve attempt.

    Attributes
    ----------
    max_seconds:
        Wall-clock budget for one attempt (``None`` = unlimited).
    divergence_factor:
        Trip when the residual norm exceeds this multiple of the initial
        residual (the iteration is exploding, not converging).
    stagnation_window:
        Number of consecutive iterations over which progress is measured.
    stagnation_improvement:
        Minimum relative residual reduction demanded over the window;
        less progress than this trips the stagnation detector.
    fault_hook:
        Test-only residual corruption hook (see :data:`FaultHook`).
    """

    max_seconds: float | None = None
    divergence_factor: float = 1e6
    stagnation_window: int = 25
    stagnation_improvement: float = 1e-4
    fault_hook: FaultHook | None = None

    def __post_init__(self) -> None:
        if self.divergence_factor <= 1.0:
            raise ValueError("divergence_factor must exceed 1")
        if self.stagnation_window < 2:
            raise ValueError("stagnation_window must be at least 2")


class IterationGuard:
    """Stateful per-iteration watchdog for one solve attempt.

    The PCG loop calls :meth:`observe` with each new residual norm; the
    (possibly fault-corrupted) value is returned for the convergence test
    and :attr:`tripped` holds the abort reason once a detector fires.
    """

    def __init__(
        self, options: GuardrailOptions | None = None, solver_name: str = "solver"
    ) -> None:
        self.options = options or GuardrailOptions()
        self.solver_name = solver_name
        self.tripped: str | None = None
        self._initial: float | None = None
        self._window: list[float] = []
        self._start = monotonic()

    def observe(self, iteration: int, residual_norm: float) -> float:
        """Feed one residual norm; returns it (after any fault injection)."""
        opts = self.options
        if opts.fault_hook is not None:
            residual_norm = float(
                opts.fault_hook(self.solver_name, iteration, residual_norm)
            )
        if self.tripped is not None:
            return residual_norm
        if not np.isfinite(residual_norm):
            self.tripped = "nan_residual"
            return residual_norm
        if self._initial is None:
            self._initial = max(residual_norm, np.finfo(float).tiny)
            return residual_norm
        if residual_norm > opts.divergence_factor * self._initial:
            self.tripped = "diverged"
            return residual_norm
        self._window.append(residual_norm)
        if len(self._window) > opts.stagnation_window:
            oldest = self._window.pop(0)
            if oldest > 0 and (
                1.0 - min(self._window) / oldest
            ) < opts.stagnation_improvement:
                self.tripped = "stagnated"
                return residual_norm
        if (
            opts.max_seconds is not None
            and monotonic() - self._start > opts.max_seconds
        ):
            self.tripped = "time_budget"
            return residual_norm
        remaining = deadline_remaining()
        if remaining is not None and remaining <= 0.0:
            # The cooperative deadline (batch budget handed down by the
            # worker pool) expired mid-solve: abort this attempt so the
            # cascade can decide what still fits in zero budget.
            self.tripped = "deadline"
        return residual_norm

    @property
    def seconds_elapsed(self) -> float:
        return monotonic() - self._start


@dataclass(frozen=True)
class AttemptRecord:
    """One solve attempt inside the cascade (success or failure).

    ``backoff_seconds`` is the jittered wait the cascade inserted
    *before* this attempt (0.0 for the primary attempt and whenever the
    previous stage succeeded), so summing ``seconds + backoff_seconds``
    across attempts accounts for the cascade's whole wall time.
    """

    solver: str
    converged: bool
    iterations: int
    final_residual: float
    seconds: float
    aborted: str | None = None
    error: str | None = None
    backoff_seconds: float = 0.0

    @property
    def failed(self) -> bool:
        return self.aborted is not None or self.error is not None

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "converged": self.converged,
            "iterations": self.iterations,
            "final_residual": self.final_residual,
            "seconds": self.seconds,
            "aborted": self.aborted,
            "error": self.error,
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass
class SolverDiagnostics:
    """Everything the cascade did for one linear system."""

    attempts: list[AttemptRecord] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)

    @property
    def final_solver(self) -> str | None:
        """Name of the attempt that produced the returned solution."""
        for attempt in reversed(self.attempts):
            if not attempt.failed:
                return attempt.solver
        return None

    @property
    def num_fallbacks(self) -> int:
        return len(self.fallbacks)

    @property
    def budget_seconds(self) -> float:
        """Total wall clock consumed across every attempt (incl. backoff)."""
        return sum(a.seconds + a.backoff_seconds for a in self.attempts)

    def to_dict(self) -> dict:
        return {
            "attempts": [a.to_dict() for a in self.attempts],
            "fallbacks": list(self.fallbacks),
            "final_solver": self.final_solver,
            "budget_seconds": self.budget_seconds,
        }

    def summary(self) -> str:
        """One-line human-readable record for CLI output."""
        chain = " -> ".join(a.solver for a in self.attempts) or "none"
        return (
            f"solver_chain={chain} final={self.final_solver} "
            f"fallbacks={self.num_fallbacks}"
        )


class SolverFailure(RuntimeError):
    """Raised when every stage of the fallback cascade failed."""

    def __init__(self, message: str, diagnostics: SolverDiagnostics) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


def _attempt_failed(result: SolveResult) -> str | None:
    """Classify a completed solve: abort reason, non-finite iterate, or OK."""
    if result.aborted is not None:
        return result.aborted
    if not np.all(np.isfinite(result.x)):
        return "non_finite_solution"
    return None


class FallbackCascade:
    """AMG-PCG → AMG-PCG (adjusted) → Jacobi-PCG → direct, guarded.

    Parameters
    ----------
    options:
        Iteration controls for the Krylov stages.
    amg_options, cycle_options:
        Primary AMG-PCG configuration (defaults used when omitted).
    guard_options:
        Watchdog thresholds shared by all guarded stages.
    retry:
        Include the adjusted-parameter AMG-PCG retry stage (stronger
        smoothing, 10x relaxed tolerance) between the primary attempt and
        Jacobi-PCG.
    backoff_base, backoff_cap:
        Jittered exponential wait inserted before a fallback attempt
        (stage ``k`` waits ``min(cap, base * 2**(k-1))`` scaled by a
        deterministic jitter in ``[0.5, 1.5)``), giving transient
        conditions — a contended cache, a torn shared resource — time to
        clear instead of retrying into the same failure.  The wait is
        recorded in :attr:`AttemptRecord.backoff_seconds` and skipped
        entirely under an expiring cooperative deadline.
    """

    def __init__(
        self,
        options: SolverOptions | None = None,
        amg_options=None,
        cycle_options=None,
        guard_options: GuardrailOptions | None = None,
        retry: bool = True,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.25,
    ) -> None:
        self.options = options or SolverOptions()
        self.amg_options = amg_options
        self.cycle_options = cycle_options
        self.guard_options = guard_options or GuardrailOptions()
        self.retry = retry
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)

    def _backoff_delay(self, position: int, name: str) -> float:
        """Deterministic jittered wait before fallback stage *position*."""
        raw = self.backoff_base * (2.0 ** max(position - 1, 0))
        jitter = (zlib.crc32(f"{position}:{name}".encode()) % 1024) / 1024.0
        return min(self.backoff_cap, raw) * (0.5 + jitter)

    # -- stages -------------------------------------------------------------

    def _stages(self) -> list[tuple[str, Callable]]:
        from repro.solvers.amg import AMGOptions
        from repro.solvers.amg_pcg import AMGPCGSolver
        from repro.solvers.cg import JacobiPCGSolver
        from repro.solvers.cycles import CycleOptions
        from repro.solvers.direct import DirectSolver

        amg_opts = self.amg_options or AMGOptions()
        cycle_opts = self.cycle_options or CycleOptions()

        def primary() -> AMGPCGSolver:
            return AMGPCGSolver(
                options=self.options,
                amg_options=amg_opts,
                cycle_options=cycle_opts,
            )

        def adjusted() -> AMGPCGSolver:
            # Stronger smoothing + relaxed tolerance: trades per-iteration
            # cost for robustness on systems that defeated the primary setup.
            stronger = replace(
                cycle_opts,
                presmooth_sweeps=cycle_opts.presmooth_sweeps + 1,
                postsmooth_sweeps=cycle_opts.postsmooth_sweeps + 1,
                smoother="gauss_seidel",
            )
            relaxed = replace(self.options, tol=self.options.tol * 10.0)
            return AMGPCGSolver(
                options=relaxed, amg_options=amg_opts, cycle_options=stronger
            )

        def jacobi() -> JacobiPCGSolver:
            return JacobiPCGSolver(options=self.options)

        stages: list[tuple[str, Callable]] = [("amg_pcg", primary)]
        if self.retry:
            stages.append(("amg_pcg_retry", adjusted))
        stages.append(("jacobi_pcg", jacobi))
        stages.append(("direct", DirectSolver))
        return stages

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> tuple[SolveResult, SolverDiagnostics]:
        """Solve with automatic degradation; never returns a broken iterate.

        Returns the first healthy :class:`SolveResult` plus the diagnostics
        of every attempt made.  Raises :class:`SolverFailure` only when the
        final direct stage also fails (e.g. an exactly singular matrix that
        upstream repair did not catch).
        """
        diagnostics = SolverDiagnostics()
        stages = self._stages()
        pending_backoff = 0.0
        for position, (name, factory) in enumerate(stages):
            final_stage = position + 1 >= len(stages)
            remaining = deadline_remaining()
            if remaining is not None and remaining <= 0.0 and not final_stage:
                # The cooperative deadline is already gone: an iterative
                # attempt cannot finish in the remaining budget, so
                # short-circuit straight toward the direct stage (which
                # always runs — returning *something* beats nothing).
                counter_add("solver.deadline_skips")
                diagnostics.attempts.append(
                    AttemptRecord(
                        solver=name,
                        converged=False,
                        iterations=0,
                        final_residual=float("nan"),
                        seconds=0.0,
                        aborted="deadline_skipped",
                    )
                )
                counter_add("solver.fallbacks")
                diagnostics.fallbacks.append(stages[position + 1][0])
                pending_backoff = 0.0
                continue
            backoff = 0.0
            if pending_backoff > 0.0 and (
                remaining is None or remaining > pending_backoff
            ):
                # Give a transient condition time to clear before the
                # fallback attempt; skipped when the deadline cannot
                # afford the wait.
                backoff = pending_backoff
                time.sleep(backoff)
            pending_backoff = 0.0
            guard = IterationGuard(self.guard_options, solver_name=name)
            counter_add("solver.attempts")
            with span("solve_attempt", solver=name) as attempt_span:
                try:
                    solver = factory()
                    if name == "direct":
                        result = solver.solve(matrix, rhs, x0=x0)
                    else:
                        result = solver.solve(matrix, rhs, x0=x0, guard=guard)
                except Exception as exc:  # noqa: BLE001 — any stage error degrades
                    attempt_span.close()
                    attempt_span.attrs["outcome"] = "error"
                    diagnostics.attempts.append(
                        AttemptRecord(
                            solver=name,
                            converged=False,
                            iterations=0,
                            final_residual=float("nan"),
                            seconds=attempt_span.duration,
                            error=f"{type(exc).__name__}: {exc}",
                            backoff_seconds=backoff,
                        )
                    )
                else:
                    reason = _attempt_failed(result)
                    attempt_span.close()
                    attempt_span.attrs["outcome"] = reason or "ok"
                    diagnostics.attempts.append(
                        AttemptRecord(
                            solver=name,
                            converged=result.converged,
                            iterations=result.iterations,
                            final_residual=result.final_residual,
                            seconds=attempt_span.duration,
                            aborted=reason,
                            backoff_seconds=backoff,
                        )
                    )
                    if reason is None:
                        return result, diagnostics
            if not final_stage:
                counter_add("solver.fallbacks")
                diagnostics.fallbacks.append(stages[position + 1][0])
                pending_backoff = self._backoff_delay(
                    position + 1, stages[position + 1][0]
                )
        raise SolverFailure(
            "all solver stages failed: "
            + "; ".join(
                f"{a.solver}={a.aborted or a.error}" for a in diagnostics.attempts
            ),
            diagnostics,
        )
