"""AMG-PCG: the PowerRush linear solver.

"The solver utilizes aggregation-based AMG with the K-cycle as an implicit
preconditioner for the Conjugate Gradient method" (Section III-B).  Because
the K-cycle preconditioner varies between applications, the outer loop is
*flexible* CG (Polak-Ribiere beta), matching Notay's AGMG construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.obs import counter_add, span
from repro.solvers.amg import AMGHierarchy, AMGOptions, build_hierarchy
from repro.solvers.base import SolveResult, SolverOptions, check_system
from repro.solvers.cache import global_setup_cache, setup_cache_enabled
from repro.solvers.cg import _pcg
from repro.solvers.cycles import CycleOptions, CyclePreconditioner
from repro.solvers.guard import GuardrailOptions, IterationGuard


class AMGPCGSolver:
    """Flexible CG preconditioned by an aggregation-AMG K-cycle.

    Setup reuse happens at two layers: a same-object fast path for
    repeated solves with the *same array object* (the Fig. 7 iteration
    sweep), and the process-wide :mod:`repro.solvers.cache` fingerprint
    cache for repeated solves of *equal* matrices across solver instances
    (curriculum epochs, the fallback cascade's retry, the batch engine).
    Either way the hierarchy object is shared, so iterate streams stay
    bitwise identical to an uncached run.

    The fast path holds a strong reference to the cached matrix and
    compares by identity (``is``), never by raw ``id()``: a bare ``id``
    comparison is unsound because CPython reuses addresses once an object
    is garbage collected, which would silently hand a *different* matrix
    the previous matrix's preconditioner.
    """

    def __init__(
        self,
        options: SolverOptions | None = None,
        amg_options: AMGOptions | None = None,
        cycle_options: CycleOptions | None = None,
        guard_options: GuardrailOptions | None = None,
        use_setup_cache: bool = True,
    ) -> None:
        self.options = options or SolverOptions()
        self.amg_options = amg_options or AMGOptions()
        self.cycle_options = cycle_options or CycleOptions()
        self.guard_options = guard_options
        self.use_setup_cache = use_setup_cache
        #: Strong reference to the matrix the cached preconditioner was
        #: built for.  Keeping the object alive is what makes the
        #: identity fast path sound: a live object's address cannot be
        #: reused by a newly allocated matrix.
        self._cached_matrix: sp.spmatrix | None = None
        self._cached_preconditioner: CyclePreconditioner | None = None
        self._last_setup_seconds: float = 0.0
        self._last_setup_was_hit = False

    @property
    def hierarchy(self) -> AMGHierarchy | None:
        """The most recently built hierarchy (``None`` before first solve)."""
        if self._cached_preconditioner is None:
            return None
        return self._cached_preconditioner.hierarchy

    @property
    def last_setup_was_cache_hit(self) -> bool:
        """Whether the most recent :meth:`setup` reused a cached hierarchy."""
        return self._last_setup_was_hit

    def setup(self, matrix: sp.spmatrix) -> CyclePreconditioner:
        """Run (or reuse) the AMG setup stage for *matrix*.

        ``SolveResult.setup_seconds`` accounting contract: only the cost
        of *this* call is recorded.  A same-object reuse costs (and
        therefore reports) zero; a fingerprint-cache hit reports just
        the hash-and-lookup time, never the original build cost.
        """
        if (
            self._cached_matrix is matrix
            and self._cached_preconditioner is not None
        ):
            self._last_setup_seconds = 0.0
            self._last_setup_was_hit = True
            return self._cached_preconditioner
        with span("amg_setup") as setup_span:
            if self.use_setup_cache and setup_cache_enabled():
                hierarchy, hit = global_setup_cache().get_or_build(
                    matrix, self.amg_options
                )
            else:
                hierarchy, hit = build_hierarchy(matrix, self.amg_options), False
            setup_span.attrs["cache_hit"] = hit
        self._last_setup_seconds = setup_span.duration
        self._last_setup_was_hit = hit
        self._cached_preconditioner = CyclePreconditioner(
            hierarchy, self.cycle_options
        )
        self._cached_matrix = matrix
        return self._cached_preconditioner

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
        guard: IterationGuard | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        preconditioner = self.setup(matrix)
        if guard is None and self.guard_options is not None:
            guard = IterationGuard(self.guard_options, solver_name="amg_pcg")
        with span("pcg", solver="amg_pcg"):
            result = _pcg(
                csr,
                rhs,
                x0,
                preconditioner=preconditioner.apply,
                options=self.options,
                flexible=True,
                guard=guard,
            )
        counter_add("pcg.iterations", result.iterations)
        result.setup_seconds += self._last_setup_seconds
        return result
