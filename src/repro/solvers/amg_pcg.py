"""AMG-PCG: the PowerRush linear solver.

"The solver utilizes aggregation-based AMG with the K-cycle as an implicit
preconditioner for the Conjugate Gradient method" (Section III-B).  Because
the K-cycle preconditioner varies between applications, the outer loop is
*flexible* CG (Polak-Ribiere beta), matching Notay's AGMG construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers.amg import AMGHierarchy, AMGOptions, build_hierarchy
from repro.solvers.base import SolveResult, SolverOptions, Timer, check_system
from repro.solvers.cache import global_setup_cache, setup_cache_enabled
from repro.solvers.cg import _pcg
from repro.solvers.cycles import CycleOptions, CyclePreconditioner
from repro.solvers.guard import GuardrailOptions, IterationGuard


class AMGPCGSolver:
    """Flexible CG preconditioned by an aggregation-AMG K-cycle.

    Setup reuse happens at two layers: an ``id()`` fast path for repeated
    solves with the *same array object* (the Fig. 7 iteration sweep), and
    the process-wide :mod:`repro.solvers.cache` fingerprint cache for
    repeated solves of *equal* matrices across solver instances (curriculum
    epochs, the fallback cascade's retry, the batch engine).  Either way
    the hierarchy object is shared, so iterate streams stay bitwise
    identical to an uncached run.
    """

    def __init__(
        self,
        options: SolverOptions | None = None,
        amg_options: AMGOptions | None = None,
        cycle_options: CycleOptions | None = None,
        guard_options: GuardrailOptions | None = None,
        use_setup_cache: bool = True,
    ) -> None:
        self.options = options or SolverOptions()
        self.amg_options = amg_options or AMGOptions()
        self.cycle_options = cycle_options or CycleOptions()
        self.guard_options = guard_options
        self.use_setup_cache = use_setup_cache
        self._cached_matrix_id: int | None = None
        self._cached_preconditioner: CyclePreconditioner | None = None
        self._cached_setup_seconds: float = 0.0
        self._last_setup_was_hit = False

    @property
    def hierarchy(self) -> AMGHierarchy | None:
        """The most recently built hierarchy (``None`` before first solve)."""
        if self._cached_preconditioner is None:
            return None
        return self._cached_preconditioner.hierarchy

    @property
    def last_setup_was_cache_hit(self) -> bool:
        """Whether the most recent :meth:`setup` reused a cached hierarchy."""
        return self._last_setup_was_hit

    def setup(self, matrix: sp.spmatrix) -> CyclePreconditioner:
        """Run (or reuse) the AMG setup stage for *matrix*."""
        if (
            self._cached_matrix_id == id(matrix)
            and self._cached_preconditioner is not None
        ):
            return self._cached_preconditioner
        timer = Timer()
        if self.use_setup_cache and setup_cache_enabled():
            hierarchy, hit = global_setup_cache().get_or_build(
                matrix, self.amg_options
            )
        else:
            hierarchy, hit = build_hierarchy(matrix, self.amg_options), False
        self._cached_setup_seconds = timer.lap()
        self._last_setup_was_hit = hit
        self._cached_preconditioner = CyclePreconditioner(
            hierarchy, self.cycle_options
        )
        self._cached_matrix_id = id(matrix)
        return self._cached_preconditioner

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
        guard: IterationGuard | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        preconditioner = self.setup(matrix)
        if guard is None and self.guard_options is not None:
            guard = IterationGuard(self.guard_options, solver_name="amg_pcg")
        result = _pcg(
            csr,
            rhs,
            x0,
            preconditioner=preconditioner.apply,
            options=self.options,
            flexible=True,
            guard=guard,
        )
        result.setup_seconds += self._cached_setup_seconds
        return result
