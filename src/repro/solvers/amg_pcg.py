"""AMG-PCG: the PowerRush linear solver.

"The solver utilizes aggregation-based AMG with the K-cycle as an implicit
preconditioner for the Conjugate Gradient method" (Section III-B).  Because
the K-cycle preconditioner varies between applications, the outer loop is
*flexible* CG (Polak-Ribiere beta), matching Notay's AGMG construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers.amg import AMGHierarchy, AMGOptions, build_hierarchy
from repro.solvers.base import SolveResult, SolverOptions, Timer, check_system
from repro.solvers.cg import _pcg
from repro.solvers.cycles import CycleOptions, CyclePreconditioner
from repro.solvers.guard import GuardrailOptions, IterationGuard


class AMGPCGSolver:
    """Flexible CG preconditioned by an aggregation-AMG K-cycle.

    The hierarchy is (re)built lazily per matrix and cached, so sweeping
    ``max_iterations`` over the same system — as the trade-off study in
    Fig. 7 does — pays the setup cost once.
    """

    def __init__(
        self,
        options: SolverOptions | None = None,
        amg_options: AMGOptions | None = None,
        cycle_options: CycleOptions | None = None,
        guard_options: GuardrailOptions | None = None,
    ) -> None:
        self.options = options or SolverOptions()
        self.amg_options = amg_options or AMGOptions()
        self.cycle_options = cycle_options or CycleOptions()
        self.guard_options = guard_options
        self._cached_matrix_id: int | None = None
        self._cached_preconditioner: CyclePreconditioner | None = None
        self._cached_setup_seconds: float = 0.0

    @property
    def hierarchy(self) -> AMGHierarchy | None:
        """The most recently built hierarchy (``None`` before first solve)."""
        if self._cached_preconditioner is None:
            return None
        return self._cached_preconditioner.hierarchy

    def setup(self, matrix: sp.spmatrix) -> CyclePreconditioner:
        """Run (or reuse) the AMG setup stage for *matrix*."""
        if (
            self._cached_matrix_id == id(matrix)
            and self._cached_preconditioner is not None
        ):
            return self._cached_preconditioner
        timer = Timer()
        hierarchy = build_hierarchy(matrix, self.amg_options)
        self._cached_setup_seconds = timer.lap()
        self._cached_preconditioner = CyclePreconditioner(
            hierarchy, self.cycle_options
        )
        self._cached_matrix_id = id(matrix)
        return self._cached_preconditioner

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
        guard: IterationGuard | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        preconditioner = self.setup(matrix)
        if guard is None and self.guard_options is not None:
            guard = IterationGuard(self.guard_options, solver_name="amg_pcg")
        result = _pcg(
            csr,
            rhs,
            x0,
            preconditioner=preconditioner.apply,
            options=self.options,
            flexible=True,
            guard=guard,
        )
        result.setup_seconds += self._cached_setup_seconds
        return result
