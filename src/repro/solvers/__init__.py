"""Numerical linear solvers for power-grid systems.

The centrepiece is :class:`~repro.solvers.amg_pcg.AMGPCGSolver`, the
algebraic-multigrid preconditioned conjugate-gradient method the paper
adopts from PowerRush (Fig. 3): aggregation-based AMG with a K-cycle acting
as an implicit preconditioner for CG.  Supporting pieces:

- :mod:`repro.solvers.smoothers` — Jacobi / Gauss-Seidel / SOR relaxation.
- :mod:`repro.solvers.cg` — plain CG and Jacobi-preconditioned CG.
- :mod:`repro.solvers.amg` — pairwise-aggregation AMG hierarchy.
- :mod:`repro.solvers.cycles` — V-, W- and K-cycle preconditioner application.
- :mod:`repro.solvers.direct` — sparse-LU golden reference solver.
- :mod:`repro.solvers.powerrush` — the end-to-end PowerRush-style simulator.
"""

from repro.solvers.amg import AMGHierarchy, AMGLevel, build_hierarchy
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolveResult, SolverOptions
from repro.solvers.cg import CGSolver, JacobiPCGSolver
from repro.solvers.cycles import CyclePreconditioner
from repro.solvers.direct import DirectSolver
from repro.solvers.guard import (
    FallbackCascade,
    GuardrailOptions,
    IterationGuard,
    SolverDiagnostics,
    SolverFailure,
)
from repro.solvers.powerrush import PowerRushSimulator, SimulationReport
from repro.solvers.incremental import (
    AddPad,
    GridDelta,
    IncrementalAnalyzer,
    IncrementalEngine,
    IncrementalOptions,
    IncrementalSolve,
    RemovePad,
    ReviseLoads,
    ScaleWire,
    SetWireResistance,
)
from repro.solvers.macromodel import SchurReduction, layer_port_rows
from repro.solvers.schwarz import AdditiveSchwarzPreconditioner, SchwarzPCGSolver
from repro.solvers.random_walk import RandomWalkOptions, RandomWalkSolver
from repro.solvers.vectored import VectoredAnalyzer, VectoredResult

__all__ = [
    "AMGHierarchy",
    "AMGLevel",
    "AMGPCGSolver",
    "CGSolver",
    "CyclePreconditioner",
    "DirectSolver",
    "FallbackCascade",
    "GuardrailOptions",
    "IterationGuard",
    "SolverDiagnostics",
    "SolverFailure",
    "AddPad",
    "GridDelta",
    "IncrementalAnalyzer",
    "IncrementalEngine",
    "IncrementalOptions",
    "IncrementalSolve",
    "RemovePad",
    "ReviseLoads",
    "ScaleWire",
    "SetWireResistance",
    "JacobiPCGSolver",
    "PowerRushSimulator",
    "RandomWalkOptions",
    "RandomWalkSolver",
    "AdditiveSchwarzPreconditioner",
    "SchurReduction",
    "SchwarzPCGSolver",
    "layer_port_rows",
    "SimulationReport",
    "SolveResult",
    "SolverOptions",
    "VectoredAnalyzer",
    "VectoredResult",
    "build_hierarchy",
]
