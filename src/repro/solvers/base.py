"""Common solver interfaces and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
import scipy.sparse as sp

from repro.obs import monotonic


@dataclass(frozen=True)
class SolverOptions:
    """Iteration controls shared by every iterative solver.

    Attributes
    ----------
    tol:
        Relative-residual convergence tolerance (``||r||/||b||``).
    max_iterations:
        Hard iteration cap.  The fusion framework deliberately sets this
        low (1-10) to obtain rough solutions quickly.
    record_history:
        Record the residual norm after every iteration (small overhead).
    """

    tol: float = 1e-8
    max_iterations: int = 1000
    record_history: bool = True

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError(f"tol must be non-negative, got {self.tol}")
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be non-negative, got {self.max_iterations}"
            )


@dataclass
class SolveResult:
    """Outcome of one linear solve.

    Attributes
    ----------
    x:
        The (possibly rough) solution vector.
    iterations:
        Iterations actually performed.
    converged:
        Whether the relative residual dropped below the tolerance.
    residual_norms:
        ``||b - Ax_k||`` after each iteration (index 0 = initial residual)
        when history recording is on.
    setup_seconds, solve_seconds:
        Wall-clock split between preconditioner setup and iteration.
    aborted:
        ``None`` for a clean run; otherwise the guardrail trip reason
        (``"nan_residual"``, ``"diverged"``, ``"stagnated"``,
        ``"time_budget"``, ``"indefinite_matrix"``) that stopped iteration
        early.  A non-``None`` value means the iterate should not be
        trusted and the fallback cascade treats the attempt as failed.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    aborted: str | None = None

    @property
    def final_residual(self) -> float:
        """Last recorded residual norm (``nan`` when history is off)."""
        if not self.residual_norms:
            return float("nan")
        return self.residual_norms[-1]

    def convergence_factor(self) -> float:
        """Geometric-mean per-iteration residual reduction factor."""
        if len(self.residual_norms) < 2 or self.residual_norms[0] == 0.0:
            return float("nan")
        first, last = self.residual_norms[0], self.residual_norms[-1]
        if last == 0.0:
            return 0.0
        steps = len(self.residual_norms) - 1
        return float((last / first) ** (1.0 / steps))


class LinearOperator(Protocol):
    """Anything that can be applied to a vector (preconditioners)."""

    def apply(self, r: np.ndarray) -> np.ndarray: ...


class Solver(Protocol):
    """Common protocol: solve ``A x = b`` from an optional initial guess."""

    def solve(
        self,
        matrix: sp.csr_matrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult: ...


class Timer:
    """Tiny context-free stopwatch used for setup/solve accounting.

    Built on :func:`repro.obs.monotonic` — the observability layer owns
    the timing primitive; this class just keeps the lap arithmetic the
    inner PCG loop needs without opening a span per iteration.
    """

    def __init__(self) -> None:
        self._start = monotonic()

    def lap(self) -> float:
        """Seconds since construction or the previous lap."""
        now = monotonic()
        elapsed = now - self._start
        self._start = now
        return elapsed


def check_system(matrix: sp.spmatrix, rhs: np.ndarray) -> sp.csr_matrix:
    """Validate shapes and normalise the matrix to CSR."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    if rhs.ndim != 1 or rhs.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"rhs shape {rhs.shape} incompatible with matrix {matrix.shape}"
        )
    return sp.csr_matrix(matrix)
