"""Hierarchical analysis via Schur-complement macromodeling.

The paper's related work cites "hierarchical analysis of power
distribution networks" (Zhao et al., DAC'00): internal nodes of a block
are eliminated exactly, leaving a dense *macromodel* over the block's
ports.  For an SPD system partitioned into ports ``p`` and internals
``i``:

    S   = A_pp - A_pi A_ii^{-1} A_ip        (the port macromodel)
    b_s = b_p  - A_pi A_ii^{-1} b_i

Solving ``S x_p = b_s`` gives the exact port voltages; internals are
recovered by back-substitution ``x_i = A_ii^{-1} (b_i - A_ip x_p)``.
The reduction is exact (no approximation), so it is both a solver
strategy and a validation tool for hierarchical flows.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.mna.system import ReducedSystem


class SchurReduction:
    """Exact port macromodel of a reduced PG system.

    Parameters
    ----------
    system:
        The SPD reduced system to partition.
    port_rows:
        Row indices (in reduced-unknown space) kept as ports; everything
        else becomes internal and is eliminated.
    """

    def __init__(self, system: ReducedSystem, port_rows: np.ndarray) -> None:
        port_rows = np.unique(np.asarray(port_rows, dtype=np.int64))
        n = system.size
        if port_rows.size == 0:
            raise ValueError("at least one port row is required")
        if port_rows.min() < 0 or port_rows.max() >= n:
            raise ValueError(f"port rows out of range [0, {n})")
        if port_rows.size == n:
            raise ValueError("all rows are ports; nothing to eliminate")

        mask = np.zeros(n, dtype=bool)
        mask[port_rows] = True
        self.system = system
        self.port_rows = port_rows
        self.internal_rows = np.nonzero(~mask)[0]

        matrix = sp.csc_matrix(system.matrix)
        self._a_pp = matrix[np.ix_(port_rows, port_rows)]
        self._a_pi = sp.csc_matrix(matrix[np.ix_(port_rows, self.internal_rows)])
        self._a_ip = sp.csc_matrix(matrix[np.ix_(self.internal_rows, port_rows)])
        a_ii = sp.csc_matrix(
            matrix[np.ix_(self.internal_rows, self.internal_rows)]
        )
        self._a_ii_lu = splu(a_ii)

        # dense Schur complement over the ports
        inv_aii_aip = self._a_ii_lu.solve(self._a_ip.toarray())
        self.schur = np.asarray(
            self._a_pp.toarray() - self._a_pi.toarray() @ inv_aii_aip
        )

    @property
    def num_ports(self) -> int:
        return self.port_rows.size

    @property
    def num_internal(self) -> int:
        return self.internal_rows.size

    def reduced_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Fold the internal part of *rhs* onto the ports."""
        if rhs.shape != (self.system.size,):
            raise ValueError(
                f"expected rhs of shape ({self.system.size},), got {rhs.shape}"
            )
        b_p = rhs[self.port_rows]
        b_i = rhs[self.internal_rows]
        return b_p - self._a_pi @ self._a_ii_lu.solve(b_i)

    def solve(self, rhs: np.ndarray | None = None) -> np.ndarray:
        """Solve the full system through the macromodel (exact).

        Returns the solution over all reduced unknowns.
        """
        rhs = self.system.rhs if rhs is None else np.asarray(rhs, dtype=float)
        x_p = np.linalg.solve(self.schur, self.reduced_rhs(rhs))
        b_i = rhs[self.internal_rows]
        x_i = self._a_ii_lu.solve(b_i - self._a_ip @ x_p)
        x = np.empty(self.system.size, dtype=float)
        x[self.port_rows] = x_p
        x[self.internal_rows] = x_i
        return x

    def port_macromodel(self) -> np.ndarray:
        """The dense port conductance matrix (symmetric positive definite)."""
        return self.schur.copy()


def layer_port_rows(system: ReducedSystem, grid, min_layer: int) -> np.ndarray:
    """Port selection helper: all unknowns on metal layers >= *min_layer*.

    The classic hierarchical split: keep the upper-metal backbone as
    ports, eliminate the dense bottom-layer internals.
    """
    rows = []
    for row, node_index in enumerate(system.unknown_indices):
        node = grid.node(int(node_index))
        if node.layer is not None and node.layer >= min_layer:
            rows.append(row)
    return np.array(rows, dtype=np.int64)
