"""Aggregation-based algebraic multigrid hierarchy.

Setup stage of the AMG-PCG solver (Fig. 3): "the solver recursively selects
coarser levels of the problem by grouping nodes and connections into
progressively coarser grids".  The grouping here is Notay-style *pairwise
aggregation*: each fine node is matched with its strongest negatively
coupled neighbour; two matching passes per level ("double pairwise") give a
coarsening factor near four.  Coarse operators are Galerkin products
``A_c = P^T A P`` with piecewise-constant prolongation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.solvers.base import check_system

_UNAGGREGATED = -1


@dataclass(frozen=True)
class AMGOptions:
    """Hierarchy construction knobs.

    Attributes
    ----------
    max_levels:
        Cap on hierarchy depth (including the finest level).
    max_coarse_size:
        Stop coarsening once a level has at most this many unknowns.
    strength_threshold:
        A neighbour *j* of *i* is a pairing candidate when
        ``|a_ij| >= strength_threshold * max_k |a_ik|`` over negative
        off-diagonals; weak couplings are never aggregated together.
    passes_per_level:
        Pairwise matching passes per level (2 = double pairwise, the
        PowerRush/AGMG default).
    smooth_prolongation:
        Smoothed aggregation (Vanek et al.): replace the piecewise-constant
        tentative prolongation by ``(I - omega D^{-1} A) P``.  Improves the
        convergence rate per cycle at the cost of denser coarse operators.
    smoothing_omega:
        Damping for the prolongation smoother (2/3 is the Jacobi classic).
    """

    max_levels: int = 20
    max_coarse_size: int = 64
    strength_threshold: float = 0.25
    passes_per_level: int = 2
    smooth_prolongation: bool = False
    smoothing_omega: float = 2.0 / 3.0

    def __post_init__(self) -> None:
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        if self.max_coarse_size < 1:
            raise ValueError("max_coarse_size must be >= 1")
        if not 0.0 <= self.strength_threshold <= 1.0:
            raise ValueError("strength_threshold must be in [0, 1]")
        if self.passes_per_level < 1:
            raise ValueError("passes_per_level must be >= 1")
        if not 0.0 < self.smoothing_omega < 2.0:
            raise ValueError("smoothing_omega must be in (0, 2)")


def pairwise_aggregate(matrix: sp.csr_matrix, strength_threshold: float) -> np.ndarray:
    """One pass of pairwise aggregation.

    Returns an array ``agg`` with ``agg[i]`` = aggregate id of node *i*;
    ids are dense in ``[0, n_aggregates)``.  Nodes are visited in order of
    ascending degree (fewer connections first), which is the usual
    heuristic to avoid stranding weakly connected nodes as singletons.
    """
    n = matrix.shape[0]
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    agg = np.full(n, _UNAGGREGATED, dtype=np.int64)
    degrees = np.diff(indptr)
    order = np.argsort(degrees, kind="stable")

    next_id = 0
    for i in order:
        if agg[i] != _UNAGGREGATED:
            continue
        start, end = indptr[i], indptr[i + 1]
        best_j = -1
        best_val = 0.0
        strongest = 0.0
        for k in range(start, end):
            j = indices[k]
            if j == i:
                continue
            val = data[k]
            if val < 0.0 and -val > strongest:
                strongest = -val
        if strongest > 0.0:
            cutoff = strength_threshold * strongest
            for k in range(start, end):
                j = indices[k]
                if j == i or agg[j] != _UNAGGREGATED:
                    continue
                val = data[k]
                if val < 0.0 and -val >= cutoff and -val > best_val:
                    best_val = -val
                    best_j = j
        agg[i] = next_id
        if best_j >= 0:
            agg[best_j] = next_id
        next_id += 1
    return agg


def aggregation_to_prolongation(agg: np.ndarray) -> sp.csr_matrix:
    """Piecewise-constant prolongation from an aggregate assignment."""
    n = agg.shape[0]
    n_coarse = int(agg.max()) + 1 if n else 0
    data = np.ones(n, dtype=float)
    rows = np.arange(n, dtype=np.int64)
    return sp.csr_matrix((data, (rows, agg)), shape=(n, n_coarse))


def smooth_prolongation(
    matrix: sp.csr_matrix, tentative: sp.csr_matrix, omega: float
) -> sp.csr_matrix:
    """Smoothed-aggregation prolongation: ``(I - omega D^{-1} A) P``."""
    diag = matrix.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("prolongation smoothing requires a nonzero diagonal")
    inv_diag = sp.diags(omega / diag)
    return sp.csr_matrix(tentative - inv_diag @ (matrix @ tentative))


def coarsen_once(
    matrix: sp.csr_matrix, options: AMGOptions
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """One level of (possibly multi-pass) pairwise coarsening.

    Returns ``(P, A_coarse)`` where ``A_coarse = P^T A P``; with
    ``smooth_prolongation`` on, the composed tentative operator is
    Jacobi-smoothed before the Galerkin product.
    """
    tentative: sp.csr_matrix | None = None
    current = matrix
    for _ in range(options.passes_per_level):
        agg = pairwise_aggregate(current, options.strength_threshold)
        p_step = aggregation_to_prolongation(agg)
        current = sp.csr_matrix(p_step.T @ current @ p_step)
        current.sum_duplicates()
        tentative = p_step if tentative is None else sp.csr_matrix(
            tentative @ p_step
        )
        if current.shape[0] <= options.max_coarse_size:
            break
    if tentative is None:
        raise ValueError(
            "pairwise coarsening produced no prolongation; "
            "passes_per_level must be >= 1"
        )
    if not options.smooth_prolongation:
        return tentative, current
    smoothed = smooth_prolongation(matrix, tentative, options.smoothing_omega)
    coarse = sp.csr_matrix(smoothed.T @ matrix @ smoothed)
    coarse.sum_duplicates()
    return smoothed, coarse


@dataclass
class AMGLevel:
    """One level of the hierarchy.

    ``prolongation`` maps the *next coarser* level's vectors up to this
    level; it is ``None`` on the coarsest level.
    """

    matrix: sp.csr_matrix
    prolongation: sp.csr_matrix | None = None

    @property
    def size(self) -> int:
        return self.matrix.shape[0]


class AMGHierarchy:
    """The full multilevel hierarchy plus a factored coarsest-level solver."""

    def __init__(self, levels: list[AMGLevel]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels
        coarsest = levels[-1].matrix
        self._coarse_lu = splu(sp.csc_matrix(coarsest))

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def coarse_solve(self, rhs: np.ndarray) -> np.ndarray:
        """Exact solve on the coarsest level."""
        return np.asarray(self._coarse_lu.solve(rhs), dtype=float)

    def operator_complexity(self) -> float:
        """Sum of nonzeros over all levels divided by finest nonzeros.

        The standard AMG cost metric; healthy aggregation hierarchies stay
        below ~1.6.
        """
        finest_nnz = self.levels[0].matrix.nnz
        if finest_nnz == 0:
            return float("nan")
        return sum(level.matrix.nnz for level in self.levels) / finest_nnz

    def grid_complexity(self) -> float:
        """Sum of unknowns over all levels divided by finest unknowns."""
        finest_n = self.levels[0].size
        if finest_n == 0:
            return float("nan")
        return sum(level.size for level in self.levels) / finest_n


def build_hierarchy(
    matrix: sp.spmatrix, options: AMGOptions | None = None
) -> AMGHierarchy:
    """Run the AMG setup stage on a conductance matrix."""
    options = options or AMGOptions()
    current = check_system(matrix, np.zeros(matrix.shape[0]))
    levels: list[AMGLevel] = [AMGLevel(matrix=current)]
    while (
        levels[-1].size > options.max_coarse_size
        and len(levels) < options.max_levels
    ):
        prolongation, coarse = coarsen_once(levels[-1].matrix, options)
        if coarse.shape[0] >= levels[-1].size:
            break  # coarsening stalled; stop rather than loop forever
        levels[-1].prolongation = prolongation
        levels.append(AMGLevel(matrix=coarse))
    return AMGHierarchy(levels)
