"""Additive-Schwarz domain-decomposition preconditioner.

The related work cites "parallel domain decomposition for simulation of
large-scale power grids" (Sun et al., ICCAD'07).  The one-level additive
Schwarz preconditioner solves overlapping sub-blocks independently:

    M^{-1} r = sum_i  R_i^T  A_ii^{-1}  R_i r

where ``R_i`` restricts to (overlapping) block *i*.  Each block is
factored once; applications are embarrassingly parallel (serial here, but
the operator is identical).  With symmetric blocks the preconditioner is
SPD, so it drops straight into ordinary PCG.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.solvers.base import SolveResult, SolverOptions, check_system
from repro.solvers.cg import _pcg


def partition_blocks(
    matrix: sp.csr_matrix, num_blocks: int, overlap: int = 1
) -> list[np.ndarray]:
    """Overlapping index blocks from a BFS colouring of the matrix graph.

    Seeds are spread over the index range; blocks grow breadth-first to
    balanced sizes and are then expanded by *overlap* rings of
    neighbours.
    """
    n = matrix.shape[0]
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    num_blocks = min(num_blocks, n)
    indptr, indices = matrix.indptr, matrix.indices

    owner = np.full(n, -1, dtype=np.int64)
    seeds = np.linspace(0, n - 1, num_blocks).round().astype(np.int64)
    frontiers: list[list[int]] = []
    for b, seed in enumerate(seeds):
        seed = int(seed)
        while owner[seed] != -1:
            seed = (seed + 1) % n
        owner[seed] = b
        frontiers.append([seed])
    # balanced multi-source BFS
    active = True
    while active:
        active = False
        for b in range(num_blocks):
            next_frontier: list[int] = []
            for node in frontiers[b]:
                for j in indices[indptr[node] : indptr[node + 1]]:
                    if owner[j] == -1:
                        owner[j] = b
                        next_frontier.append(int(j))
            frontiers[b] = next_frontier
            if next_frontier:
                active = True
    # any isolated leftovers (disconnected rows) go to block 0
    owner[owner == -1] = 0

    blocks: list[np.ndarray] = []
    for b in range(num_blocks):
        members = set(np.nonzero(owner == b)[0].tolist())
        ring = set(members)
        for _ in range(overlap):
            grown: set[int] = set()
            for node in ring:
                grown.update(
                    int(j) for j in indices[indptr[node] : indptr[node + 1]]
                )
            ring = grown - members
            members |= grown
        blocks.append(np.array(sorted(members), dtype=np.int64))
    return [b for b in blocks if b.size > 0]


class AdditiveSchwarzPreconditioner:
    """Factored overlapping-block preconditioner."""

    def __init__(
        self,
        matrix: sp.spmatrix,
        num_blocks: int = 4,
        overlap: int = 1,
    ) -> None:
        csr = check_system(matrix, np.zeros(matrix.shape[0]))
        self.blocks = partition_blocks(csr, num_blocks, overlap)
        csc = sp.csc_matrix(csr)
        self._factors = [
            splu(sp.csc_matrix(csc[np.ix_(block, block)]))
            for block in self.blocks
        ]
        self._n = csr.shape[0]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def apply(self, r: np.ndarray) -> np.ndarray:
        out = np.zeros(self._n, dtype=float)
        for block, factor in zip(self.blocks, self._factors):
            out[block] += factor.solve(r[block])
        return out

    __call__ = apply


class SchwarzPCGSolver:
    """CG preconditioned by one-level additive Schwarz."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        num_blocks: int = 4,
        overlap: int = 1,
    ) -> None:
        self.options = options or SolverOptions()
        self.num_blocks = num_blocks
        self.overlap = overlap
        self._cached_matrix_id: int | None = None
        self._cached_preconditioner: AdditiveSchwarzPreconditioner | None = None

    def setup(self, matrix: sp.spmatrix) -> AdditiveSchwarzPreconditioner:
        """Build (or reuse) the block factorisations for *matrix*."""
        if (
            self._cached_matrix_id != id(matrix)
            or self._cached_preconditioner is None
        ):
            self._cached_preconditioner = AdditiveSchwarzPreconditioner(
                matrix, self.num_blocks, self.overlap
            )
            self._cached_matrix_id = id(matrix)
        return self._cached_preconditioner

    def solve(
        self,
        matrix: sp.spmatrix,
        rhs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        csr = check_system(matrix, rhs)
        preconditioner = self.setup(matrix)
        return _pcg(
            csr, rhs, x0, preconditioner.apply, self.options, flexible=False
        )
