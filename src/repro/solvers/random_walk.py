"""Random-walk PG solver (Qian, Nassif & Sapatnekar, TCAD'05).

A classical stochastic alternative the paper's related-work section cites:
the voltage of node *i* satisfies

    v_i = sum_j p_ij v_j + b_i,   p_ij = g_ij / G_i,   b_i = -I_i / G_i

which is exactly the expected outcome of a random walk that moves to
neighbour *j* with probability ``p_ij``, collects reward ``b_i`` at every
visit and absorbs with payoff ``v_pad`` when it reaches a pad.  The
estimator here averages ``walks_per_node`` independent walks per node.

It is not competitive with AMG-PCG (that is the point of the comparison)
but gives statistically unbiased spot estimates without ever assembling
the matrix — useful for incremental "what is the drop at this one cell?"
queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.netlist import PowerGrid
from repro.grid.topology import validate_connectivity


@dataclass(frozen=True)
class RandomWalkOptions:
    """Estimator controls.

    Attributes
    ----------
    walks_per_node:
        Monte-Carlo sample count per queried node; error shrinks as
        ``1/sqrt(walks_per_node)``.
    max_steps:
        Safety cap per walk (a connected PG absorbs long before this).
    seed:
        RNG seed.
    """

    walks_per_node: int = 200
    max_steps: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.walks_per_node < 1:
            raise ValueError("walks_per_node must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")


class RandomWalkSolver:
    """Monte-Carlo voltage estimation on a :class:`PowerGrid`."""

    def __init__(self, options: RandomWalkOptions | None = None) -> None:
        self.options = options or RandomWalkOptions()

    def _prepare(self, grid: PowerGrid):
        """Per-node transition tables (neighbour ids, cumulative probs, reward)."""
        neighbors: list[np.ndarray] = []
        cumulative: list[np.ndarray] = []
        rewards = np.zeros(grid.num_nodes)
        for node in grid.nodes:
            wires = grid.wires_at(node.index)
            conductances = np.array([w.conductance for w in wires])
            total = conductances.sum()
            if total <= 0 and not node.is_pad:
                raise ValueError(
                    f"node {node.name!r} has no conductance; walk cannot move"
                )
            neighbors.append(
                np.array([w.other(node.index) for w in wires], dtype=np.int64)
            )
            cumulative.append(
                np.cumsum(conductances / total) if total > 0 else np.array([])
            )
            rewards[node.index] = (
                -node.load_current / total if total > 0 else 0.0
            )
        return neighbors, cumulative, rewards

    def estimate_node(self, grid: PowerGrid, node: str | int) -> float:
        """Voltage estimate for one node (spot query)."""
        index = grid.index_of(node) if isinstance(node, str) else node
        return float(self.solve_nodes(grid, [index])[0])

    def solve_nodes(
        self, grid: PowerGrid, indices: list[int]
    ) -> np.ndarray:
        """Voltage estimates for a list of node indices."""
        validate_connectivity(grid)
        neighbors, cumulative, rewards = self._prepare(grid)
        pad_voltage = {n.index: n.pad_voltage for n in grid.pads()}
        rng = np.random.default_rng(self.options.seed)
        estimates = np.empty(len(indices))
        for k, start in enumerate(indices):
            if start in pad_voltage:
                estimates[k] = pad_voltage[start]
                continue
            total = 0.0
            for _ in range(self.options.walks_per_node):
                total += self._walk(
                    start, neighbors, cumulative, rewards, pad_voltage, rng
                )
            estimates[k] = total / self.options.walks_per_node
        return estimates

    def solve_grid(self, grid: PowerGrid) -> np.ndarray:
        """Voltage estimates for every node (slow; for small grids/tests)."""
        return self.solve_nodes(grid, list(range(grid.num_nodes)))

    def _walk(
        self,
        start: int,
        neighbors: list[np.ndarray],
        cumulative: list[np.ndarray],
        rewards: np.ndarray,
        pad_voltage: dict[int, float],
        rng: np.random.Generator,
    ) -> float:
        value = 0.0
        node = start
        for _ in range(self.options.max_steps):
            value += rewards[node]
            hop = int(np.searchsorted(cumulative[node], rng.random()))
            node = int(neighbors[node][hop])
            if node in pad_voltage:
                return value + pad_voltage[node]
        raise RuntimeError(
            f"walk from node {start} exceeded {self.options.max_steps} steps; "
            "is a pad reachable?"
        )
