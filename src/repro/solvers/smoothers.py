"""Stationary relaxation methods used as AMG smoothers.

All smoothers operate in-place-style on a copy: ``smooth(A, b, x, sweeps)``
returns an improved iterate.  Gauss-Seidel is implemented directly on the
CSR structure with a triangular solve, which is both exact and fast enough
for the grid sizes this reproduction targets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular


def jacobi(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    x: np.ndarray,
    sweeps: int = 1,
    weight: float = 2.0 / 3.0,
) -> np.ndarray:
    """Weighted (damped) Jacobi relaxation.

    ``x <- x + w D^{-1} (b - A x)``; the classic 2/3 damping is optimal for
    the Laplacian-like operators PG conductance matrices resemble.
    """
    diag = matrix.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi smoother requires a nonzero diagonal")
    with np.errstate(divide="raise"):
        inv_diag = weight / diag
    out = x.copy()
    for _ in range(sweeps):
        out += inv_diag * (rhs - matrix @ out)
    return out


def _split_triangular(matrix: sp.csr_matrix) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Lower (with diagonal) and strictly-upper parts of a CSR matrix."""
    lower = sp.tril(matrix, k=0, format="csr")
    upper = sp.triu(matrix, k=1, format="csr")
    return lower, upper


def gauss_seidel(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    x: np.ndarray,
    sweeps: int = 1,
    direction: str = "forward",
) -> np.ndarray:
    """Gauss-Seidel relaxation (forward, backward or symmetric).

    Forward: ``(D + L) x_{k+1} = b - U x_k``.  The symmetric variant does a
    forward then a backward sweep, preserving the symmetry needed when the
    smoother sits inside a CG preconditioner.
    """
    if direction not in ("forward", "backward", "symmetric"):
        raise ValueError(f"unknown direction {direction!r}")
    lower, strict_upper = _split_triangular(matrix)
    upper = sp.triu(matrix, k=0, format="csr")
    strict_lower = sp.tril(matrix, k=-1, format="csr")
    out = x.copy()
    for _ in range(sweeps):
        if direction in ("forward", "symmetric"):
            out = spsolve_triangular(lower, rhs - strict_upper @ out, lower=True)
        if direction in ("backward", "symmetric"):
            out = spsolve_triangular(upper, rhs - strict_lower @ out, lower=False)
    return np.asarray(out, dtype=float)


def sor(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    x: np.ndarray,
    sweeps: int = 1,
    omega: float = 1.5,
) -> np.ndarray:
    """Successive over-relaxation: ``(D/w + L) x_{k+1} = b - (U + (1-1/w) D) x_k``."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"SOR requires 0 < omega < 2, got {omega}")
    diag = sp.diags(matrix.diagonal(), format="csr")
    strict_lower = sp.tril(matrix, k=-1, format="csr")
    strict_upper = sp.triu(matrix, k=1, format="csr")
    with np.errstate(divide="raise"):
        m_left = sp.csr_matrix(diag / omega + strict_lower)
        m_right = sp.csr_matrix(strict_upper + (1.0 - 1.0 / omega) * diag)
    out = x.copy()
    for _ in range(sweeps):
        out = spsolve_triangular(m_left, rhs - m_right @ out, lower=True)
    return np.asarray(out, dtype=float)


SMOOTHERS = {
    "jacobi": jacobi,
    "gauss_seidel": gauss_seidel,
    "sor": sor,
}


def get_smoother(name: str):
    """Look up a smoother callable by name."""
    try:
        return SMOOTHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown smoother {name!r}; choose from {sorted(SMOOTHERS)}"
        ) from None
