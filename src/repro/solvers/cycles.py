"""Multigrid cycling: V-, W- and K-cycle preconditioner application.

Preconditioning phase of AMG-PCG (Fig. 3): the hierarchy plays the role of
``M^{-1}``; applying a cycle to a residual returns the multilevel
correction.  The K-cycle (Notay) accelerates each coarse-level correction
with one or two steps of *flexible* conjugate gradients, themselves
preconditioned by the next coarser cycle — "a multigrid cycling strategy
that efficiently balances convergence speed and computational cost".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.amg import AMGHierarchy
from repro.solvers.smoothers import gauss_seidel, jacobi


@dataclass(frozen=True)
class CycleOptions:
    """Cycle shape and smoothing controls.

    Attributes
    ----------
    cycle:
        ``"v"``, ``"w"`` or ``"k"``.
    presmooth_sweeps, postsmooth_sweeps:
        Relaxation sweeps before restriction / after prolongation.
    smoother:
        ``"gauss_seidel"`` (symmetrised automatically) or ``"jacobi"``.
    kcycle_steps:
        Maximum inner Krylov steps per coarse correction in the K-cycle.
    kcycle_tol:
        Relative residual at which the inner K-cycle iteration stops early
        (Notay recommends a loose 0.25).
    """

    cycle: str = "k"
    presmooth_sweeps: int = 1
    postsmooth_sweeps: int = 1
    smoother: str = "gauss_seidel"
    kcycle_steps: int = 2
    kcycle_tol: float = 0.25

    def __post_init__(self) -> None:
        if self.cycle not in ("v", "w", "k"):
            raise ValueError(f"cycle must be 'v', 'w' or 'k', got {self.cycle!r}")
        if self.smoother not in ("gauss_seidel", "jacobi"):
            raise ValueError(f"unsupported smoother {self.smoother!r}")
        if self.kcycle_steps < 1:
            raise ValueError("kcycle_steps must be >= 1")


class CyclePreconditioner:
    """Applies one multigrid cycle as ``M^{-1} r``.

    The application is (approximately) a fixed symmetric positive operator
    for V-cycles; the K-cycle varies between applications, which is why the
    outer Krylov loop must use the flexible CG update.
    """

    def __init__(
        self, hierarchy: AMGHierarchy, options: CycleOptions | None = None
    ) -> None:
        self.hierarchy = hierarchy
        self.options = options or CycleOptions()

    # -- public API ---------------------------------------------------------

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One cycle on the finest level with zero initial guess."""
        return self._solve_level(0, np.asarray(r, dtype=float))

    __call__ = apply

    # -- internals -----------------------------------------------------------

    def _smooth(self, level: int, rhs: np.ndarray, x: np.ndarray, sweeps: int) -> np.ndarray:
        if sweeps <= 0:
            return x
        matrix = self.hierarchy.levels[level].matrix
        if self.options.smoother == "jacobi":
            return jacobi(matrix, rhs, x, sweeps=sweeps)
        return gauss_seidel(matrix, rhs, x, sweeps=sweeps, direction="symmetric")

    def _cycle_once(self, level: int, rhs: np.ndarray) -> np.ndarray:
        """One cycle at *level*: smooth, coarse-correct, smooth."""
        levels = self.hierarchy.levels
        if level == len(levels) - 1:
            return self.hierarchy.coarse_solve(rhs)
        matrix = levels[level].matrix
        prolongation = levels[level].prolongation
        if prolongation is None:
            raise ValueError(
                f"corrupted AMG hierarchy: level {level} is not the "
                "coarsest but has no prolongation"
            )

        x = np.zeros_like(rhs)
        x = self._smooth(level, rhs, x, self.options.presmooth_sweeps)
        coarse_rhs = prolongation.T @ (rhs - matrix @ x)
        coarse_x = self._solve_level(level + 1, coarse_rhs)
        x = x + prolongation @ coarse_x
        x = self._smooth(level, rhs, x, self.options.postsmooth_sweeps)
        return x

    def _solve_level(self, level: int, rhs: np.ndarray) -> np.ndarray:
        """Coarse correction strategy at *level* according to cycle type."""
        levels = self.hierarchy.levels
        if level == len(levels) - 1:
            return self.hierarchy.coarse_solve(rhs)
        if level == 0 or self.options.cycle == "v":
            return self._cycle_once(level, rhs)
        if self.options.cycle == "w":
            matrix = levels[level].matrix
            x = self._cycle_once(level, rhs)
            x = x + self._cycle_once(level, rhs - matrix @ x)
            return x
        return self._kcycle_correction(level, rhs)

    def _kcycle_correction(self, level: int, rhs: np.ndarray) -> np.ndarray:
        """Up to ``kcycle_steps`` flexible-CG steps on ``A_level e = rhs``.

        Each step is preconditioned by one cycle at this level (which in
        turn recurses) — the defining K-cycle structure.
        """
        matrix = self.hierarchy.levels[level].matrix
        rhs_norm = float(np.linalg.norm(rhs))
        if rhs_norm == 0.0:
            return np.zeros_like(rhs)
        target = self.options.kcycle_tol * rhs_norm

        x = np.zeros_like(rhs)
        r = rhs.copy()
        z = self._cycle_once(level, r)
        p = z.copy()
        rz = float(r @ z)
        for step in range(self.options.kcycle_steps):
            ap = matrix @ p
            pap = float(p @ ap)
            if pap <= 0.0 or rz == 0.0:
                break
            alpha = rz / pap
            x += alpha * p
            r_new = r - alpha * ap
            if float(np.linalg.norm(r_new)) <= target:
                break
            if step == self.options.kcycle_steps - 1:
                break
            z_new = self._cycle_once(level, r_new)
            beta = float(z_new @ (r_new - r)) / rz  # flexible (Polak-Ribiere)
            rz = float(r_new @ z_new)
            r = r_new
            p = z_new + beta * p
        return x
