"""Vectored static IR-drop analysis (multi-corner worst-case).

MAVIREC frames IR-drop estimation over *vectors*: many per-cell current
patterns (simulation corners / activity vectors), each a static solve,
combined into a per-node worst-case drop.  The conductance matrix is fixed
across vectors, so the AMG hierarchy (or LU factor) is built once and
reused — exactly the amortisation that makes vectored analysis tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.mna.system import ReducedSystem
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions


@dataclass
class VectoredResult:
    """Outcome of a vectored run.

    Attributes
    ----------
    per_vector_drop:
        ``(V, N)`` drop per vector and grid node.
    worst_drop:
        ``(N,)`` element-wise maximum over vectors.
    worst_vector:
        ``(N,)`` index of the vector that produced each node's worst drop.
    """

    per_vector_drop: np.ndarray
    worst_drop: np.ndarray
    worst_vector: np.ndarray

    @property
    def num_vectors(self) -> int:
        return self.per_vector_drop.shape[0]

    def global_worst(self) -> tuple[float, int, int]:
        """(drop, node index, vector index) of the single worst case."""
        flat = int(np.argmax(self.per_vector_drop))
        vector, node = np.unravel_index(flat, self.per_vector_drop.shape)
        return (
            float(self.per_vector_drop[vector, node]),
            int(node),
            int(vector),
        )


class VectoredAnalyzer:
    """Runs many current vectors against one PG with a shared hierarchy."""

    def __init__(
        self,
        grid: PowerGrid,
        supply_voltage: float | None = None,
        options: SolverOptions | None = None,
    ) -> None:
        if supply_voltage is None:
            levels = {n.pad_voltage for n in grid.pads()}
            if len(levels) != 1:
                raise ValueError(
                    f"cannot infer a single supply voltage from pads: {levels}"
                )
            supply_voltage = levels.pop()
        self.grid = grid
        self.supply_voltage = supply_voltage
        self.system: ReducedSystem = build_reduced_system(grid)
        self.solver = AMGPCGSolver(options or SolverOptions(tol=1e-10))
        # loads-only RHS template: pad coupling terms are current-independent
        self._base_rhs = self.system.rhs.copy()
        for node in grid.loads():
            row = np.where(self.system.unknown_indices == node.index)[0]
            if row.size:
                self._base_rhs[row[0]] += node.load_current

    def _rhs_for(self, currents: dict[int, float]) -> np.ndarray:
        rhs = self._base_rhs.copy()
        index_of_row = {
            int(g): r for r, g in enumerate(self.system.unknown_indices)
        }
        for node_index, amps in currents.items():
            row = index_of_row.get(node_index)
            if row is None:
                raise ValueError(
                    f"node {node_index} is a pad or unknown; cannot load it"
                )
            rhs[row] -= amps
        return rhs

    def solve_vector(self, currents: dict[int, float]) -> np.ndarray:
        """Per-grid-node drop for one current vector ``{node index: amps}``."""
        rhs = self._rhs_for(currents)
        flat = np.full(self.system.size, self.supply_voltage)
        result = self.solver.solve(self.system.matrix, rhs, x0=flat)
        return self.supply_voltage - self.system.scatter(result.x)

    def run(self, vectors: list[dict[int, float]]) -> VectoredResult:
        """Solve every vector and combine into the worst case."""
        if not vectors:
            raise ValueError("at least one current vector is required")
        drops = np.stack([self.solve_vector(v) for v in vectors])
        worst = drops.max(axis=0)
        which = drops.argmax(axis=0)
        return VectoredResult(
            per_vector_drop=drops, worst_drop=worst, worst_vector=which
        )
