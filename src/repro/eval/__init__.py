"""Evaluation harness and report rendering for the paper's tables/figures."""

from repro.eval.em import EMReport, WireViolation, check_wire_currents
from repro.eval.evaluate import (
    evaluate_rough_solutions,
    evaluate_trainer,
    train_and_evaluate,
)
from repro.eval.report import ascii_map, format_metrics_table, format_sweep_table
from repro.eval.signoff import SignoffReport, ViolationRegion, check_ir_drop
from repro.eval.tables import save_metrics_csv, save_metrics_json

__all__ = [
    "EMReport",
    "SignoffReport",
    "WireViolation",
    "check_wire_currents",
    "ViolationRegion",
    "ascii_map",
    "check_ir_drop",
    "evaluate_rough_solutions",
    "evaluate_trainer",
    "format_metrics_table",
    "format_sweep_table",
    "save_metrics_csv",
    "save_metrics_json",
    "train_and_evaluate",
]

