"""Model and solver evaluation over held-out designs."""

from __future__ import annotations

from repro.data.dataset import IRDropDataset
from repro.nn.losses import _Loss
from repro.nn.module import Module
from repro.obs import span
from repro.train.metrics import Metrics, evaluate_prediction
from repro.train.trainer import TrainConfig, Trainer, TrainHistory


def evaluate_trainer(
    trainer: Trainer, dataset: IRDropDataset
) -> tuple[list[Metrics], Metrics]:
    """Per-design and averaged metrics for a trained model.

    Runtime is wall-clock inference time per design (feature prep is
    accounted by the pipeline-level benchmarks, matching the paper's
    whole-flow runtime column there).
    """
    per_design: list[Metrics] = []
    for sample in dataset:
        with span("inference", design=sample.name) as infer_span:
            prediction = trainer.predict([sample])[0]
        per_design.append(
            evaluate_prediction(
                prediction, sample.label, runtime_seconds=infer_span.duration
            )
        )
    return per_design, Metrics.average(per_design)


def evaluate_rough_solutions(dataset: IRDropDataset) -> Metrics:
    """Metrics of the raw numerical rough solutions (PowerRush alone).

    Requires samples built with ``use_numerical=True`` so a
    ``rough_label`` is attached.
    """
    per_design: list[Metrics] = []
    for sample in dataset:
        if sample.rough_label is None:
            raise ValueError(
                f"sample {sample.name!r} carries no rough numerical solution"
            )
        per_design.append(evaluate_prediction(sample.rough_label, sample.label))
    return Metrics.average(per_design)


def train_and_evaluate(
    model: Module,
    train_set: IRDropDataset,
    test_set: IRDropDataset,
    loss: _Loss | None = None,
    config: TrainConfig | None = None,
) -> tuple[TrainHistory, Metrics, float]:
    """Convenience: fit on *train_set*, score on *test_set*.

    Returns (history, averaged test metrics, training wall-clock seconds).
    """
    trainer = Trainer(model, loss=loss, config=config)
    with span("fit") as fit_span:
        history = trainer.fit(train_set)
    _, averaged = evaluate_trainer(trainer, test_set)
    return history, averaged, fit_span.duration
