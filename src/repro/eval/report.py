"""Plain-text rendering of the paper's tables and figure data.

Tables follow the paper's units: MAE and MIRDE in 1e-4 V, runtime in
seconds.  :func:`ascii_map` renders an IR-drop image as character art for
the Fig. 6 qualitative comparison (no plotting stack is available in this
environment; the raw arrays are also saved by the benches).
"""

from __future__ import annotations

import numpy as np

from repro.train.metrics import Metrics

_SHADES = " .:-=+*#%@"


def format_metrics_table(
    rows: dict[str, Metrics], title: str = "Main results"
) -> str:
    """A Table-I-style text table from ``{method: metrics}``.

    Metric units match the paper: MAE / MIRDE in 1e-4 V, runtime in s.
    """
    if not rows:
        raise ValueError("no rows to format")
    header = f"{'Method':<22s} {'MAE↓':>8s} {'F1↑':>6s} {'Runtime↓':>9s} {'MIRDE↓':>8s}"
    ruler = "-" * len(header)
    lines = [title, ruler, header, ruler]
    for name, metrics in rows.items():
        scaled = metrics.scaled(1e4)
        lines.append(
            f"{name:<22s} {scaled.mae:>8.2f} {scaled.f1:>6.2f} "
            f"{scaled.runtime_seconds:>9.3f} {scaled.mirde:>8.2f}"
        )
    lines.append(ruler)
    lines.append("(MAE and MIRDE in 1e-4 V; runtime in seconds)")
    return "\n".join(lines)


def format_sweep_table(
    iterations: list[int],
    series: dict[str, list[float]],
    title: str = "Trade-off sweep",
    value_format: str = "{:>10.3f}",
) -> str:
    """A Fig.-7-style table: one row per solver iteration count."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(iterations):
            raise ValueError(
                f"series {name!r} has {len(series[name])} values for "
                f"{len(iterations)} iterations"
            )
    header = f"{'iters':>5s} " + " ".join(f"{name:>10s}" for name in names)
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for i, iteration in enumerate(iterations):
        cells = " ".join(value_format.format(series[name][i]) for name in names)
        lines.append(f"{iteration:>5d} {cells}")
    return "\n".join(lines)


def ascii_map(image: np.ndarray, width: int = 48) -> str:
    """Character-art rendering of a 2D map (dark = low, dense = high)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2D map, got shape {image.shape}")
    rows, cols = image.shape
    width = min(width, cols)
    height = max(1, round(rows * width / cols / 2))  # terminal cells are ~2:1
    row_idx = np.linspace(0, rows - 1, height).round().astype(int)
    col_idx = np.linspace(0, cols - 1, width).round().astype(int)
    sampled = image[np.ix_(row_idx, col_idx)]
    lo, hi = sampled.min(), sampled.max()
    if hi - lo < 1e-30:
        levels = np.zeros_like(sampled, dtype=int)
    else:
        levels = ((sampled - lo) / (hi - lo) * (len(_SHADES) - 1)).round().astype(int)
    return "\n".join("".join(_SHADES[v] for v in line) for line in levels)


def side_by_side(blocks: list[str], labels: list[str], gap: int = 3) -> str:
    """Join several equal-height ascii blocks horizontally with labels."""
    if len(blocks) != len(labels):
        raise ValueError("one label per block required")
    split = [b.splitlines() for b in blocks]
    height = max(len(lines) for lines in split)
    widths = [max((len(l) for l in lines), default=0) for lines in split]
    out_lines = []
    label_line = (" " * gap).join(
        label.center(width) for label, width in zip(labels, widths)
    )
    out_lines.append(label_line)
    for i in range(height):
        row = (" " * gap).join(
            (lines[i] if i < len(lines) else "").ljust(width)
            for lines, width in zip(split, widths)
        )
        out_lines.append(row)
    return "\n".join(out_lines)
