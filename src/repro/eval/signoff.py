"""Signoff-style IR-drop checking on predicted (or golden) drop maps.

The practical consumer of an IR-drop map is a signoff check: is the worst
drop within budget, and if not, where are the violating regions?  This
module turns a drop image into a :class:`SignoffReport` with the connected
violation regions (8-connected components above the limit), their extents
and severities — the artefact a designer acts on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class ViolationRegion:
    """One connected cluster of pixels exceeding the drop limit.

    Attributes
    ----------
    pixel_count:
        Region area in pixels.
    worst_drop:
        Maximum drop inside the region (volts).
    centroid:
        (row, col) centre of mass.
    bounding_box:
        (row_min, col_min, row_max, col_max), inclusive.
    """

    pixel_count: int
    worst_drop: float
    centroid: tuple[float, float]
    bounding_box: tuple[int, int, int, int]


@dataclass(frozen=True)
class SignoffReport:
    """Outcome of one signoff check.

    Attributes
    ----------
    limit:
        The drop budget applied (volts).
    worst_drop:
        Global maximum drop (volts).
    violation_area_fraction:
        Fraction of die pixels above the limit.
    regions:
        Violation clusters, sorted by worst drop (most severe first).
    """

    limit: float
    worst_drop: float
    violation_area_fraction: float
    regions: tuple[ViolationRegion, ...]

    @property
    def passed(self) -> bool:
        return not self.regions

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        if self.passed:
            return (
                f"PASS: worst IR drop {self.worst_drop * 1e3:.2f} mV within "
                f"the {self.limit * 1e3:.2f} mV budget."
            )
        worst = self.regions[0]
        return (
            f"FAIL: {len(self.regions)} violation region(s), "
            f"{self.violation_area_fraction:.1%} of the die above "
            f"{self.limit * 1e3:.2f} mV; worst region peaks at "
            f"{worst.worst_drop * 1e3:.2f} mV around pixel "
            f"({worst.centroid[0]:.0f}, {worst.centroid[1]:.0f})."
        )


def check_ir_drop(drop_map: np.ndarray, limit: float) -> SignoffReport:
    """Run the signoff check on a 2D drop image.

    Parameters
    ----------
    drop_map:
        Bottom-layer IR-drop image in volts.
    limit:
        Maximum tolerated drop in volts (e.g. 5 % of vdd).
    """
    drop_map = np.asarray(drop_map, dtype=float)
    if drop_map.ndim != 2:
        raise ValueError(f"expected a 2D drop map, got shape {drop_map.shape}")
    if limit <= 0:
        raise ValueError("limit must be positive")

    mask = drop_map > limit
    structure = np.ones((3, 3), dtype=bool)  # 8-connectivity
    labels, count = ndimage.label(mask, structure=structure)

    regions: list[ViolationRegion] = []
    for region_id in range(1, count + 1):
        region_mask = labels == region_id
        rows, cols = np.nonzero(region_mask)
        regions.append(
            ViolationRegion(
                pixel_count=int(region_mask.sum()),
                worst_drop=float(drop_map[region_mask].max()),
                centroid=(float(rows.mean()), float(cols.mean())),
                bounding_box=(
                    int(rows.min()),
                    int(cols.min()),
                    int(rows.max()),
                    int(cols.max()),
                ),
            )
        )
    regions.sort(key=lambda region: region.worst_drop, reverse=True)
    return SignoffReport(
        limit=limit,
        worst_drop=float(drop_map.max()),
        violation_area_fraction=float(mask.mean()),
        regions=tuple(regions),
    )
