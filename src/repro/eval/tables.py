"""Machine-readable export of experiment results (CSV / JSON).

The text tables in :mod:`repro.eval.report` are for humans; CI pipelines
and notebooks want structured records.  These helpers serialise the same
result objects losslessly.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from repro.train.metrics import Metrics

_FIELDS = ("method", "mae", "f1", "mirde", "runtime_seconds")


def metrics_to_records(rows: dict[str, Metrics]) -> list[dict]:
    """Flatten ``{method: Metrics}`` into a list of plain dict records."""
    return [
        {
            "method": name,
            "mae": metrics.mae,
            "f1": metrics.f1,
            "mirde": metrics.mirde,
            "runtime_seconds": metrics.runtime_seconds,
        }
        for name, metrics in rows.items()
    ]


def save_metrics_csv(
    rows: dict[str, Metrics], path: str | os.PathLike[str]
) -> None:
    """Write a Table-I-style result set as CSV."""
    records = metrics_to_records(rows)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(records)


def save_metrics_json(
    rows: dict[str, Metrics], path: str | os.PathLike[str]
) -> None:
    """Write a result set as a JSON list of records."""
    Path(path).write_text(
        json.dumps(metrics_to_records(rows), indent=2), encoding="utf-8"
    )


def load_metrics_csv(path: str | os.PathLike[str]) -> dict[str, Metrics]:
    """Read a CSV written by :func:`save_metrics_csv`."""
    rows: dict[str, Metrics] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        for record in csv.DictReader(handle):
            rows[record["method"]] = Metrics(
                mae=float(record["mae"]),
                f1=float(record["f1"]),
                mirde=float(record["mirde"]),
                runtime_seconds=float(record["runtime_seconds"]),
            )
    return rows


def sweep_to_records(
    iterations: list[int], series: dict[str, list[float]]
) -> list[dict]:
    """Flatten a Fig.-7-style sweep into per-iteration records."""
    records = []
    for i, iteration in enumerate(iterations):
        record: dict = {"iterations": iteration}
        for name, values in series.items():
            if len(values) != len(iterations):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(iterations)} iterations"
                )
            record[name] = values[i]
        records.append(record)
    return records
