"""Wire-current (electromigration-style) checking.

EM signoff limits the sustained current through each wire segment.  With
no width model in the netlist the check is expressed directly in amps per
wire, optionally scaled per metal layer (upper layers are thicker and
tolerate more current).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.netlist import PowerGrid
from repro.mna.post import branch_currents


@dataclass(frozen=True)
class WireViolation:
    """One over-limit wire.

    Attributes
    ----------
    wire_name:
        The resistor's SPICE name.
    node_a, node_b:
        Endpoint node names.
    current:
        Magnitude of the current through the wire (amps).
    limit:
        The limit applied to this wire (amps).
    """

    wire_name: str
    node_a: str
    node_b: str
    current: float
    limit: float

    @property
    def overdrive(self) -> float:
        """current / limit (> 1 by construction)."""
        return self.current / self.limit


@dataclass(frozen=True)
class EMReport:
    """Outcome of a wire-current check."""

    limit: float
    worst_current: float
    violations: tuple[WireViolation, ...]

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.passed:
            return (
                f"PASS: no wire exceeds its limit "
                f"(base {self.limit * 1e3:.2f} mA, layer-scaled); worst "
                f"wire current {self.worst_current * 1e3:.2f} mA."
            )
        worst = self.violations[0]
        return (
            f"FAIL: {len(self.violations)} wire(s) over the "
            f"{self.limit * 1e3:.2f} mA limit; worst is {worst.wire_name} "
            f"({worst.node_a} -> {worst.node_b}) at "
            f"{worst.current * 1e3:.2f} mA ({worst.overdrive:.1f}x)."
        )


def check_wire_currents(
    grid: PowerGrid,
    voltages: np.ndarray,
    limit_amps: float,
    layer_scale: dict[int, float] | None = None,
) -> EMReport:
    """Check every wire's current against a limit.

    Parameters
    ----------
    grid, voltages:
        The solved design.
    limit_amps:
        Base per-wire current limit.
    layer_scale:
        Optional per-metal-layer multiplier on the limit (e.g. ``{4: 4.0}``
        lets thick top metal carry 4x); vias between layers use the lower
        layer's scale.
    """
    if limit_amps <= 0:
        raise ValueError("limit_amps must be positive")
    currents = branch_currents(grid, voltages)
    violations: list[WireViolation] = []
    worst = 0.0
    for k, wire in enumerate(grid.wires):
        magnitude = abs(float(currents[k]))
        worst = max(worst, magnitude)
        limit = limit_amps
        if layer_scale:
            layers = [
                grid.node(endpoint).layer
                for endpoint in (wire.node_a, wire.node_b)
            ]
            layers = [layer for layer in layers if layer is not None]
            if layers:
                limit = limit_amps * layer_scale.get(min(layers), 1.0)
        if magnitude > limit:
            violations.append(
                WireViolation(
                    wire_name=wire.name,
                    node_a=grid.node(wire.node_a).name,
                    node_b=grid.node(wire.node_b).name,
                    current=magnitude,
                    limit=limit,
                )
            )
    violations.sort(key=lambda v: v.overdrive, reverse=True)
    return EMReport(
        limit=limit_amps,
        worst_current=worst,
        violations=tuple(violations),
    )
