"""Run-level diagnostics: what the fault-tolerant runtime did and why.

Aggregates the records produced by the individual protection layers —
validation issues found in the input, repairs applied to make it solvable,
and the solver cascade's attempt/fallback history — into one structure
that rides on :class:`~repro.solvers.powerrush.SimulationReport` and
:class:`~repro.core.pipeline.AnalysisResult` and is surfaced by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import Span
from repro.obs import summary_lines as _span_summary_lines
from repro.solvers.cache import CacheStats
from repro.solvers.guard import SolverDiagnostics
from repro.spice.validate import RepairRecord, ValidationIssue


@dataclass
class RunDiagnostics:
    """Everything non-nominal that happened during one analysis run.

    Attributes
    ----------
    validation:
        Issues detected in the input deck/grid before solving.
    repairs:
        Repairs applied to make the input solvable.
    solver:
        The fallback cascade's attempt history (``None`` when the
        numerical stage was ablated).
    solver_cache:
        AMG setup-cache counter movement attributable to this run
        (``None`` when no solve happened).  ``hits > 0`` means the run
        reused a previously built hierarchy and skipped the setup stage.
    warnings:
        Free-form notes from other stages (feature guards, trainer).
    numerics:
        Findings from the opt-in numerics sanitizer
        (:mod:`repro.analysis.sanitizer`), as
        :class:`~repro.analysis.sanitizer.NumericsFinding` instances;
        empty unless the run had ``sanitize`` enabled.
    trace:
        Serialized :class:`repro.obs.Span` tree for the run (the
        ``analyze`` span and its children), as produced by
        ``Span.to_dict``; ``None`` for records that predate the run or
        were built outside the pipeline.
    """

    validation: list[ValidationIssue] = field(default_factory=list)
    repairs: list[RepairRecord] = field(default_factory=list)
    solver: SolverDiagnostics | None = None
    solver_cache: CacheStats | None = None
    warnings: list[str] = field(default_factory=list)
    numerics: list = field(default_factory=list)
    trace: dict | None = None

    @property
    def degraded(self) -> bool:
        """True when any repair or solver fallback was needed."""
        return bool(self.repairs) or (
            self.solver is not None and self.solver.num_fallbacks > 0
        )

    def to_dict(self) -> dict:
        return {
            "validation": [i.to_dict() for i in self.validation],
            "repairs": [r.to_dict() for r in self.repairs],
            "solver": self.solver.to_dict() if self.solver is not None else None,
            "solver_cache": (
                self.solver_cache.to_dict()
                if self.solver_cache is not None
                else None
            ),
            "warnings": list(self.warnings),
            "numerics": [f.to_dict() for f in self.numerics],
            "degraded": self.degraded,
            "trace": self.trace,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable block for CLI output (always non-empty)."""
        lines = [
            f"diagnostics: degraded={str(self.degraded).lower()} "
            f"issues={len(self.validation)} repairs={len(self.repairs)}"
        ]
        for issue in self.validation:
            lines.append(f"  issue[{issue.kind}]: {issue.message}")
        for repair in self.repairs:
            lines.append(f"  repair[{repair.action}]: {repair.detail}")
        if self.solver is not None:
            lines.append(f"  {self.solver.summary()}")
        if self.solver_cache is not None:
            lines.append(
                f"  amg_setup_cache: hits={self.solver_cache.hits} "
                f"misses={self.solver_cache.misses}"
            )
        for note in self.warnings:
            lines.append(f"  warning: {note}")
        for finding in self.numerics:
            lines.append(f"  numerics[{finding.kind}]: {finding.summary()}")
        if self.trace is not None:
            for line in _span_summary_lines(Span.from_dict(self.trace)):
                lines.append(f"  {line}")
        return lines
