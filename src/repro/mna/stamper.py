"""Conductance-matrix stamping.

"Using this link table, the circuit generator constructs the circuit
topology graph, enabling the extraction of the conductance matrix G for
simulation" (Section III-B).  Stamping follows the classic MNA rules: a
resistor of conductance g between nodes *a* and *b* adds ``+g`` to the two
diagonal entries and ``-g`` to the two off-diagonals; a current source adds
to the RHS; ideal voltage sources are either eliminated (reduced form) or
given a branch-current unknown (full form).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.grid.netlist import PowerGrid
from repro.grid.topology import validate_connectivity
from repro.mna.system import FullMNASystem, ReducedSystem


def build_reduced_system(
    grid: PowerGrid, validate: bool = True, check_diagonal: bool = True
) -> ReducedSystem:
    """Assemble the SPD reduced system ``G x = b`` over non-pad nodes.

    Pad nodes are eliminated: their known voltage ``v_p`` moves coupling
    terms ``g * v_p`` to the right-hand side.  Load currents enter the RHS
    with a negative sign (current leaves the node into the cells).

    Parameters
    ----------
    grid:
        The power grid to stamp.
    validate:
        Run connectivity validation first (recommended; guarantees the
        result is nonsingular).
    check_diagonal:
        After stamping, verify every diagonal entry is positive and finite
        (cheap) and raise :class:`ValueError` naming the offending nodes
        otherwise — a singular/indefinite ``G`` must never reach a solver
        silently.
    """
    if validate:
        validate_connectivity(grid)

    pad_voltages = {n.index: n.pad_voltage for n in grid.pads()}
    unknown_indices = np.array(
        [n.index for n in grid.nodes if not n.is_pad], dtype=np.int64
    )
    row_of = {int(g): r for r, g in enumerate(unknown_indices)}
    n_unknown = len(unknown_indices)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(n_unknown, dtype=float)

    diag = np.zeros(n_unknown, dtype=float)
    for wire in grid.wires:
        g = wire.conductance
        a_row = row_of.get(wire.node_a)
        b_row = row_of.get(wire.node_b)
        if a_row is not None:
            diag[a_row] += g
        if b_row is not None:
            diag[b_row] += g
        if a_row is not None and b_row is not None:
            rows.extend((a_row, b_row))
            cols.extend((b_row, a_row))
            vals.extend((-g, -g))
        elif a_row is not None:
            rhs[a_row] += g * pad_voltages[wire.node_b]
        elif b_row is not None:
            rhs[b_row] += g * pad_voltages[wire.node_a]
        # pad-to-pad wires contribute nothing to the reduced system

    for node in grid.nodes:
        row = row_of.get(node.index)
        if row is not None and node.load_current:
            rhs[row] -= node.load_current

    rows.extend(range(n_unknown))
    cols.extend(range(n_unknown))
    vals.extend(diag)

    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(n_unknown, n_unknown), dtype=float
    )
    matrix.sum_duplicates()
    if check_diagonal:
        bad = np.flatnonzero(~(diag > 0) | ~np.isfinite(diag))
        if bad.size:
            names = [grid.node(int(unknown_indices[r])).name for r in bad[:5]]
            raise ValueError(
                f"stamped G has {bad.size} non-positive/non-finite diagonal "
                f"entries (e.g. nodes {names}); the system is singular or "
                "indefinite — repair the netlist first"
            )
    return ReducedSystem(
        matrix=matrix,
        rhs=rhs,
        unknown_indices=unknown_indices,
        pad_voltages=pad_voltages,
        num_grid_nodes=grid.num_nodes,
    )


# ---------------------------------------------------------------------------
# Delta stamping: patch an already-reduced CSR system in place.
#
# ECO-style edits (a pad added, a wire resized, loads revised) change a
# handful of matrix entries; re-running the full stamp throws away the
# CSR structure, the RHS and — further downstream — the AMG hierarchy.
# The helpers below edit ``matrix.data``/``rhs`` directly and return an
# undo record, so a caller can speculatively apply a candidate edit,
# solve, and revert.  The sparsity *pattern* never changes: every update
# touches entries the symmetric stamp already materialised.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemPatch:
    """Undo record for one in-place reduced-system edit.

    ``data_indices`` index straight into ``matrix.data`` (CSR storage
    order); ``rhs_rows`` index into the RHS vector.  Reverting writes the
    saved old values back, restoring the system bitwise.
    """

    data_indices: np.ndarray
    data_old: np.ndarray
    rhs_rows: np.ndarray
    rhs_old: np.ndarray

    @classmethod
    def empty(cls) -> "SystemPatch":
        return cls(
            data_indices=np.empty(0, dtype=np.int64),
            data_old=np.empty(0, dtype=float),
            rhs_rows=np.empty(0, dtype=np.int64),
            rhs_old=np.empty(0, dtype=float),
        )


def csr_entry(matrix: sp.csr_matrix, row: int, col: int) -> int:
    """Position of entry ``(row, col)`` in ``matrix.data``.

    Requires canonical CSR (sorted indices, duplicates summed) — which
    :func:`build_reduced_system` guarantees.  Raises ``KeyError`` when
    the entry is not materialised: delta stamping never creates fill-in.
    """
    lo, hi = int(matrix.indptr[row]), int(matrix.indptr[row + 1])
    pos = lo + int(np.searchsorted(matrix.indices[lo:hi], col))
    if pos >= hi or matrix.indices[pos] != col:
        raise KeyError(f"entry ({row}, {col}) is not stored in the CSR pattern")
    return pos


def revert_patch(
    matrix: sp.csr_matrix, rhs: np.ndarray, patch: SystemPatch
) -> None:
    """Undo an in-place edit, restoring matrix and RHS bitwise."""
    matrix.data[patch.data_indices] = patch.data_old
    rhs[patch.rhs_rows] = patch.rhs_old


def patch_conductance(
    matrix: sp.csr_matrix,
    rhs: np.ndarray,
    row_a: int | None,
    row_b: int | None,
    delta_g: float,
    voltage_a: float | None = None,
    voltage_b: float | None = None,
) -> SystemPatch:
    """Re-stamp one wire's conductance change ``delta_g`` in place.

    ``row_a``/``row_b`` are reduced-system rows, or ``None`` for an
    endpoint pinned to a known voltage (an eliminated pad *or* a node
    pinned by a delta), in which case the matching ``voltage_*`` supplies
    the coupling term that moves to the RHS — exactly mirroring the full
    stamp's elimination rules.
    """
    data_indices: list[int] = []
    rhs_rows: list[int] = []
    if row_a is not None and row_b is not None:
        data_indices = [
            csr_entry(matrix, row_a, row_a),
            csr_entry(matrix, row_b, row_b),
            csr_entry(matrix, row_a, row_b),
            csr_entry(matrix, row_b, row_a),
        ]
    elif row_a is not None:
        if voltage_b is None:
            raise ValueError("pinned endpoint b needs voltage_b")
        data_indices = [csr_entry(matrix, row_a, row_a)]
        rhs_rows = [row_a]
    elif row_b is not None:
        if voltage_a is None:
            raise ValueError("pinned endpoint a needs voltage_a")
        data_indices = [csr_entry(matrix, row_b, row_b)]
        rhs_rows = [row_b]
    # both endpoints pinned: nothing reaches the reduced system

    idx = np.asarray(data_indices, dtype=np.int64)
    rows = np.asarray(rhs_rows, dtype=np.int64)
    patch = SystemPatch(
        data_indices=idx,
        data_old=matrix.data[idx].copy(),
        rhs_rows=rows,
        rhs_old=rhs[rows].copy(),
    )
    if row_a is not None and row_b is not None:
        matrix.data[idx[0]] += delta_g
        matrix.data[idx[1]] += delta_g
        matrix.data[idx[2]] -= delta_g
        matrix.data[idx[3]] -= delta_g
    elif row_a is not None:
        matrix.data[idx[0]] += delta_g
        rhs[row_a] += delta_g * voltage_b
    elif row_b is not None:
        matrix.data[idx[0]] += delta_g
        rhs[row_b] += delta_g * voltage_a
    return patch


def pin_row(
    matrix: sp.csr_matrix, rhs: np.ndarray, row: int, voltage: float
) -> tuple[SystemPatch, np.ndarray, np.ndarray]:
    """Pin unknown ``row`` to ``voltage`` by in-place row/column surgery.

    The constraint ``x[row] = voltage`` is imposed *exactly* while
    keeping the matrix dimension (and SPD-ness): row and column ``row``
    are zeroed, the diagonal keeps its old value ``d`` (scale
    preserving), ``rhs[row]`` becomes ``d * voltage``, and every
    neighbour ``r`` gets the eliminated coupling ``q_r * voltage`` moved
    onto its RHS.  After the permutation separating ``row`` the system
    is block-diagonal ``diag(G_rr, d)`` — the remaining unknowns satisfy
    precisely the system a from-scratch stamp with one more pad yields.

    Returns ``(patch, q_indices, q_values)`` where ``q`` is the original
    matrix column ``row`` (equal to the row, by symmetry) *including* the
    diagonal — the low-rank factor the SMW solver needs.
    """
    lo, hi = int(matrix.indptr[row]), int(matrix.indptr[row + 1])
    q_indices = matrix.indices[lo:hi].astype(np.int64, copy=True)
    q_values = matrix.data[lo:hi].copy()
    diag_pos = lo + int(np.searchsorted(matrix.indices[lo:hi], row))
    if diag_pos >= hi or matrix.indices[diag_pos] != row:
        raise KeyError(f"row {row} has no stored diagonal")
    diag = float(matrix.data[diag_pos])

    # Positions of the symmetric column entries (r, row) for r != row.
    col_positions = [
        csr_entry(matrix, int(r), row) for r in q_indices if int(r) != row
    ]
    data_indices = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64), np.asarray(col_positions, np.int64)]
    )
    rhs_rows = q_indices.copy()  # neighbours plus the pinned row itself
    patch = SystemPatch(
        data_indices=data_indices,
        data_old=matrix.data[data_indices].copy(),
        rhs_rows=rhs_rows,
        rhs_old=rhs[rhs_rows].copy(),
    )

    matrix.data[lo:hi] = 0.0
    matrix.data[diag_pos] = diag
    for pos in col_positions:
        matrix.data[pos] = 0.0
    for r, q_r in zip(q_indices, q_values):
        if int(r) != row:
            rhs[int(r)] -= q_r * voltage
    rhs[row] = diag * voltage
    return patch, q_indices, q_values


def patch_rhs(
    rhs: np.ndarray, rows: np.ndarray, deltas: np.ndarray
) -> SystemPatch:
    """Apply additive RHS changes (load revisions) with an undo record."""
    rows = np.asarray(rows, dtype=np.int64)
    patch = SystemPatch(
        data_indices=np.empty(0, dtype=np.int64),
        data_old=np.empty(0, dtype=float),
        rhs_rows=rows,
        rhs_old=rhs[rows].copy(),
    )
    rhs[rows] += deltas
    return patch


def build_full_mna(grid: PowerGrid) -> FullMNASystem:
    """Assemble the full MNA system with branch currents for pads.

    Unknowns are ``[v_0 .. v_{n-1}, i_pad_0 .. i_pad_{m-1}]``.  Each pad
    contributes a row ``v_p = V`` and a symmetric coupling column that adds
    the branch current into the pad node's KCL equation.
    """
    n = grid.num_nodes
    pads = grid.pads()
    m = len(pads)
    size = n + m

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(size, dtype=float)

    diag = np.zeros(n, dtype=float)
    for wire in grid.wires:
        g = wire.conductance
        diag[wire.node_a] += g
        diag[wire.node_b] += g
        rows.extend((wire.node_a, wire.node_b))
        cols.extend((wire.node_b, wire.node_a))
        vals.extend((-g, -g))
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)

    for node in grid.nodes:
        if node.load_current:
            rhs[node.index] -= node.load_current

    for k, pad in enumerate(pads):
        branch = n + k
        rows.extend((pad.index, branch))
        cols.extend((branch, pad.index))
        vals.extend((1.0, 1.0))
        rhs[branch] = pad.pad_voltage

    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(size, size), dtype=float)
    matrix.sum_duplicates()
    return FullMNASystem(matrix=matrix, rhs=rhs, num_nodes=n)
