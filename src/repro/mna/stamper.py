"""Conductance-matrix stamping.

"Using this link table, the circuit generator constructs the circuit
topology graph, enabling the extraction of the conductance matrix G for
simulation" (Section III-B).  Stamping follows the classic MNA rules: a
resistor of conductance g between nodes *a* and *b* adds ``+g`` to the two
diagonal entries and ``-g`` to the two off-diagonals; a current source adds
to the RHS; ideal voltage sources are either eliminated (reduced form) or
given a branch-current unknown (full form).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.grid.netlist import PowerGrid
from repro.grid.topology import validate_connectivity
from repro.mna.system import FullMNASystem, ReducedSystem


def build_reduced_system(
    grid: PowerGrid, validate: bool = True, check_diagonal: bool = True
) -> ReducedSystem:
    """Assemble the SPD reduced system ``G x = b`` over non-pad nodes.

    Pad nodes are eliminated: their known voltage ``v_p`` moves coupling
    terms ``g * v_p`` to the right-hand side.  Load currents enter the RHS
    with a negative sign (current leaves the node into the cells).

    Parameters
    ----------
    grid:
        The power grid to stamp.
    validate:
        Run connectivity validation first (recommended; guarantees the
        result is nonsingular).
    check_diagonal:
        After stamping, verify every diagonal entry is positive and finite
        (cheap) and raise :class:`ValueError` naming the offending nodes
        otherwise — a singular/indefinite ``G`` must never reach a solver
        silently.
    """
    if validate:
        validate_connectivity(grid)

    pad_voltages = {n.index: n.pad_voltage for n in grid.pads()}
    unknown_indices = np.array(
        [n.index for n in grid.nodes if not n.is_pad], dtype=np.int64
    )
    row_of = {int(g): r for r, g in enumerate(unknown_indices)}
    n_unknown = len(unknown_indices)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(n_unknown, dtype=float)

    diag = np.zeros(n_unknown, dtype=float)
    for wire in grid.wires:
        g = wire.conductance
        a_row = row_of.get(wire.node_a)
        b_row = row_of.get(wire.node_b)
        if a_row is not None:
            diag[a_row] += g
        if b_row is not None:
            diag[b_row] += g
        if a_row is not None and b_row is not None:
            rows.extend((a_row, b_row))
            cols.extend((b_row, a_row))
            vals.extend((-g, -g))
        elif a_row is not None:
            rhs[a_row] += g * pad_voltages[wire.node_b]
        elif b_row is not None:
            rhs[b_row] += g * pad_voltages[wire.node_a]
        # pad-to-pad wires contribute nothing to the reduced system

    for node in grid.nodes:
        row = row_of.get(node.index)
        if row is not None and node.load_current:
            rhs[row] -= node.load_current

    rows.extend(range(n_unknown))
    cols.extend(range(n_unknown))
    vals.extend(diag)

    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(n_unknown, n_unknown), dtype=float
    )
    matrix.sum_duplicates()
    if check_diagonal:
        bad = np.flatnonzero(~(diag > 0) | ~np.isfinite(diag))
        if bad.size:
            names = [grid.node(int(unknown_indices[r])).name for r in bad[:5]]
            raise ValueError(
                f"stamped G has {bad.size} non-positive/non-finite diagonal "
                f"entries (e.g. nodes {names}); the system is singular or "
                "indefinite — repair the netlist first"
            )
    return ReducedSystem(
        matrix=matrix,
        rhs=rhs,
        unknown_indices=unknown_indices,
        pad_voltages=pad_voltages,
        num_grid_nodes=grid.num_nodes,
    )


def build_full_mna(grid: PowerGrid) -> FullMNASystem:
    """Assemble the full MNA system with branch currents for pads.

    Unknowns are ``[v_0 .. v_{n-1}, i_pad_0 .. i_pad_{m-1}]``.  Each pad
    contributes a row ``v_p = V`` and a symmetric coupling column that adds
    the branch current into the pad node's KCL equation.
    """
    n = grid.num_nodes
    pads = grid.pads()
    m = len(pads)
    size = n + m

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(size, dtype=float)

    diag = np.zeros(n, dtype=float)
    for wire in grid.wires:
        g = wire.conductance
        diag[wire.node_a] += g
        diag[wire.node_b] += g
        rows.extend((wire.node_a, wire.node_b))
        cols.extend((wire.node_b, wire.node_a))
        vals.extend((-g, -g))
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)

    for node in grid.nodes:
        if node.load_current:
            rhs[node.index] -= node.load_current

    for k, pad in enumerate(pads):
        branch = n + k
        rows.extend((pad.index, branch))
        cols.extend((branch, pad.index))
        vals.extend((1.0, 1.0))
        rhs[branch] = pad.pad_voltage

    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(size, size), dtype=float)
    matrix.sum_duplicates()
    return FullMNASystem(matrix=matrix, rhs=rhs, num_nodes=n)
