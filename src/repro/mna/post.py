"""Post-processing of a solved PG: branch currents and KCL residuals.

Given per-node voltages, every wire's current follows from Ohm's law;
these are the quantities electromigration checks and power-routing
debuggers consume.  Sign convention: ``current[k] > 0`` means conventional
current flows from ``wires[k].node_a`` to ``wires[k].node_b``.
"""

from __future__ import annotations

import numpy as np

from repro.grid.netlist import PowerGrid


def branch_currents(grid: PowerGrid, voltages: np.ndarray) -> np.ndarray:
    """Per-wire currents (amps) from a per-grid-node voltage vector."""
    if voltages.shape != (grid.num_nodes,):
        raise ValueError(
            f"expected {grid.num_nodes} voltages, got shape {voltages.shape}"
        )
    currents = np.empty(grid.num_wires, dtype=float)
    for k, wire in enumerate(grid.wires):
        currents[k] = (
            voltages[wire.node_a] - voltages[wire.node_b]
        ) * wire.conductance
    return currents


def kcl_residuals(grid: PowerGrid, voltages: np.ndarray) -> np.ndarray:
    """Per-node current imbalance (amps): 0 at exact solutions.

    For non-pad nodes the residual is the net wire current into the node
    minus the load drawn there; for pads it is the (arbitrary) source
    current and is reported as zero.
    """
    currents = branch_currents(grid, voltages)
    residual = np.zeros(grid.num_nodes, dtype=float)
    for k, wire in enumerate(grid.wires):
        residual[wire.node_a] -= currents[k]
        residual[wire.node_b] += currents[k]
    for node in grid.nodes:
        if node.is_pad:
            residual[node.index] = 0.0
        else:
            residual[node.index] -= node.load_current
    return residual


def pad_currents(grid: PowerGrid, voltages: np.ndarray) -> dict[int, float]:
    """Current supplied by each pad (amps), keyed by grid node index."""
    currents = branch_currents(grid, voltages)
    supplied: dict[int, float] = {n.index: 0.0 for n in grid.pads()}
    for k, wire in enumerate(grid.wires):
        if wire.node_a in supplied:
            supplied[wire.node_a] += currents[k]
        if wire.node_b in supplied:
            supplied[wire.node_b] -= currents[k]
    return supplied
