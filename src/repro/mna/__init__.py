"""Modified nodal analysis: assembling ``Gx = I`` from a :class:`PowerGrid`.

Two formulations are provided:

- :func:`~repro.mna.stamper.build_reduced_system` — pad voltages eliminated,
  leaving a symmetric positive-definite system over the unknown nodes.  This
  is what every iterative solver in :mod:`repro.solvers` consumes.
- :func:`~repro.mna.stamper.build_full_mna` — the textbook MNA form with
  branch-current unknowns for voltage sources, used to cross-validate the
  reduced form in tests.
"""

from repro.mna.post import branch_currents, kcl_residuals, pad_currents
from repro.mna.stamper import build_full_mna, build_reduced_system
from repro.mna.system import FullMNASystem, ReducedSystem

__all__ = [
    "FullMNASystem",
    "branch_currents",
    "kcl_residuals",
    "pad_currents",
    "ReducedSystem",
    "build_full_mna",
    "build_reduced_system",
]
