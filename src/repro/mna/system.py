"""Linear-system containers produced by MNA stamping."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class ReducedSystem:
    """``G x = b`` over the unknown (non-pad) nodes of a power grid.

    ``G`` is symmetric positive-definite whenever every unknown node has a
    resistive path to a pad.  ``unknown_indices[i]`` maps row *i* back to
    the :class:`~repro.grid.netlist.PowerGrid` node index; ``pad_voltages``
    maps pinned node indices to their supply voltage.

    Attributes
    ----------
    matrix:
        CSR conductance matrix over unknowns (n_unknown x n_unknown).
    rhs:
        Right-hand side: injected currents plus pad-coupling terms.
    unknown_indices:
        Grid node index for each matrix row.
    pad_voltages:
        ``{grid_node_index: volts}`` for eliminated pad nodes.
    num_grid_nodes:
        Total node count of the originating grid (for scattering back).
    """

    matrix: sp.csr_matrix
    rhs: np.ndarray
    unknown_indices: np.ndarray
    pad_voltages: dict[int, float]
    num_grid_nodes: int

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    def scatter(self, x: np.ndarray) -> np.ndarray:
        """Expand an unknown-space solution to a per-grid-node voltage vector.

        Pad nodes receive their pinned voltage.
        """
        if x.shape != (self.size,):
            raise ValueError(f"expected shape ({self.size},), got {x.shape}")
        full = np.empty(self.num_grid_nodes, dtype=float)
        full[self.unknown_indices] = x
        for node_index, volts in self.pad_voltages.items():
            full[node_index] = volts
        return full

    def gather(self, full: np.ndarray) -> np.ndarray:
        """Restrict a per-grid-node vector to the unknown subspace."""
        if full.shape != (self.num_grid_nodes,):
            raise ValueError(
                f"expected shape ({self.num_grid_nodes},), got {full.shape}"
            )
        return full[self.unknown_indices].copy()

    def mutable_copy(self) -> "ReducedSystem":
        """A deep-enough copy for in-place delta stamping.

        The CSR matrix and RHS are copied (the arrays delta stamping
        mutates); index arrays and pad voltages are shared — the
        incremental engine never changes the unknown set without a full
        rebuild.
        """
        return ReducedSystem(
            matrix=self.matrix.copy(),
            rhs=self.rhs.copy(),
            unknown_indices=self.unknown_indices,
            pad_voltages=dict(self.pad_voltages),
            num_grid_nodes=self.num_grid_nodes,
        )

    def row_map(self) -> dict[int, int]:
        """``{grid_node_index: reduced_row}`` for the unknown nodes."""
        return {int(g): r for r, g in enumerate(self.unknown_indices)}

    def residual_norm(self, x: np.ndarray) -> float:
        """Two-norm of ``b - Gx`` for a candidate solution."""
        return float(np.linalg.norm(self.rhs - self.matrix @ x))

    def relative_residual(self, x: np.ndarray) -> float:
        """``||b - Gx|| / ||b||`` (0 if b is the zero vector)."""
        denom = float(np.linalg.norm(self.rhs))
        if denom == 0.0:
            return 0.0
        return self.residual_norm(x) / denom


@dataclass(frozen=True)
class FullMNASystem:
    """Textbook MNA: node voltages plus branch currents for voltage sources.

    The matrix is symmetric but indefinite; it is solved directly (sparse
    LU) and only used to validate the reduced formulation.

    Attributes
    ----------
    matrix:
        CSR MNA matrix of size (n_nodes + n_vsrc).
    rhs:
        Stacked current injections and source voltages.
    num_nodes:
        Number of node-voltage unknowns (all grid nodes).
    """

    matrix: sp.csr_matrix
    rhs: np.ndarray
    num_nodes: int

    @property
    def num_branch_currents(self) -> int:
        return self.matrix.shape[0] - self.num_nodes

    def split_solution(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a solution vector into (node voltages, branch currents)."""
        return x[: self.num_nodes].copy(), x[self.num_nodes :].copy()
