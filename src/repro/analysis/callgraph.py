"""Project call graph for whole-program analysis passes.

The PR-4 lint rules are purely intra-function: they can flag a lambda
handed to ``parallel_map`` at the call site, but not a module-global
mutation three calls *below* a worker entry point.  This module gives
the engine the missing whole-program view: a best-effort static call
graph over every ``repro.*`` module, computed **once per engine run**
and shared by all callgraph passes (worker-context reachability, shm
scope escape checks, ...).

Resolution is deliberately conservative-but-useful, in layers:

- **module-level names** — ``from repro.core.batch import parallel_map``
  and ``import repro.core.shm as _shm`` are tracked per module, so
  ``parallel_map(...)`` and ``_shm.dumps(...)`` resolve exactly;
- **intra-module calls** — a bare ``helper(...)`` resolves to the
  module's own ``helper`` when one exists;
- **self/cls attribute calls** — ``self.method(...)`` inside a class
  resolves to that class's own method (or, best-effort, a single
  same-named method on a base class defined in the project);
- **best-effort attribute calls** — ``obj.method(...)`` where the
  receiver is unknown resolves to *every* project function called
  ``method`` defined as a class method, when the name is defined in at
  most :data:`MAX_ATTR_CANDIDATES` classes (beyond that the name is too
  generic to be a useful edge and is dropped);
- **callable references** — a function *name* passed as an argument
  (``parallel_map(worker, items)``) or stored (``target=fn``) adds a
  reference edge, so reachability follows callables shipped to the
  worker pool even though they are never syntactically called here.

Nodes are fully-qualified names: ``repro.core.batch.parallel_map`` for
module functions, ``repro.core.pool.WorkerPool.map`` for methods.
:meth:`CallGraph.reachable_from` returns the transitive closure plus a
shortest call path back to an entry for every reached node — the
``reachable from worker via A→B`` breadcrumb the CI annotations print.

This is a *static over-approximation with holes* by construction:
dynamic dispatch through ``getattr`` strings or containers of callables
is invisible, and over-generic method names fan out to unrelated
classes.  Passes built on it therefore treat reachability as "likely
runs in this context" and keep their per-node rules conservative.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleSource

#: An attribute call whose method name is defined on more than this many
#: project classes is considered too generic to resolve (``to_dict``,
#: ``summary`` ...) and contributes no edges.
MAX_ATTR_CANDIDATES = 3

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name(path: str) -> str | None:
    """Dotted module name for a repo-relative ``src/`` path, else None."""
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    parts = path[len("src/") : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str  # repro.core.pool.WorkerPool.map
    module: str  # repro.core.pool
    path: str  # src/repro/core/pool.py
    node: ast.AST  # the FunctionDef
    cls: str | None = None  # enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class _ModuleScope:
    """Name-resolution context for one module."""

    name: str
    #: local name -> fully qualified target ("np", "repro.core.shm", ...)
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level function name -> qualname
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> qualname}
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class name -> base-class expressions (dotted names, best effort)
    bases: dict[str, list[str]] = field(default_factory=dict)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """Static call/reference graph over the project's functions."""

    def __init__(self) -> None:
        #: qualname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: caller qualname -> set of callee qualnames
        self.edges: dict[str, set[str]] = {}
        #: method simple name -> [qualnames] (attribute-call fan-out)
        self._methods_by_name: dict[str, list[str]] = {}
        self._scopes: dict[str, _ModuleScope] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, modules: list[ModuleSource]) -> "CallGraph":
        graph = cls()
        indexed = [
            (module, module_name(module.path))
            for module in modules
            if module_name(module.path) is not None
        ]
        for module, name in indexed:
            graph._index_module(module, name)
        for module, name in indexed:
            graph._link_module(module, name)
        return graph

    def _index_module(self, module: ModuleSource, name: str) -> None:
        scope = _ModuleScope(name=name)
        self._scopes[name] = scope
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    scope.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level:  # relative import: resolve against package
                    base = name.split(".")
                    # a plain module's package drops the module itself; a
                    # package __init__ (already stripped by module_name)
                    # *is* the package
                    if not module.path.endswith("__init__.py"):
                        base = base[:-1]
                    base = base[: len(base) - stmt.level + 1]
                    prefix = ".".join(base + ([stmt.module] if stmt.module else []))
                else:
                    prefix = stmt.module or ""
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    scope.imports[alias.asname or alias.name] = (
                        f"{prefix}.{alias.name}" if prefix else alias.name
                    )
            elif isinstance(stmt, _FUNCTION_NODES):
                qualname = f"{name}.{stmt.name}"
                scope.functions[stmt.name] = qualname
                self._add_function(qualname, name, module.path, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                methods: dict[str, str] = {}
                for sub in stmt.body:
                    if isinstance(sub, _FUNCTION_NODES):
                        qualname = f"{name}.{stmt.name}.{sub.name}"
                        methods[sub.name] = qualname
                        self._add_function(
                            qualname, name, module.path, sub, stmt.name
                        )
                        self._methods_by_name.setdefault(sub.name, []).append(
                            qualname
                        )
                scope.classes[stmt.name] = methods
                scope.bases[stmt.name] = [
                    base
                    for base in (_dotted(b) for b in stmt.bases)
                    if base is not None
                ]

    def _add_function(
        self, qualname: str, module: str, path: str, node: ast.AST, cls_name
    ) -> None:
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, module=module, path=path, node=node, cls=cls_name
        )
        self.edges.setdefault(qualname, set())

    # -- linking ---------------------------------------------------------------

    def _resolve_name(self, scope: _ModuleScope, dotted: str) -> str | None:
        """Resolve a dotted use-site name to a project qualname."""
        head, _, rest = dotted.partition(".")
        target = scope.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        elif not rest and head in scope.functions:
            return scope.functions[head]
        elif head in scope.classes:
            # Class reference: Klass() "calls" __init__; Klass.method too.
            methods = scope.classes[head]
            if not rest:
                return methods.get("__init__") or f"{scope.name}.{head}"
            return methods.get(rest.split(".")[-1])
        if not dotted.startswith("repro."):
            return None
        # Fully-qualified: repro.core.shm.dumps or repro.core.shm.ShmArena.share
        if dotted in self.functions:
            return dotted
        parts = dotted.split(".")
        # module.Class -> __init__
        init = f"{dotted}.__init__"
        if init in self.functions:
            return init
        # An imported module attribute: repro.core.shm + name
        for cut in range(len(parts) - 1, 0, -1):
            candidate_mod = ".".join(parts[:cut])
            other = self._scopes.get(candidate_mod)
            if other is None:
                continue
            tail = parts[cut:]
            if len(tail) == 1:
                if tail[0] in other.functions:
                    return other.functions[tail[0]]
                if tail[0] in other.classes:
                    return other.classes[tail[0]].get(
                        "__init__"
                    ) or f"{candidate_mod}.{tail[0]}"
            elif len(tail) >= 2:
                methods = other.classes.get(tail[0])
                if methods is not None:
                    return methods.get(tail[1])
        return None

    def _resolve_self_call(
        self, scope: _ModuleScope, cls_name: str, method: str
    ) -> str | None:
        """``self.method()`` → this class's method, else a project base's."""
        seen: set[str] = set()
        queue = deque([(scope, cls_name)])
        while queue:
            cur_scope, cur_cls = queue.popleft()
            if (cur_scope.name, cur_cls) in seen:
                continue
            seen.add((cur_scope.name, cur_cls))
            methods = cur_scope.classes.get(cur_cls)
            if methods and method in methods:
                return methods[method]
            for base in cur_scope.bases.get(cur_cls, []):
                resolved = self._resolve_class(cur_scope, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class(
        self, scope: _ModuleScope, dotted: str
    ) -> tuple[_ModuleScope, str] | None:
        """Resolve a base-class expression to (scope, class name)."""
        head, _, rest = dotted.partition(".")
        target = scope.imports.get(head)
        if target is None:
            if not rest and head in scope.classes:
                return scope, head
            return None
        full = f"{target}.{rest}" if rest else target
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            other = self._scopes.get(".".join(parts[:cut]))
            if other is not None and len(parts) - cut == 1:
                if parts[-1] in other.classes:
                    return other, parts[-1]
        return None

    def _link_module(self, module: ModuleSource, name: str) -> None:
        scope = self._scopes[name]
        for info in list(self.functions.values()):
            if info.module != name:
                continue
            self._link_function(scope, info)

    def _link_function(self, scope: _ModuleScope, info: FunctionInfo) -> None:
        edges = self.edges[info.qualname]

        def resolve_use(node: ast.AST) -> str | None:
            dotted = _dotted(node)
            if dotted is None:
                return None
            head = dotted.split(".")[0]
            if head in ("self", "cls") and info.cls is not None:
                rest = dotted.split(".")[1:]
                if len(rest) == 1:
                    return self._resolve_self_call(scope, info.cls, rest[0])
                return None
            resolved = self._resolve_name(scope, dotted)
            if resolved is not None:
                return resolved
            # Best-effort attribute call: obj.method(...) by method name.
            if "." in dotted:
                method = dotted.split(".")[-1]
                candidates = self._methods_by_name.get(method, [])
                if 0 < len(candidates) <= MAX_ATTR_CANDIDATES:
                    edges.update(candidates)
            return None

        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call):
                target = resolve_use(sub.func)
                if target is not None:
                    edges.add(target)
                # Callable references passed as arguments.
                for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        ref = resolve_use(arg)
                        if ref is not None:
                            edges.add(ref)
            elif isinstance(sub, (ast.Assign, ast.Return)):
                value = sub.value
                if isinstance(value, (ast.Name, ast.Attribute)):
                    ref = resolve_use(value)
                    if ref is not None:
                        edges.add(ref)
        # A method's class being instantiated makes its __call__ relevant;
        # conservatively link __init__ -> __call__ so callable objects
        # shipped to the pool stay reachable through construction sites.
        if info.name == "__init__" and info.cls is not None:
            call = f"{info.module}.{info.cls}.__call__"
            if call in self.functions:
                edges.add(call)

    # -- queries ---------------------------------------------------------------

    def reachable_from(
        self, entries: dict[str, str]
    ) -> dict[str, list[str]]:
        """Transitive closure from *entries* (qualname -> entry label).

        Returns ``{qualname: [entry label, hop, hop, ..., qualname]}`` —
        a shortest call path back to the entry that reached it first
        (BFS order), for every reachable function including the entries
        themselves.
        """
        paths: dict[str, list[str]] = {}
        queue: deque[str] = deque()
        for qualname, label in entries.items():
            if qualname in self.functions and qualname not in paths:
                paths[qualname] = [label, qualname]
                queue.append(qualname)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee in paths or callee not in self.functions:
                    continue
                paths[callee] = paths[current] + [callee]
                queue.append(callee)
        return paths

    def resolve_use_site(
        self, module: str, dotted: str, cls: str | None = None
    ) -> str | None:
        """Resolve a use-site name as seen from *module* (public helper).

        Mirrors the resolution the linker applies to call expressions:
        ``self.x``/``cls.x`` resolve against *cls* when given, everything
        else through the module's import/definition scope.  Returns the
        project qualname, or None when the name points outside the
        project (or cannot be resolved statically).
        """
        scope = self._scopes.get(module)
        if scope is None:
            return None
        head = dotted.split(".")[0]
        if head in ("self", "cls") and cls is not None:
            rest = dotted.split(".")[1:]
            if len(rest) == 1:
                return self._resolve_self_call(scope, cls, rest[0])
            return None
        return self._resolve_name(scope, dotted)

    def callers_of(self, qualname: str) -> set[str]:
        """Direct callers of *qualname* (reverse-edge lookup)."""
        return {
            caller
            for caller, callees in self.edges.items()
            if qualname in callees
        }

    def function_at(
        self, path: str, node: ast.AST
    ) -> FunctionInfo | None:
        """The FunctionInfo whose def *node* this is, if indexed."""
        for info in self.functions.values():
            if info.path == path and info.node is node:
                return info
        return None
