"""Opt-in lock-order/race sanitizer (``REPRO_RACE_CHECK``).

Sibling of the numerics sanitizer: the static ``worker-context`` pass
proves *where* locking is missing, this runtime mode proves the locking
that exists is *used consistently*.  Two dynamic properties no static
pass can check:

- **lock-order inversions** — thread A acquires ``obs.metrics`` then
  ``shm.arena`` while thread B acquires them in the opposite order: no
  test deadlocks (the windows are microseconds) until a loaded serving
  daemon does.  The sanitizer wraps the project's long-lived locks in
  :class:`TrackedLock` and records every *held-while-acquiring* edge;
  an edge in both directions is an inversion.
- **unlocked writes** — shared dicts (metrics registry, arena segment
  table, AMG setup cache, pipeline cache) mutated by a thread that does
  not hold the lock that is supposed to guard them.  The dicts are
  replaced by :class:`GuardedDict`/:class:`GuardedOrderedDict` views
  that verify the guard on every mutating operation.

Modes, via the ``REPRO_RACE_CHECK`` environment variable:

- ``strict`` (or ``1``) — raise :class:`RaceError` at the violation
  site; the chaos-smoke CI job runs in this mode so a regression fails
  the build with the offending stack, not a flaky hang three jobs later.
- ``record`` — collect findings and print a ``racecheck:`` summary to
  stderr at exit; for local archaeology on a known-dirty branch.
- unset/``0`` — everything in this module stays dormant and the
  instrumented code paths are bit-identical to the uninstrumented ones.

:func:`install_from_env` is called from the CLI entry point and from
the pool worker bootstrap, so parent and worker processes are both
covered; instrumentation replaces *instance* attributes (the same
pattern the numerics sanitizer uses on modules), never classes.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field

ENV_VAR = "REPRO_RACE_CHECK"


class RaceError(RuntimeError):
    """Raised at the violation site in strict mode."""


@dataclass(frozen=True)
class RaceFinding:
    """One observed ordering inversion or unlocked mutation."""

    kind: str  # "lock-inversion" | "unlocked-write"
    detail: str
    thread: str
    stack: str  # abbreviated acquisition/mutation stack

    def summary(self) -> str:
        return f"{self.kind}: {self.detail} [thread {self.thread}]"


def _stack_summary(skip: int = 2, limit: int = 4) -> str:
    frames = traceback.extract_stack()[: -skip][-limit:]
    return " <- ".join(
        f"{os.path.basename(f.filename)}:{f.lineno}:{f.name}"
        for f in reversed(frames)
    )


@dataclass
class _Recorder:
    """Process-global acquisition-order graph and finding sink."""

    strict: bool = False
    findings: list[RaceFinding] = field(default_factory=list)
    #: (held label, acquired label) -> stack where first observed
    edges: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _local: threading.local = field(default_factory=threading.local)

    def _held_stack(self) -> list:
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = []
            self._local.held = stack
        return stack

    def _emit(self, finding: RaceFinding) -> None:
        with self._lock:
            self.findings.append(finding)
        if self.strict:
            raise RaceError(finding.summary() + f"\n  at {finding.stack}")

    # -- lock events -----------------------------------------------------------

    def on_acquire(self, label: str) -> None:
        if getattr(self._local, "busy", False):
            return
        self._local.busy = True
        try:
            held = self._held_stack()
            stack = _stack_summary(skip=3)
            inversion = None
            with self._lock:
                for prior in held:
                    if prior == label:
                        continue
                    edge = (prior, label)
                    reverse = (label, prior)
                    if reverse in self.edges and edge not in self.edges:
                        inversion = (prior, self.edges[reverse])
                    self.edges.setdefault(edge, stack)
            held.append(label)
            if inversion is not None:
                prior, reverse_stack = inversion
                self._emit(
                    RaceFinding(
                        kind="lock-inversion",
                        detail=(
                            f"'{label}' acquired while holding '{prior}', "
                            f"but the opposite order was recorded at "
                            f"[{reverse_stack}]"
                        ),
                        thread=threading.current_thread().name,
                        stack=stack,
                    )
                )
        finally:
            self._local.busy = False

    def on_release(self, label: str) -> None:
        held = self._held_stack()
        if label in held:
            held.remove(label)

    def holds(self, label: str) -> bool:
        return label in self._held_stack()

    # -- dict events -----------------------------------------------------------

    def on_unlocked_write(self, label: str, op: str, key) -> None:
        if getattr(self._local, "busy", False):
            return
        self._local.busy = True
        try:
            self._emit(
                RaceFinding(
                    kind="unlocked-write",
                    detail=(
                        f"{op}({key!r}) on shared dict '{label}' without "
                        f"holding its guard lock"
                    ),
                    thread=threading.current_thread().name,
                    stack=_stack_summary(skip=3),
                )
            )
        finally:
            self._local.busy = False


_RECORDER: _Recorder | None = None


def recorder() -> _Recorder | None:
    """The active recorder, or None when the sanitizer is dormant."""
    return _RECORDER


def findings() -> list[RaceFinding]:
    """Findings collected so far (empty when dormant)."""
    return list(_RECORDER.findings) if _RECORDER is not None else []


def reset_findings() -> None:
    if _RECORDER is not None:
        with _RECORDER._lock:
            _RECORDER.findings.clear()
            _RECORDER.edges.clear()


class TrackedLock:
    """A lock wrapper that reports acquisition order to the recorder.

    Drop-in for the ``threading.Lock``/``RLock`` surface the project
    uses (``acquire``/``release``/context manager/``locked``).
    """

    def __init__(self, inner, label: str, rec: _Recorder) -> None:
        self._inner = inner
        self._label = label
        self._recorder = rec

    @property
    def label(self) -> str:
        return self._label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._recorder.on_acquire(self._label)
        return acquired

    def release(self) -> None:
        self._recorder.on_release(self._label)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def _guard_check(rec: _Recorder, guard_label: str, dict_label: str, op, key):
    if not rec.holds(guard_label):
        rec.on_unlocked_write(dict_label, op, key)


class GuardedDict(dict):
    """A dict that requires its guard lock to be held for mutation."""

    def __init__(self, data, guard_label: str, label: str, rec: _Recorder):
        super().__init__(data)
        self._guard_label = guard_label
        self._label = label
        self._recorder = rec

    def _check(self, op: str, key=None) -> None:
        _guard_check(
            self._recorder, self._guard_label, self._label, op, key
        )

    def __setitem__(self, key, value):
        self._check("__setitem__", key)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._check("__delitem__", key)
        super().__delitem__(key)

    def pop(self, *args, **kwargs):
        self._check("pop", args[0] if args else None)
        return super().pop(*args, **kwargs)

    def popitem(self):
        self._check("popitem")
        return super().popitem()

    def update(self, *args, **kwargs):
        self._check("update")
        return super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._check("setdefault", key)
        return super().setdefault(key, default)

    def clear(self):
        self._check("clear")
        return super().clear()


class GuardedOrderedDict(OrderedDict):
    """OrderedDict flavour (the AMG setup cache relies on move_to_end)."""

    def __init__(self, data, guard_label: str, label: str, rec: _Recorder):
        super().__init__(data)
        self._guard_label = guard_label
        self._label = label
        self._recorder = rec

    def _check(self, op: str, key=None) -> None:
        _guard_check(
            self._recorder, self._guard_label, self._label, op, key
        )

    def __setitem__(self, key, value):
        # OrderedDict.__init__/update bootstrap through __setitem__
        # before our attributes exist; stay silent until installed.
        if hasattr(self, "_recorder"):
            self._check("__setitem__", key)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._check("__delitem__", key)
        super().__delitem__(key)

    def pop(self, *args, **kwargs):
        self._check("pop", args[0] if args else None)
        return super().pop(*args, **kwargs)

    def popitem(self, last: bool = True):
        self._check("popitem")
        return super().popitem(last)

    def move_to_end(self, key, last: bool = True):
        self._check("move_to_end", key)
        return super().move_to_end(key, last)

    def clear(self):
        self._check("clear")
        return super().clear()


def wrap_lock(owner, attr: str, label: str) -> None:
    """Replace ``owner.<attr>`` with a tracked wrapper (idempotent)."""
    if _RECORDER is None:
        return
    current = getattr(owner, attr)
    if isinstance(current, TrackedLock):
        return
    setattr(owner, attr, TrackedLock(current, label, _RECORDER))


def wrap_dict(owner, attr: str, guard_label: str, label: str) -> None:
    """Replace ``owner.<attr>`` with a guarded view (idempotent)."""
    if _RECORDER is None:
        return
    current = getattr(owner, attr)
    if isinstance(current, (GuardedDict, GuardedOrderedDict)):
        return
    cls = (
        GuardedOrderedDict
        if isinstance(current, OrderedDict)
        else GuardedDict
    )
    setattr(owner, attr, cls(current, guard_label, label, _RECORDER))


def _report_at_exit() -> None:
    if _RECORDER is None or not _RECORDER.findings:
        return
    print(
        f"racecheck: {len(_RECORDER.findings)} finding(s):", file=sys.stderr
    )
    for finding in _RECORDER.findings:
        print(f"racecheck:   {finding.summary()}", file=sys.stderr)
        print(f"racecheck:     at {finding.stack}", file=sys.stderr)


def install(strict: bool = True) -> _Recorder:
    """Activate the sanitizer and instrument the known shared state.

    Targets (instance attributes only — no class is mutated):

    - ``repro.obs.metrics._REGISTRY``: the metrics lock + both tables;
    - ``repro.core.shm.ARENA``: the arena lock + segment table, and the
      module-level attachment cache with its lock;
    - ``repro.solvers.cache._GLOBAL_CACHE``: the AMG setup cache lock +
      LRU table;
    - ``repro.core.batch``: the worker-side pipeline cache + its lock.
    """
    global _RECORDER
    if _RECORDER is not None:
        _RECORDER.strict = strict
        return _RECORDER
    _RECORDER = _Recorder(strict=strict)

    from repro.core import batch as _batch
    from repro.core import shm as _shm
    from repro.obs import metrics as _metrics
    from repro.solvers import cache as _cache

    registry = _metrics._REGISTRY
    wrap_lock(registry, "_lock", "obs.metrics")
    wrap_dict(registry, "_counters", "obs.metrics", "obs.metrics._counters")
    wrap_dict(registry, "_gauges", "obs.metrics", "obs.metrics._gauges")

    wrap_lock(_shm.ARENA, "_lock", "shm.arena")
    wrap_dict(_shm.ARENA, "_segments", "shm.arena", "shm.arena._segments")
    wrap_lock(_shm, "_ATTACH_LOCK", "shm.attach")
    wrap_dict(_shm, "_ATTACHMENTS", "shm.attach", "shm._ATTACHMENTS")

    cache = _cache._GLOBAL_CACHE
    wrap_lock(cache, "_lock", "solvers.amg_cache")
    wrap_dict(cache, "_entries", "solvers.amg_cache", "amg_cache._entries")

    wrap_lock(_batch, "_PIPELINE_CACHE_LOCK", "batch.pipeline_cache")
    wrap_dict(
        _batch,
        "_PIPELINE_CACHE",
        "batch.pipeline_cache",
        "batch._PIPELINE_CACHE",
    )

    if not strict:
        atexit.register(_report_at_exit)
    return _RECORDER


def install_from_env() -> _Recorder | None:
    """Activate when ``REPRO_RACE_CHECK`` requests it (CLI/worker hook)."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("", "0", "off", "false"):
        return None
    return install(strict=value not in ("record", "report"))
