"""``metrics-contract``: emit-site names must exist in the registry.

``counter_add("amg_setup_cache.hit")`` — note the missing ``s`` — is
valid Python, runs fine, and feeds a dashboard series nobody reads
while the real ``amg_setup_cache.hits`` flatlines.  This pass resolves
every metric/span name *literal* in ``src/`` against the declared
contract in :mod:`repro.obs.registry` at lint time, so the typo is a
strict CI failure instead of a silent observability hole.

Covered call shapes:

- ``counter_add("name")`` / ``gauge_set("name", v)`` — plain literals;
- ``counter_add("a" if cond else "b")`` — conditional emits check both
  branches (the incremental solver uses this shape);
- ``span("name")`` / ``trace("name")`` / any ``*span`` helper whose
  first argument is a literal (``_record_span`` in ``repro.core.shm``);
- ``counter_add(f"family.{suffix}")`` — the literal prefix must match a
  registered ``family.*`` wildcard; a dynamic name outside any declared
  family is flagged, because the runtime trace validator would reject
  it anyway.

Non-literal first arguments (variables, attribute reads) are skipped
here — those names are caught at runtime by the registry cross-check in
``python -m repro.obs --validate``, which CI runs on real traces.  The
two checks are intentionally the same contract applied at both ends.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import CallGraphPass, Finding, ModuleSource
from repro.analysis.rules._util import call_name
from repro.obs import registry

#: call-name last part -> registry kind
_EMITTERS = {
    "counter_add": "counter",
    "gauge_set": "gauge",
    "span": "span",
    "trace": "span",
}


def _emitter_kind(callee: str) -> str | None:
    last = callee.split(".")[-1]
    if last in _EMITTERS:
        return _EMITTERS[last]
    # helper wrappers like _span / _record_span / record_attempt_span
    if last.endswith("_span") or last.endswith("span"):
        return "span"
    return None


class MetricsContractPass(CallGraphPass):
    rule_id = "metrics-contract"
    title = "metric/span name not declared in repro.obs.registry"

    def applies_to(self, path: str) -> bool:
        # the registry itself and the trace plumbing pass names through
        # variables; everything else in src/ is an emit site
        return path.startswith("src/") and path not in (
            "src/repro/obs/registry.py",
            "src/repro/obs/trace.py",
            "src/repro/obs/export.py",
        )

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            callee = call_name(node)
            if callee is None:
                continue
            kind = _emitter_kind(callee)
            if kind is None:
                continue
            findings.extend(self._check_name_arg(module, node, node.args[0], kind))
        return findings

    def _check_name_arg(
        self, module: ModuleSource, call: ast.Call, arg: ast.expr, kind: str
    ) -> list[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return self._check_literal(module, call, arg.value, kind)
        if isinstance(arg, ast.IfExp):
            findings: list[Finding] = []
            for branch in (arg.body, arg.orelse):
                findings.extend(self._check_name_arg(module, call, branch, kind))
            return findings
        if isinstance(arg, ast.JoinedStr):
            return self._check_fstring(module, call, arg, kind)
        return []  # dynamic name: the runtime trace validator owns it

    def _check_literal(
        self, module: ModuleSource, call: ast.Call, name: str, kind: str
    ) -> list[Finding]:
        if registry.is_registered(kind, name):
            return []
        hint = registry.suggest(kind, name)
        suffix = f"; did you mean '{hint}'?" if hint else ""
        return [
            module.finding(
                self.rule_id,
                call,
                f"{kind} name '{name}' is not declared in "
                f"repro.obs.registry{suffix} — declare it or fix the typo",
            )
        ]

    def _check_fstring(
        self, module: ModuleSource, call: ast.Call, arg: ast.JoinedStr, kind: str
    ) -> list[Finding]:
        prefix_parts: list[str] = []
        for value in arg.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix_parts.append(value.value)
            else:
                break
        prefix = "".join(prefix_parts)
        families = {
            "counter": registry.COUNTER_FAMILIES,
            "gauge": registry.GAUGE_FAMILIES,
            "span": registry.SPAN_FAMILIES,
        }[kind]
        for pattern in families:
            family_prefix = pattern[:-1]  # strip the trailing "*"
            if prefix.startswith(family_prefix):
                return []
        return [
            module.finding(
                self.rule_id,
                call,
                f"dynamic {kind} name f'{prefix}{{...}}' matches no "
                "registered wildcard family in repro.obs.registry — "
                f"declare '{prefix}*' (or a parent family) there",
            )
        ]
