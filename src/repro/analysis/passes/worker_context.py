"""``worker-context``: worker-only rules applied transitively.

The PR-4 ``fork-unsafe-closure`` rule inspects the literal callable
handed to ``parallel_map`` — it cannot see that the worker calls a
helper two modules away that rebinds a module global.  This pass closes
that gap: it computes the set of functions *reachable* from every
pool/spawn entry point through the project call graph and applies the
worker-only rules to each of them, attaching the call path
("worker of parallel_map → A → B") to every finding.

Entry points:

- the first argument of every ``parallel_map``/``parallel_map_ex``/
  ``<pool>.map`` call site in ``src/``, resolved through the call graph;
- the known callable task objects the pool ships by construction:
  ``_PipelineTask.__call__``, ``_ShardWorker.__call__`` and the chaos
  plan's worker-side ``WorkerFaultPlan.apply``.

Worker-only rules (each reported under this pass's single rule id so
one pragma suffices per site):

- **unlocked global mutation** — rebinding a module global
  (``global X; X = ...``) or mutating a module-level container
  (``X[k] = v``, ``X.update(...)``) outside a ``with <lock>:`` block.
  Worker processes run the pool's heartbeat thread next to the task, so
  unlocked module state is racy even before the serving daemon lands;
  under spawn the mutation is also silently lost to the parent.
- **process/thread creation** — ``os.fork``/``os.forkpty`` or
  ``threading.Thread(...)`` reachable from a worker: nested forks break
  the pool's supervision tree and inherit locked locks.
- **fork-hostile task state** — the ``__init__`` of a shipped callable
  task object storing an open file handle, lock, or thread on ``self``:
  the pickle that carries the task to the worker cannot serialise it.

Lock detection is lexical: a mutation inside a ``with`` statement whose
context expression mentions a name containing ``lock`` (any case) is
considered guarded.  That is deliberately generous — the pass exists to
catch *missing* locking, not to audit lock correctness (the runtime
race sanitizer, :mod:`repro.analysis.racecheck`, covers that half).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import CallGraphPass, Finding, ModuleSource
from repro.analysis.rules._util import build_parent_map, call_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_POOL_ENTRY_POINTS = {"parallel_map", "parallel_map_ex", "map"}
#: Callable task objects shipped to workers by construction, not by a
#: syntactic ``parallel_map(fn, ...)`` call the scanner could see.
_KNOWN_ENTRIES = {
    "repro.core.batch._PipelineTask.__call__": "pipeline task",
    "repro.train.trainer._ShardWorker.__call__": "shard worker",
    "repro.testing.faults.WorkerFaultPlan.apply": "chaos plan",
}
_FORK_CALLS = {"os.fork", "os.forkpty"}
#: Container constructors whose module-level instances count as shared
#: mutable state.
_CONTAINER_CALLS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque",
}
#: Method names that mutate a container in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "move_to_end",
}
#: Constructors whose results must not ride a task pickle to a worker.
_UNPICKLABLE_CTOR_PARTS = {
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
    "Condition", "Thread",
}


def _module_container_globals(module: ModuleSource) -> set[str]:
    """Module-level names bound to mutable containers."""
    names: set[str] = set()
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_container = isinstance(value, (ast.Dict, ast.List, ast.Set))
        if not is_container and isinstance(value, ast.Call):
            is_container = (call_name(value) or "") in _CONTAINER_CALLS
        if not is_container:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _under_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """True when *node* sits inside a ``with <...lock...>:`` block."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                text = ast.dump(item.context_expr)
                if "lock" in text.lower():
                    return True
        if isinstance(current, _FUNCTION_NODES):
            break
        current = parents.get(current)
    return False


class WorkerContextPass(CallGraphPass):
    rule_id = "worker-context"
    title = "worker-unsafe operation reachable from a pool entry point"

    # -- entry discovery -------------------------------------------------------

    def _entries(self, modules, graph) -> dict[str, str]:
        from repro.analysis.callgraph import module_name

        entries: dict[str, str] = {}
        for qualname, label in _KNOWN_ENTRIES.items():
            if qualname in graph.functions:
                entries[qualname] = label
        for module in modules:
            mod_name = module_name(module.path)
            if mod_name is None:
                continue
            for info in graph.functions.values():
                if info.module != mod_name:
                    continue
                for sub in ast.walk(info.node):
                    if not isinstance(sub, ast.Call) or not sub.args:
                        continue
                    name = call_name(sub)
                    if (
                        name is None
                        or name.split(".")[-1] not in _POOL_ENTRY_POINTS
                    ):
                        continue
                    worker = sub.args[0]
                    dotted = _dotted_or_none(worker)
                    if dotted is None:
                        continue
                    resolved = graph.resolve_use_site(
                        mod_name, dotted, cls=info.cls
                    )
                    if resolved is not None:
                        entries.setdefault(
                            resolved,
                            f"worker of {name.split('.')[-1]} "
                            f"({module.path}:{sub.lineno})",
                        )
        return entries

    # -- per-function rules ----------------------------------------------------

    def check_graph(self, modules, graph) -> list[Finding]:
        entries = self._entries(modules, graph)
        if not entries:
            return []
        paths = graph.reachable_from(entries)
        by_path = {m.path: m for m in modules}
        container_cache: dict[str, set[str]] = {}
        findings: list[Finding] = []
        entry_classes = self._entry_task_classes(entries, graph)

        for qualname, callpath in sorted(paths.items()):
            info = graph.functions[qualname]
            module = by_path.get(info.path)
            if module is None:
                continue
            if info.path not in container_cache:
                container_cache[info.path] = _module_container_globals(module)
            containers = container_cache[info.path]
            trail = tuple(callpath[:-1]) if len(callpath) > 2 else (callpath[0],)
            findings.extend(
                self._check_function(module, info, containers, trail)
            )
            if qualname in entry_classes:
                findings.extend(
                    self._check_task_init(module, graph, info, trail)
                )
        return findings

    def _entry_task_classes(self, entries, graph) -> set[str]:
        """Entry qualnames that are methods of shipped task objects."""
        return {
            qualname
            for qualname in entries
            if qualname.endswith((".__call__", ".apply"))
            and graph.functions[qualname].cls is not None
        }

    def _check_function(
        self,
        module: ModuleSource,
        info,
        containers: set[str],
        trail: tuple[str, ...],
    ) -> list[Finding]:
        findings: list[Finding] = []
        parents = build_parent_map(info.node)
        declared_global: set[str] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)

        for sub in ast.walk(info.node):
            # global rebinding: `global X` + assignment to X
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                        and not _under_lock(sub, parents)
                    ):
                        findings.append(
                            module.finding(
                                self.rule_id,
                                sub,
                                f"'{info.qualname}' rebinds module global "
                                f"'{target.id}' without holding a lock; "
                                "worker processes run the heartbeat thread "
                                "concurrently and spawn discards the write",
                                callpath=trail,
                            )
                        )
                    # container mutation via subscript store: X[k] = v
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in containers
                        and not _under_lock(sub, parents)
                    ):
                        findings.append(
                            module.finding(
                                self.rule_id,
                                sub,
                                f"'{info.qualname}' writes module-level "
                                f"container '{target.value.id}' without "
                                "holding a lock",
                                callpath=trail,
                            )
                        )
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in containers
                        and not _under_lock(sub, parents)
                    ):
                        findings.append(
                            module.finding(
                                self.rule_id,
                                sub,
                                f"'{info.qualname}' deletes from module-level "
                                f"container '{target.value.id}' without "
                                "holding a lock",
                                callpath=trail,
                            )
                        )
            elif isinstance(sub, ast.Call):
                name = call_name(sub)
                if name is None:
                    continue
                if name in _FORK_CALLS:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            sub,
                            f"'{info.qualname}' calls {name}() inside a pool "
                            "worker; nested forks break the supervision tree "
                            "and inherit locked locks",
                            callpath=trail,
                        )
                    )
                elif name in ("threading.Thread", "Thread"):
                    findings.append(
                        module.finding(
                            self.rule_id,
                            sub,
                            f"'{info.qualname}' starts a thread inside a pool "
                            "worker; the pool owns worker-side threading "
                            "(heartbeat) — do the work inline or split items",
                            callpath=trail,
                        )
                    )
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATING_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in containers
                    and not _under_lock(sub, parents)
                ):
                    findings.append(
                        module.finding(
                            self.rule_id,
                            sub,
                            f"'{info.qualname}' mutates module-level "
                            f"container '{sub.func.value.id}' via "
                            f".{sub.func.attr}() without holding a lock",
                            callpath=trail,
                        )
                    )
        return findings

    def _check_task_init(
        self, module: ModuleSource, graph, info, trail: tuple[str, ...]
    ) -> list[Finding]:
        """Shipped task objects must not carry unpicklable state."""
        init = graph.functions.get(f"{info.module}.{info.cls}.__init__")
        if init is None:
            return []
        init_module = module if init.path == module.path else None
        if init_module is None:
            return []
        findings: list[Finding] = []
        for sub in ast.walk(init.node):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            if not isinstance(value, ast.Call):
                continue
            name = call_name(value) or ""
            hostile = (
                name == "open"
                or name.split(".")[-1] in _UNPICKLABLE_CTOR_PARTS
            )
            if not hostile:
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    findings.append(
                        init_module.finding(
                            self.rule_id,
                            sub,
                            f"task object '{info.module}.{info.cls}' stores "
                            f"'{name}(...)' on self.{target.attr}; the task "
                            "pickle shipped to workers cannot serialise it",
                            callpath=trail,
                        )
                    )
        return findings


def _dotted_or_none(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
