"""``shm-scope``: arena scope lifecycle checked on every exit path.

:class:`repro.core.shm.ShmArena` scopes are manual resources: a
``ARENA.scope(label)`` open must reach ``ARENA.release_scope(scope)``
on *every* way out of the owning function — normal return, early
return, and the exception edges every intervening call introduces — or
the segments stay pinned in ``/dev/shm`` until the orphan sweeper
happens to run.  Both shm leaks this repo has shipped were exactly this
shape: a release on the success path only.

Per function, the pass finds every scope-open bound to a local name and
walks the statements that execute after it:

- a ``try`` whose ``finally`` (or every handler) releases the scope
  makes the open safe — including conditional releases
  (``if not handed_off: release_scope(scope)``) anywhere inside the
  ``finally``;
- an ownership transfer ends local responsibility: storing the handle
  on an object (``job.scope = scope``), returning it, or passing it to
  a project callee other than the arena's own non-owning operations
  (``share``/``allocate``/``adopt``/``retain``/``subarray``/
  ``sweep_orphans``);
- any statement that can raise (a call, a subscript) before the
  release/transfer is an exception edge on which the scope leaks — the
  finding points at that statement;
- falling off the end of the function (or returning something else)
  without a release is a leak on the normal path.

Two sibling checks ride the same walk:

- **read-only views** — a name bound from ``desc.resolve()`` without
  ``writable=True`` is a read-only mapping; writing through it
  (``view[i] = ...``) dies with ``ACCESS_READ`` at runtime on some
  platforms and silently patches a shared segment on others;
- **descriptor escape** — returning a descriptor created under a
  locally-released scope hands the caller a dangling reference: the
  segment is unlinked the moment the scope closes.

The walk is statement-level and deliberately branch-conservative: an
``if`` guarded by the handle itself (``if scope is not None:``) adopts
its body's verdict, other branches must agree or the scan continues on
the fall-through path.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import CallGraphPass, Finding, ModuleSource
from repro.analysis.rules._util import call_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
#: Arena operations that *use* a scope without taking ownership of it.
_NON_OWNING_OPS = {
    "share", "allocate", "adopt", "retain", "subarray", "sweep_orphans",
    "scope", "_next_name", "_register",
}

_SAFE, _UNSAFE, _CONTINUE = "safe", "unsafe", "continue"


def _is_arena_scope_call(node: ast.AST) -> bool:
    """True for ``<...ARENA...>.scope(...)`` / ``<...arena>.scope(...)``."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None or name.split(".")[-1] != "scope":
        return False
    receiver = name.rsplit(".", 1)[0]
    return "arena" in receiver.lower()


def _scope_acquire(value: ast.AST) -> ast.AST | None:
    """The ``.scope(...)`` call in an assign value, if any (incl. IfExp)."""
    if _is_arena_scope_call(value):
        return value
    if isinstance(value, ast.IfExp):
        for branch in (value.body, value.orelse):
            if _is_arena_scope_call(branch):
                return branch
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


def _can_raise(stmt: ast.stmt) -> ast.AST | None:
    """The first raise-capable expression in *stmt*, skipping nested defs."""

    def walk(node: ast.AST) -> ast.AST | None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)):
                continue  # deferred bodies do not execute here
            if isinstance(child, (ast.Call, ast.Subscript, ast.Raise)):
                return child
            found = walk(child)
            if found is not None:
                return found
        return None

    if isinstance(stmt, (ast.Call, ast.Subscript, ast.Raise)):
        return stmt
    return walk(stmt)


class _ScopeWalk:
    """Forward walk for one acquired handle inside one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.leak_site: ast.AST | None = None

    # -- predicates ------------------------------------------------------------

    def _releases(self, node: ast.AST) -> bool:
        """Any ``release_scope(<name>)`` call in the subtree."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = call_name(sub)
            if callee is None or callee.split(".")[-1] != "release_scope":
                continue
            for arg in sub.args:
                if isinstance(arg, ast.Name) and arg.id == self.name:
                    return True
        return False

    def _escapes(self, stmt: ast.stmt) -> bool:
        """Ownership transfer: attr-store, return, or hand-off call."""
        if isinstance(stmt, ast.Assign):
            value_names = _names_in(stmt.value)
            if self.name in value_names:
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self.name in _names_in(stmt.value):
                return True
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            callee = call_name(sub)
            if callee is None:
                continue
            last = callee.split(".")[-1]
            if last in _NON_OWNING_OPS or last == "release_scope":
                continue
            in_args = any(
                isinstance(a, ast.Name) and a.id == self.name
                for a in sub.args
            ) or any(
                isinstance(kw.value, ast.Name) and kw.value.id == self.name
                for kw in sub.keywords
            )
            if in_args:
                return True
        return False

    def _guards_handle(self, test: ast.expr) -> bool:
        """``if scope is not None:``-style guard on the handle itself."""
        return self.name in _names_in(test)

    # -- statement walk --------------------------------------------------------

    def scan_block(self, stmts: list[ast.stmt], covered: bool = False) -> str:
        for stmt in stmts:
            verdict = self.scan_stmt(stmt, covered)
            if verdict in (_SAFE, _UNSAFE):
                return verdict
        return _CONTINUE

    def scan_stmt(self, stmt: ast.stmt, covered: bool = False) -> str:
        """*covered* = exception edges here land in a releasing handler."""
        if isinstance(stmt, ast.Expr) and self._releases(stmt):
            return _SAFE
        if self._escapes(stmt):
            return _SAFE
        if isinstance(stmt, ast.Try):
            if self._releases_block(stmt.finalbody):
                return _SAFE
            if stmt.handlers and all(
                self._releases_block(h.body) for h in stmt.handlers
            ):
                # exception edges inside the body are covered by the
                # handlers; the normal path continues after the try,
                # still holding the handle
                return self.scan_block(stmt.body, covered=True)
            return self.scan_block(stmt.body + stmt.finalbody, covered)
        if isinstance(stmt, ast.If):
            return self._scan_if(stmt, covered)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if not covered:
                for item in stmt.items:
                    site = _can_raise(ast.Expr(value=item.context_expr))
                    if site is not None:
                        self.leak_site = site
                        return _UNSAFE
            return self.scan_block(stmt.body, covered)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            verdict = self.scan_block(stmt.body, covered)
            if verdict == _UNSAFE:
                return _UNSAFE
            # a release inside a loop body is per-iteration, not an exit
            return _CONTINUE
        if isinstance(stmt, ast.Return):
            # returning without the handle leaks it on this exit
            self.leak_site = stmt
            return _UNSAFE
        if isinstance(stmt, ast.Raise):
            if covered:
                return _CONTINUE
            self.leak_site = stmt
            return _UNSAFE
        if not covered:
            site = _can_raise(stmt)
            if site is not None:
                self.leak_site = site
                return _UNSAFE
        return _CONTINUE

    def _releases_block(self, stmts: list[ast.stmt]) -> bool:
        return any(self._releases(stmt) for stmt in stmts)

    def _scan_if(self, stmt: ast.If, covered: bool = False) -> str:
        body = self.scan_block(stmt.body, covered)
        orelse = (
            self.scan_block(stmt.orelse, covered) if stmt.orelse else _CONTINUE
        )
        if _UNSAFE in (body, orelse):
            return _UNSAFE
        if body == _SAFE and orelse == _SAFE:
            return _SAFE
        if self._guards_handle(stmt.test) and body == _SAFE:
            # `if scope is not None: release_scope(scope)` — the
            # fall-through branch has no live handle by construction
            return _SAFE
        if not covered:
            site = _can_raise(ast.Expr(value=stmt.test))
            if site is not None:
                self.leak_site = site
                return _UNSAFE
        return _CONTINUE


class ShmScopePass(CallGraphPass):
    rule_id = "shm-scope"
    title = "arena scope not released on every exit path"

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            findings.extend(self._check_function(module, node))
        return findings

    # -- scope lifecycle -------------------------------------------------------

    def _check_function(
        self, module: ModuleSource, fn: ast.AST
    ) -> list[Finding]:
        findings: list[Finding] = []
        acquires = self._find_acquires(fn)
        for name, stmt in acquires:
            findings.extend(self._check_acquire(module, fn, name, stmt))
        findings.extend(self._check_views(module, fn))
        findings.extend(
            self._check_descriptor_escape(module, fn, [n for n, _ in acquires])
        )
        return findings

    def _find_acquires(self, fn: ast.AST) -> list[tuple[str, ast.stmt]]:
        acquires: list[tuple[str, ast.stmt]] = []
        for sub in ast.walk(fn):
            if isinstance(sub, _FUNCTION_NODES) and sub is not fn:
                continue
            if not isinstance(sub, ast.Assign):
                continue
            if _scope_acquire(sub.value) is None:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    acquires.append((target.id, sub))
        return acquires

    def _check_acquire(
        self, module: ModuleSource, fn: ast.AST, name: str, acquire: ast.stmt
    ) -> list[Finding]:
        walk = _ScopeWalk(name)
        pairs = _block_suffixes(fn, acquire)
        if pairs is None:
            return []
        # an enclosing try whose finally releases covers everything in it
        for _, container in pairs:
            if isinstance(container, ast.Try) and walk._releases_block(
                container.finalbody
            ):
                return []
        # an enclosing try whose handlers all release covers the
        # exception edges of every level nested inside it
        covering = [
            isinstance(container, ast.Try)
            and bool(container.handlers)
            and all(
                walk._releases_block(h.body) for h in container.handlers
            )
            for _, container in pairs
        ]
        verdict = _CONTINUE
        for level, (suffix, _) in enumerate(pairs):
            covered = any(covering[level + 1 :])
            verdict = walk.scan_block(suffix, covered)
            if verdict in (_SAFE, _UNSAFE):
                break
        if verdict == _SAFE:
            return []
        if verdict == _UNSAFE and walk.leak_site is not None:
            site = walk.leak_site
            detail = (
                "an exception here leaks it"
                if not isinstance(site, (ast.Return, ast.Raise))
                else "this exit leaks it"
            )
            return [
                module.finding(
                    self.rule_id,
                    site,
                    f"scope '{name}' (opened at line {acquire.lineno}) is "
                    f"not protected by a release on this path — {detail}; "
                    "wrap the open in try/finally with "
                    f"release_scope({name})",
                )
            ]
        return [
            module.finding(
                self.rule_id,
                acquire,
                f"scope '{name}' is opened but never released or handed "
                "off on the fall-through path",
            )
        ]

    # -- read-only views -------------------------------------------------------

    def _check_views(
        self, module: ModuleSource, fn: ast.AST
    ) -> list[Finding]:
        views: dict[str, int] = {}
        for sub in ast.walk(fn):
            if isinstance(sub, _FUNCTION_NODES) and sub is not fn:
                continue
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            if not isinstance(value, ast.Call):
                continue
            callee = call_name(value)
            if callee is None or callee.split(".")[-1] != "resolve":
                continue
            receiver = callee.rsplit(".", 1)[0]
            looks_like_shm = any(
                hint in receiver.lower()
                for hint in ("desc", "slot", "block", "view", "shm", "seg")
            )
            writable = any(
                kw.arg == "writable"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in value.keywords
            )
            if writable or not looks_like_shm:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    views[target.id] = sub.lineno
        if not views:
            return []
        findings: list[Finding] = []
        for sub in ast.walk(fn):
            target = None
            if isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Subscript):
                        target = tgt
            elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, ast.Subscript
            ):
                target = sub.target
            if (
                target is not None
                and isinstance(target.value, ast.Name)
                and target.value.id in views
            ):
                findings.append(
                    module.finding(
                        self.rule_id,
                        sub,
                        f"'{target.value.id}' is a read-only shm view "
                        f"(resolve() without writable=True at line "
                        f"{views[target.value.id]}); writing through it is "
                        "undefined — resolve with writable=True",
                    )
                )
        return findings

    # -- descriptor escape -----------------------------------------------------

    def _check_descriptor_escape(
        self, module: ModuleSource, fn: ast.AST, scope_names: list[str]
    ) -> list[Finding]:
        if not scope_names:
            return []
        released = set()
        descs: dict[str, str] = {}  # desc name -> scope name
        for sub in ast.walk(fn):
            if isinstance(sub, _FUNCTION_NODES) and sub is not fn:
                continue
            if isinstance(sub, ast.Call):
                callee = call_name(sub)
                last = callee.split(".")[-1] if callee else ""
                if last == "release_scope":
                    for arg in sub.args:
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in scope_names
                        ):
                            released.add(arg.id)
            if isinstance(sub, ast.Assign) and isinstance(
                sub.value, ast.Call
            ):
                callee = call_name(sub.value)
                last = callee.split(".")[-1] if callee else ""
                if last in ("share", "allocate", "subarray"):
                    used = [
                        a.id
                        for a in [*sub.value.args, *(
                            kw.value for kw in sub.value.keywords
                        )]
                        if isinstance(a, ast.Name) and a.id in scope_names
                    ]
                    if used:
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                descs[target.id] = used[0]
        if not descs or not released:
            return []
        findings: list[Finding] = []
        for sub in ast.walk(fn):
            if isinstance(sub, _FUNCTION_NODES) and sub is not fn:
                continue
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            for name in _names_in(sub.value):
                if name in descs and descs[name] in released:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            sub,
                            f"descriptor '{name}' is created under scope "
                            f"'{descs[name]}' which this function releases; "
                            "returning it hands the caller a dangling "
                            "segment reference",
                        )
                    )
        return findings


def _block_suffixes(
    fn: ast.AST, target: ast.stmt
) -> list[tuple[list[ast.stmt], ast.stmt | None]] | None:
    """Statement suffixes executing after *target*, innermost-out.

    Walks the body-block chain from the function body down to the block
    containing *target*; returns, innermost first, ``(suffix,
    container)`` pairs — the statements that follow on each level, and
    the compound statement stepped out of to reach that level (None for
    the innermost pair).  None when *target* is not found.
    """

    def search(
        stmts: list[ast.stmt],
    ) -> list[tuple[list[ast.stmt], ast.stmt | None]] | None:
        for index, stmt in enumerate(stmts):
            if stmt is target:
                return [(stmts[index + 1 :], None)]
            if isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
                continue
            for block in _child_blocks(stmt):
                found = search(block)
                if found is not None:
                    found.append((stmts[index + 1 :], stmt))
                    return found
        return None

    return search(fn.body)


def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks
