"""Whole-program analysis passes built on the project call graph.

Unlike the local rules in :mod:`repro.analysis.rules` (one function,
one file at a time), each pass here consumes the
:class:`repro.analysis.callgraph.CallGraph` the engine builds once per
run and reasons *across* modules:

========================  =================================================
pass id                   invariant
========================  =================================================
``worker-context``        functions transitively reachable from pool /
                          spawn entry points obey worker-only rules: no
                          unlocked mutation of module globals, no raw
                          ``os.fork``/``threading.Thread``, no
                          fork-hostile resource construction
``metrics-contract``      every ``counter_add``/``gauge_set``/``span``
                          string literal resolves against the declared
                          registry in :mod:`repro.obs.registry`
``shm-scope``             every ``ShmArena`` scope opened in a function
                          is released (or ownership-transferred) on all
                          exits including exception edges; resolved shm
                          views are never written without
                          ``writable=True``
========================  =================================================

The lock-order/race sanitizer is the fourth member of the suite but is
a *runtime* mode (:mod:`repro.analysis.racecheck`), not a static pass —
acquisition order is a dynamic property.

All passes share the lint engine's suppression workflow: inline
``# repro: allow(<pass-id>)`` pragmas and the committed baseline.
"""

from __future__ import annotations

from repro.analysis.engine import CallGraphPass
from repro.analysis.passes.metrics_contract import MetricsContractPass
from repro.analysis.passes.shm_scope import ShmScopePass
from repro.analysis.passes.worker_context import WorkerContextPass


def default_passes() -> list[CallGraphPass]:
    """The full callgraph-pass set, in reporting order."""
    return [
        WorkerContextPass(),
        MetricsContractPass(),
        ShmScopePass(),
    ]
