"""Project-wide correctness tooling.

Five pillars, all import-light and kernel-free:

- :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine enforcing project invariants (no runtime
  asserts, no unseeded RNG, no wall-clock reads, guarded divisions,
  frozen fp64 paths, fork-safe workers, import hygiene), runnable as
  ``python -m repro.analysis``;
- :mod:`repro.analysis.callgraph` + :mod:`repro.analysis.passes` — a
  project call graph computed once per run, feeding whole-program
  passes: worker-context reachability, the metrics/span contract, and
  shm scope lifecycle checking;
- :mod:`repro.analysis.shapes` — a symbolic shape/dtype verifier that
  propagates ``(N, C, H, W)`` specs through module graphs without
  executing kernels, validating every registered architecture and the
  feature-stack channel contract;
- :mod:`repro.analysis.sanitizer` — an opt-in runtime numerics
  sanitizer that traps NaN/Inf/denormal/overflow at the originating op
  (``FusionConfig.sanitize`` / ``--sanitize``);
- :mod:`repro.analysis.racecheck` — an opt-in runtime lock-order/race
  sanitizer (``REPRO_RACE_CHECK``) that wraps the project's locks and
  shared dicts to flag acquisition-order inversions and unlocked
  writes; the chaos-smoke CI job runs under it.
"""

from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisReport,
    CallGraphPass,
    Finding,
    ModuleSource,
    Rule,
)
from repro.analysis.racecheck import (
    RaceError,
    RaceFinding,
    install_from_env as install_racecheck_from_env,
)
from repro.analysis.sanitizer import (
    NumericsFinding,
    NumericsTrap,
    SanitizerSession,
    check_array,
)
from repro.analysis.shapes import (
    ShapeError,
    ShapeReport,
    ShapeVerifier,
    TensorSpec,
    verify_feature_contract,
    verify_model,
    verify_registry,
)

__all__ = [
    "AnalysisEngine",
    "AnalysisReport",
    "CallGraphPass",
    "Finding",
    "ModuleSource",
    "RaceError",
    "RaceFinding",
    "Rule",
    "install_racecheck_from_env",
    "NumericsFinding",
    "NumericsTrap",
    "SanitizerSession",
    "check_array",
    "ShapeError",
    "ShapeReport",
    "ShapeVerifier",
    "TensorSpec",
    "verify_feature_contract",
    "verify_model",
    "verify_registry",
]
