"""Project-wide correctness tooling.

Three pillars, all import-light and kernel-free:

- :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine enforcing project invariants (no runtime
  asserts, no unseeded RNG, no wall-clock reads, guarded divisions,
  frozen fp64 paths, fork-safe workers, import hygiene), runnable as
  ``python -m repro.analysis``;
- :mod:`repro.analysis.shapes` — a symbolic shape/dtype verifier that
  propagates ``(N, C, H, W)`` specs through module graphs without
  executing kernels, validating every registered architecture and the
  feature-stack channel contract;
- :mod:`repro.analysis.sanitizer` — an opt-in runtime numerics
  sanitizer that traps NaN/Inf/denormal/overflow at the originating op
  (``FusionConfig.sanitize`` / ``--sanitize``).
"""

from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisReport,
    Finding,
    ModuleSource,
    Rule,
)
from repro.analysis.sanitizer import (
    NumericsFinding,
    NumericsTrap,
    SanitizerSession,
    check_array,
)
from repro.analysis.shapes import (
    ShapeError,
    ShapeReport,
    ShapeVerifier,
    TensorSpec,
    verify_feature_contract,
    verify_model,
    verify_registry,
)

__all__ = [
    "AnalysisEngine",
    "AnalysisReport",
    "Finding",
    "ModuleSource",
    "Rule",
    "NumericsFinding",
    "NumericsTrap",
    "SanitizerSession",
    "check_array",
    "ShapeError",
    "ShapeReport",
    "ShapeVerifier",
    "TensorSpec",
    "verify_feature_contract",
    "verify_model",
    "verify_registry",
]
