"""AST-based lint engine with a committed-baseline workflow.

The engine walks the Python files under the configured paths, parses each
once, and hands the parse to every registered :class:`Rule`.  Rules are
project-specific invariants (see :mod:`repro.analysis.rules`): things the
test suite cannot cheaply enforce but that PRs must not regress — assert
misuse, unseeded RNG, wall-clock in deterministic paths, unguarded float
division, precision-contract breaks, fork-unsafe worker closures, dead
imports and import cycles.

Suppression mechanisms, in order of preference:

- an inline pragma ``# repro: allow(RULE_ID) — reason`` on the offending
  line, for violations that are locally, provably safe;
- the committed baseline file (``.analysis-baseline`` at the repo root),
  which grandfathers pre-existing findings by fingerprint so the CI
  ``lint`` job only fails on *new* violations.

Fingerprints hash the rule id, the file path and the offending source
line text (not the line number), so unrelated edits do not churn the
baseline.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

_PRAGMA = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s*-]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``callpath`` is the call chain that makes a context-sensitive
    finding reachable ("worker entry → A → B"); it is presentation
    metadata and deliberately excluded from the fingerprint, so a
    refactor that reroutes the path does not churn the baseline.
    """

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str  # stripped source line, used for the fingerprint
    callpath: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha1(
            f"{self.rule}:{self.path}:{self.snippet}".encode()
        ).hexdigest()[:16]
        return f"{self.rule}:{self.path}:{digest}"

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.callpath:
            text += f" [reachable via {' -> '.join(self.callpath)}]"
        return text


@dataclass
class ModuleSource:
    """One parsed file, shared across rules."""

    path: str  # repo-relative posix path
    abspath: Path
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        callpath: tuple[str, ...] = (),
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.line_text(lineno),
            callpath=callpath,
        )

    def allowed_rules(self, lineno: int) -> set[str]:
        """Rule ids suppressed by a pragma on the given line."""
        match = _PRAGMA.search(self.line_text(lineno))
        if not match:
            return set()
        return {part.strip() for part in match.group(1).split(",")}


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``title`` and implement ``check`` (per
    file) and/or ``check_project`` (whole-tree rules such as import-cycle
    detection).  ``applies_to`` filters by repo-relative path.
    """

    rule_id: str = ""
    title: str = ""

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, module: ModuleSource) -> list[Finding]:
        return []

    def check_project(self, modules: list[ModuleSource]) -> list[Finding]:
        return []


class CallGraphPass(Rule):
    """Base class for whole-program passes that need the call graph.

    The engine builds one :class:`repro.analysis.callgraph.CallGraph`
    per run (over every collected ``src/`` module) and hands the same
    instance to each registered pass via :meth:`check_graph` — the graph
    is never rebuilt per pass.  Passes are ordinary rules otherwise:
    findings flow through the same pragma/baseline filters, and the
    per-file ``check``/``check_project`` hooks stay available for any
    local component of the pass.
    """

    def check_graph(
        self, modules: list[ModuleSource], graph
    ) -> list[Finding]:
        return []


@dataclass
class AnalysisReport:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary_lines(self) -> list[str]:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"analysis: {len(self.findings)} new finding(s), "
            f"{len(self.grandfathered)} grandfathered, "
            f"{len(self.suppressed)} pragma-suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        for fingerprint in self.unused_baseline:
            lines.append(f"analysis: stale baseline entry: {fingerprint}")
        return lines


class AnalysisEngine:
    """Collects files, runs rules, and applies pragma/baseline filters."""

    def __init__(self, root: Path, rules: list[Rule] | None = None) -> None:
        from repro.analysis.rules import default_rules

        self.root = Path(root)
        self.rules = rules if rules is not None else default_rules()

    # -- file collection ----------------------------------------------------

    def collect(self, paths: list[str]) -> list[ModuleSource]:
        modules: list[ModuleSource] = []
        for entry in paths:
            base = (self.root / entry).resolve()
            if base.is_file():
                candidates = [base]
            else:
                candidates = sorted(base.rglob("*.py"))
            for candidate in candidates:
                rel = candidate.relative_to(self.root.resolve()).as_posix()
                source = candidate.read_text()
                try:
                    tree = ast.parse(source, filename=str(candidate))
                except SyntaxError as exc:
                    raise ValueError(f"cannot parse {rel}: {exc}") from exc
                modules.append(
                    ModuleSource(
                        path=rel, abspath=candidate, source=source, tree=tree
                    )
                )
        return modules

    # -- baseline -----------------------------------------------------------

    def load_baseline(self, path: Path | None) -> set[str]:
        if path is None or not path.exists():
            return set()
        entries: set[str] = set()
        for raw in path.read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                entries.add(line)
        return entries

    def write_baseline(self, path: Path, findings: list[Finding]) -> None:
        lines = [
            "# repro.analysis baseline — grandfathered findings.",
            "# Regenerate with: python -m repro.analysis --write-baseline",
        ]
        for finding in sorted(findings, key=lambda f: f.fingerprint):
            lines.append(f"{finding.fingerprint}  # {finding.format()}")
        path.write_text("\n".join(lines) + "\n")

    # -- run ----------------------------------------------------------------

    def run(
        self,
        paths: list[str],
        baseline_path: Path | None = None,
    ) -> AnalysisReport:
        modules = self.collect(paths)
        report = AnalysisReport(files_checked=len(modules))
        raw: list[Finding] = []
        graph = None
        if any(isinstance(rule, CallGraphPass) for rule in self.rules):
            from repro.analysis.callgraph import CallGraph

            graph = CallGraph.build(
                [m for m in modules if m.path.startswith("src/")]
            )
        for rule in self.rules:
            scoped = [m for m in modules if rule.applies_to(m.path)]
            for module in scoped:
                raw.extend(rule.check(module))
            raw.extend(rule.check_project(scoped))
            if isinstance(rule, CallGraphPass) and graph is not None:
                raw.extend(rule.check_graph(scoped, graph))

        baseline = self.load_baseline(baseline_path)
        seen_fingerprints: set[str] = set()
        by_path = {m.path: m for m in modules}
        for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
            module = by_path.get(finding.path)
            allowed = (
                module.allowed_rules(finding.line) if module else set()
            )
            if finding.rule in allowed or "*" in allowed:
                report.suppressed.append(finding)
            elif finding.fingerprint in baseline:
                seen_fingerprints.add(finding.fingerprint)
                report.grandfathered.append(finding)
            else:
                report.findings.append(finding)
        report.unused_baseline = sorted(baseline - seen_fingerprints)
        return report
