"""Opt-in numerics sanitizer: trap NaN/Inf at the op that produced them.

A NaN born in one conv kernel surfaces as an all-NaN prediction map many
layers later, long after the useful stack frame is gone.  The sanitizer
closes that gap in two pieces:

- :func:`check_array` — inspect a single array for NaN, Inf, denormals
  and fp32-overflow risk, returning structured findings;
- :class:`SanitizerSession` — a context manager that instruments every
  *leaf* module of a model, checking each forward (and optionally
  backward) output as it is produced, so the first finding names the
  originating op by its parameter path (e.g.
  ``model.bottleneck.modules.0.forward``).

Instrumentation works by shadowing the bound ``forward``/``backward``
with instance attributes; ``Module.__call__`` resolves through the
instance, so no class is mutated and ``__exit__`` restores the model
exactly.  The whole machinery is opt-in (``FusionConfig.sanitize`` /
``--sanitize``): the default path pays zero overhead.

Two severities: NaN and Inf abort in ``on_finding="raise"`` mode via
:class:`NumericsTrap` (training wants to stop at the first poisoned
batch); denormals and fp32-overflow risk are always only recorded —
they signal precision trouble, not corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module

#: Finding kinds that abort execution in ``raise`` mode.
TRAP_KINDS = ("nan", "inf")
#: Finding kinds that are always recorded, never raised.
WARN_KINDS = ("denormal", "fp32-overflow-risk")

_F32_MAX = float(np.finfo(np.float32).max)


@dataclass(frozen=True)
class NumericsFinding:
    """One pathological value population inside one array at one op."""

    op: str  # dotted path of the producing op, e.g. "model.head.forward"
    kind: str  # "nan" | "inf" | "denormal" | "fp32-overflow-risk"
    count: int  # elements affected
    total: int  # elements inspected
    first_index: tuple[int, ...]  # index of the first affected element
    example: float  # value at first_index (NaN for the nan kind)

    def summary(self) -> str:
        return (
            f"{self.kind}: {self.count}/{self.total} element(s) at {self.op}, "
            f"first at index {self.first_index} (value {self.example!r})"
        )

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "first_index": list(self.first_index),
            "example": repr(self.example),
        }


class NumericsTrap(FloatingPointError):
    """Raised by the sanitizer when a trap-severity finding appears."""

    def __init__(self, finding: NumericsFinding) -> None:
        super().__init__(finding.summary())
        self.finding = finding


def _finding_from_mask(
    arr: np.ndarray, mask: np.ndarray, op: str, kind: str
) -> NumericsFinding | None:
    count = int(np.count_nonzero(mask))
    if count == 0:
        return None
    flat = int(np.flatnonzero(mask)[0])
    first = tuple(int(i) for i in np.unravel_index(flat, arr.shape))
    return NumericsFinding(
        op=op,
        kind=kind,
        count=count,
        total=int(arr.size),
        first_index=first,
        example=float(arr[first]) if arr.ndim else float(arr),
    )


def check_array(
    values: np.ndarray,
    op: str,
    *,
    check_denormals: bool = True,
) -> list[NumericsFinding]:
    """Inspect one array; returns findings ordered most severe first."""
    arr = np.asarray(values)
    if arr.size == 0 or not np.issubdtype(arr.dtype, np.floating):
        return []
    findings: list[NumericsFinding] = []
    nan_mask = np.isnan(arr)
    finding = _finding_from_mask(arr, nan_mask, op, "nan")
    if finding is not None:
        findings.append(finding)
    finding = _finding_from_mask(arr, np.isinf(arr), op, "inf")
    if finding is not None:
        findings.append(finding)
    if check_denormals:
        tiny = np.finfo(arr.dtype).tiny
        denormal = (arr != 0.0) & (np.abs(arr) < tiny)
        finding = _finding_from_mask(arr, denormal, op, "denormal")
        if finding is not None:
            findings.append(finding)
    if arr.dtype == np.float64:
        risk = np.isfinite(arr) & (np.abs(arr) > _F32_MAX)
        finding = _finding_from_mask(arr, risk, op, "fp32-overflow-risk")
        if finding is not None:
            findings.append(finding)
    return findings


def named_leaf_modules(
    module: Module, prefix: str = "model"
) -> list[tuple[str, Module]]:
    """(dotted path, module) for every childless module in the tree."""
    leaves: list[tuple[str, Module]] = []
    children: list[tuple[str, Module]] = []
    from repro.nn.module import _collect_named

    for attr, value in module.__dict__.items():
        for sub_path, leaf in _collect_named(value, attr):
            if isinstance(leaf, Module):
                children.append((f"{prefix}.{sub_path}", leaf))
    if not children:
        return [(prefix, module)]
    for path, child in children:
        leaves.extend(named_leaf_modules(child, path))
    return leaves


class SanitizerSession:
    """Instrument a model's leaf ops for the duration of a ``with`` block.

    ``on_finding="record"`` collects findings (deduplicated per
    ``(op, kind)``) into :attr:`findings`; ``on_finding="raise"`` turns
    the first NaN/Inf into a :class:`NumericsTrap` naming the op.
    """

    def __init__(
        self,
        model: Module,
        *,
        name: str = "model",
        on_finding: str = "record",
        check_backward: bool = True,
        check_denormals: bool = True,
    ) -> None:
        if on_finding not in ("record", "raise"):
            raise ValueError(
                f"on_finding must be 'record' or 'raise', got {on_finding!r}"
            )
        self.model = model
        self.name = name
        self.on_finding = on_finding
        self.check_backward = check_backward
        self.check_denormals = check_denormals
        self.findings: list[NumericsFinding] = []
        self._seen: set[tuple[str, str]] = set()
        self._instrumented: list[Module] = []

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "SanitizerSession":
        for path, module in named_leaf_modules(self.model, self.name):
            self._instrument(module, path)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for module in self._instrumented:
            module.__dict__.pop("forward", None)
            module.__dict__.pop("backward", None)
        self._instrumented.clear()

    # -- instrumentation ----------------------------------------------------

    def _instrument(self, module: Module, path: str) -> None:
        forward = module.forward

        def checked_forward(*args, **kwargs):
            out = forward(*args, **kwargs)
            self._inspect(out, f"{path}.forward")
            return out

        module.forward = checked_forward
        if self.check_backward:
            backward = module.backward

            def checked_backward(*args, **kwargs):
                out = backward(*args, **kwargs)
                self._inspect(out, f"{path}.backward")
                return out

            module.backward = checked_backward
        self._instrumented.append(module)

    def _inspect(self, value, op: str) -> None:
        if isinstance(value, (tuple, list)):
            for i, item in enumerate(value):
                self._inspect(item, f"{op}[{i}]")
            return
        if not isinstance(value, np.ndarray):
            return
        for finding in check_array(
            value, op, check_denormals=self.check_denormals
        ):
            self.record(finding)

    def record(self, finding: NumericsFinding) -> None:
        """Route one finding through the session policy."""
        if self.on_finding == "raise" and finding.kind in TRAP_KINDS:
            raise NumericsTrap(finding)
        key = (finding.op, finding.kind)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)
