"""Command-line entry: ``python -m repro.analysis``.

Runs the project static checks over ``src/`` and ``tests/``:

- the fast local lint rules (``--rules local``);
- the whole-program callgraph passes — worker-context reachability,
  metrics/span contract, shm scope lifecycle (``--rules callgraph``);
- both tiers by default (``--rules all``);
- and — unless ``--no-models`` — the symbolic shape verification of
  every registered model architecture and the feature-stack channel
  contract (no kernels execute).

``--strict`` makes new findings (anything not grandfathered by the
baseline or pragma-suppressed) exit non-zero; the CI lint jobs run it.
``--write-baseline`` regenerates the committed baseline from the
current findings and is mutually exclusive with ``--strict`` — a CI
run must never be able to silently re-grandfather its own findings.

The run is timed through a ``repro.obs`` span (``analysis``, or
``analysis.callgraph`` when only the callgraph tier runs);
``--budget-seconds`` turns that measurement into a hard failure so the
CI job notices when the passes outgrow their time box.

``--json`` emits a machine-readable report; schema (documented in
``docs/static_analysis.md``)::

    {
      "version": 1,
      "rules": "local" | "callgraph" | "all",
      "findings": [
        {
          "rule": str,          # rule/pass id, e.g. "worker-context"
          "path": str,          # repo-relative posix path
          "line": int, "col": int,
          "message": str,
          "fingerprint": str,   # baseline key (rule:path:hash)
          "callpath": [str, ...]  # entry -> ... -> enclosing function;
                                  # [] for local rules
        }, ...
      ],
      "model_errors": [str, ...],
      "grandfathered": int, "suppressed": int,
      "files_checked": int,
      "duration_seconds": float
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import AnalysisEngine
from repro.analysis.shapes import (
    ShapeError,
    verify_feature_contract,
    verify_registry,
)


def _verify_models(verbose: bool = True) -> list[str]:
    """Shape-check every registered model + feature contract; return errors."""
    errors: list[str] = []
    try:
        reports = verify_registry()
    except ShapeError as exc:
        errors.append(f"model graph verification failed: {exc}")
    else:
        if verbose:
            for model_name, report in sorted(reports.items()):
                print(
                    f"analysis: verified {model_name}: "
                    f"{report.input.describe()} -> {report.output.describe()}"
                )
    try:
        verify_feature_contract()
    except ShapeError as exc:
        errors.append(f"feature contract verification failed: {exc}")
    return errors


def _select_rules(tier: str):
    from repro.analysis.passes import default_passes
    from repro.analysis.rules import default_rules, local_rules

    if tier == "local":
        return local_rules()
    if tier == "callgraph":
        return default_passes()
    return default_rules()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project static checker: lint rules, callgraph passes, "
            "model graph verifier."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/.analysis-baseline)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any new finding (CI mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "grandfather all current findings into the baseline file "
            "(mutually exclusive with --strict)"
        ),
    )
    parser.add_argument(
        "--rules",
        choices=["local", "callgraph", "all"],
        default="all",
        help=(
            "rule tier: fast single-file rules, whole-program callgraph "
            "passes, or both (default: all)"
        ),
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "fail when the analysis span exceeds this wall-time budget "
            "(CI time-box for the callgraph tier)"
        ),
    )
    parser.add_argument(
        "--no-models",
        action="store_true",
        help="skip the model-graph/feature-contract verification",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as JSON instead of text (schema in docstring)",
    )
    args = parser.parse_args(argv)

    if args.write_baseline and args.strict:
        parser.error(
            "--write-baseline and --strict are mutually exclusive: "
            "a strict run enforces the committed baseline, it must not "
            "rewrite it (run --write-baseline separately, then commit "
            "the result)"
        )

    root = args.root.resolve()
    baseline = args.baseline or root / ".analysis-baseline"
    engine = AnalysisEngine(root, rules=_select_rules(args.rules))

    if args.write_baseline:
        report = engine.run(args.paths, baseline_path=None)
        engine.write_baseline(baseline, report.findings)
        print(
            f"analysis: wrote {len(report.findings)} fingerprint(s) to "
            f"{baseline}"
        )
        return 0

    from repro.obs import span

    span_name = "analysis.callgraph" if args.rules == "callgraph" else "analysis"
    with span(span_name, rules=args.rules) as timing:
        report = engine.run(args.paths, baseline_path=baseline)
    duration = timing.duration

    model_errors: list[str] = []
    if not args.no_models:
        model_errors = _verify_models(verbose=not args.as_json)

    over_budget = (
        args.budget_seconds is not None and duration > args.budget_seconds
    )

    if args.as_json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "rules": args.rules,
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "message": f.message,
                            "fingerprint": f.fingerprint,
                            "callpath": list(f.callpath),
                        }
                        for f in report.findings
                    ],
                    "model_errors": model_errors,
                    "grandfathered": len(report.grandfathered),
                    "suppressed": len(report.suppressed),
                    "files_checked": report.files_checked,
                    "duration_seconds": duration,
                }
            )
        )
    else:
        for line in report.summary_lines():
            print(line)
        for error in model_errors:
            print(f"analysis: {error}")
        print(
            f"analysis: {span_name} span {duration:.2f}s"
            + (
                f" (budget {args.budget_seconds:.2f}s)"
                if args.budget_seconds is not None
                else ""
            )
        )
    if over_budget:
        print(
            f"analysis: FAILED time budget: {duration:.2f}s > "
            f"{args.budget_seconds:.2f}s",
            file=sys.stderr,
        )
        return 1

    failed = bool(model_errors) or not report.ok
    if args.strict and failed:
        return 1
    if model_errors:  # broken model graphs fail even in lenient mode
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
