"""Command-line entry: ``python -m repro.analysis``.

Runs the project lint rules over ``src/`` and ``tests/`` and — unless
``--no-models`` — statically verifies every registered model
architecture and the feature-stack channel contract with the symbolic
shape checker (no kernels execute).

``--strict`` makes new findings (anything not grandfathered by the
baseline or pragma-suppressed) exit non-zero; it is what the CI ``lint``
job runs.  ``--write-baseline`` regenerates the committed baseline from
the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import AnalysisEngine
from repro.analysis.shapes import (
    ShapeError,
    verify_feature_contract,
    verify_registry,
)


def _verify_models(verbose: bool = True) -> list[str]:
    """Shape-check every registered model + feature contract; return errors."""
    errors: list[str] = []
    try:
        reports = verify_registry()
    except ShapeError as exc:
        errors.append(f"model graph verification failed: {exc}")
    else:
        if verbose:
            for model_name, report in sorted(reports.items()):
                print(
                    f"analysis: verified {model_name}: "
                    f"{report.input.describe()} -> {report.output.describe()}"
                )
    try:
        verify_feature_contract()
    except ShapeError as exc:
        errors.append(f"feature contract verification failed: {exc}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project static checker: lint rules + model graph verifier.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/.analysis-baseline)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any new finding (CI mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline file",
    )
    parser.add_argument(
        "--no-models",
        action="store_true",
        help="skip the model-graph/feature-contract verification",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as JSON instead of text",
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    baseline = args.baseline or root / ".analysis-baseline"
    engine = AnalysisEngine(root)

    if args.write_baseline:
        report = engine.run(args.paths, baseline_path=None)
        engine.write_baseline(baseline, report.findings)
        print(
            f"analysis: wrote {len(report.findings)} fingerprint(s) to "
            f"{baseline}"
        )
        return 0

    report = engine.run(args.paths, baseline_path=baseline)

    model_errors: list[str] = []
    if not args.no_models:
        model_errors = _verify_models(verbose=not args.as_json)

    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "message": f.message,
                            "fingerprint": f.fingerprint,
                        }
                        for f in report.findings
                    ],
                    "model_errors": model_errors,
                    "grandfathered": len(report.grandfathered),
                    "suppressed": len(report.suppressed),
                    "files_checked": report.files_checked,
                }
            )
        )
    else:
        for line in report.summary_lines():
            print(line)
        for error in model_errors:
            print(f"analysis: {error}")

    failed = bool(model_errors) or not report.ok
    if args.strict and failed:
        return 1
    if model_errors:  # broken model graphs fail even in lenient mode
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
