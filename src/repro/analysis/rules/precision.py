"""``fp64-narrowing``: frozen fp64 kernel paths must stay fp64.

``repro.nn`` keeps a strict precision contract: when an activation
arrives as float64 the whole kernel branch computes in float64 (these
branches are pinned by golden-value tests).  Casting to float32 inside
such a branch — ``x.astype(np.float32)``, ``np.float32(...)``, or a
``dtype=np.float32`` keyword — silently breaks the contract while the
tests still pass on the fp32 path.

The rule is lexical: it flags narrowing constructs inside the *body*
(not the ``else``) of any ``if`` whose test compares a dtype against
``np.float64``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import call_name, dotted_name

_FP64 = {"np.float64", "numpy.float64"}
_FP32 = {"np.float32", "numpy.float32"}


def _names_fp32(node: ast.AST) -> bool:
    return dotted_name(node) in _FP32 or (
        isinstance(node, ast.Constant) and node.value == "float32"
    )


def _is_fp64_guard(test: ast.AST) -> bool:
    """Does the test contain ``... == np.float64``?"""
    for sub in ast.walk(test):
        if not isinstance(sub, ast.Compare):
            continue
        if not any(isinstance(op, ast.Eq) for op in sub.ops):
            continue
        operands = [sub.left, *sub.comparators]
        if any(dotted_name(operand) in _FP64 for operand in operands):
            return True
    return False


class Fp64NarrowingRule(Rule):
    rule_id = "fp64-narrowing"
    title = "float32 narrowing inside a frozen fp64 kernel branch"

    def applies_to(self, path: str) -> bool:
        return path.endswith(("nn/functional.py", "nn/layers.py"))

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If) or not _is_fp64_guard(node.test):
                continue
            for stmt in node.body:
                findings.extend(self._narrowings(module, stmt))
        return findings

    def _narrowings(
        self, module: ModuleSource, stmt: ast.stmt
    ) -> list[Finding]:
        findings: list[Finding] = []
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                name = call_name(sub)
                if name in _FP32:
                    findings.append(self._finding(module, sub, "np.float32()"))
                    continue
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "astype"
                    and sub.args
                    and _names_fp32(sub.args[0])
                ):
                    findings.append(
                        self._finding(module, sub, ".astype(np.float32)")
                    )
                    continue
                for keyword in sub.keywords:
                    if keyword.arg == "dtype" and _names_fp32(keyword.value):
                        findings.append(
                            self._finding(module, sub, "dtype=np.float32")
                        )
                        break
        return findings

    def _finding(
        self, module: ModuleSource, node: ast.AST, construct: str
    ) -> Finding:
        return module.finding(
            self.rule_id,
            node,
            f"{construct} inside an `if dtype == np.float64` branch narrows "
            "a frozen fp64 kernel path; keep the fp64 branch pure or move "
            "the cast outside the guard",
        )
