"""``wall-clock``: no wall-clock reads in deterministic library paths.

``time.time()`` / ``datetime.now()`` make results depend on when the run
happened — poison for golden files, caches keyed on content, and
bitwise-reproducibility claims.  Interval measurement belongs to the
observability layer: :mod:`repro.obs` owns the monotonic primitive
(``repro.obs.monotonic``) and the span API built on it, so raw
``time.perf_counter()`` / ``time.monotonic()`` calls anywhere outside
``src/repro/obs/`` are findings too — scattered private stopwatches are
exactly what the span layer replaced.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import call_name

_FORBIDDEN = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "time.ctime": "time.ctime() reads the wall clock",
    "datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.today": "datetime.today() reads the wall clock",
}

#: Monotonic primitives only :mod:`repro.obs` may call directly; all
#: other code times intervals through spans or ``repro.obs.monotonic``.
_OBS_ONLY = {
    "time.perf_counter": "time.perf_counter() bypasses the obs layer",
    "time.perf_counter_ns": "time.perf_counter_ns() bypasses the obs layer",
    "time.monotonic": "time.monotonic() bypasses the obs layer",
    "time.monotonic_ns": "time.monotonic_ns() bypasses the obs layer",
}

#: The one package allowed to own timing primitives.
_OBS_PREFIX = "src/repro/obs/"


class WallClockRule(Rule):
    rule_id = "wall-clock"
    title = "clock read outside the observability layer"

    def check(self, module: ModuleSource) -> list[Finding]:
        in_obs = module.path.startswith(_OBS_PREFIX)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _FORBIDDEN:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"{_FORBIDDEN[name]}; time intervals with "
                        "repro.obs spans or pass timestamps in explicitly",
                    )
                )
            elif name in _OBS_ONLY and not in_obs:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"{_OBS_ONLY[name]}; use repro.obs.span()/"
                        "monotonic() so the trace and the numbers agree",
                    )
                )
        return findings
