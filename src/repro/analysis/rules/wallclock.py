"""``wall-clock``: no wall-clock reads in deterministic library paths.

``time.time()`` / ``datetime.now()`` make results depend on when the run
happened — poison for golden files, caches keyed on content, and
bitwise-reproducibility claims.  Interval measurement must use
``time.perf_counter()`` (monotonic, and only ever reported, never used
as data).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import call_name

_FORBIDDEN = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "time.ctime": "time.ctime() reads the wall clock",
    "datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.today": "datetime.today() reads the wall clock",
}


class WallClockRule(Rule):
    rule_id = "wall-clock"
    title = "wall-clock read in a deterministic path"

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _FORBIDDEN:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"{_FORBIDDEN[name]}; use time.perf_counter() for "
                        "intervals or pass timestamps in explicitly",
                    )
                )
        return findings
