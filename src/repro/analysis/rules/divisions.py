"""``unguarded-division``: float divisions in feature/smoother code need
an epsilon or ``np.errstate`` guard.

Feature extractors and smoothers consume raw (possibly degenerate)
netlist data: zero currents, zero resistances, empty pixel spans.  A bare
``a / b`` turns those into inf/NaN that poisons a feature channel or a
smoother sweep many stages later.  A division counts as guarded when any
of the following holds:

- it executes inside a ``with np.errstate(...)`` block;
- the denominator expression (or, for a plain name, every assignment to
  it in the enclosing function) contains a clamping construct —
  ``max`` / ``np.maximum`` / ``np.fmax`` / ``np.clip`` / ``np.where``,
  a ``finfo``-style ``.tiny`` / ``.eps`` floor, or a ``+ <positive
  constant>`` offset;
- the denominator is a nonzero literal;
- the division sits in a conditional expression whose test compares the
  operands (the ``x / d if d > eps else 0.0`` idiom).

Locally-safe divisions the analysis cannot prove may carry an inline
``# repro: allow(unguarded-division) — reason`` pragma.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import build_parent_map, call_name

_GUARD_CALLS = {
    "max",
    "np.maximum", "numpy.maximum",
    "np.fmax", "numpy.fmax",
    "np.clip", "numpy.clip",
    "np.where", "numpy.where",
}
_GUARD_ATTRS = {"tiny", "eps", "smallest_normal"}
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_positive_constant(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and node.value > 0
    )


def _expr_guarded(expr: ast.AST) -> bool:
    """Does the expression itself bound its value away from zero?"""
    if _is_positive_constant(expr):
        return True
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call) and call_name(sub) in _GUARD_CALLS:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _GUARD_ATTRS:
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
            if _is_positive_constant(sub.left) or _is_positive_constant(
                sub.right
            ):
                return True
    return False


class UnguardedDivisionRule(Rule):
    rule_id = "unguarded-division"
    title = "float division without an epsilon/np.errstate guard"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/features/") or path.endswith(
            "solvers/smoothers.py"
        )

    def check(self, module: ModuleSource) -> list[Finding]:
        parents = build_parent_map(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                denominator = node.right
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                denominator = node.value
            else:
                continue
            if self._guarded(node, denominator, parents):
                continue
            findings.append(
                module.finding(
                    self.rule_id,
                    node,
                    "division without an epsilon/np.errstate guard; clamp "
                    "the denominator (np.maximum/max/+eps) or wrap the "
                    "division in `with np.errstate(...)`",
                )
            )
        return findings

    # -- guard detection ----------------------------------------------------

    def _guarded(
        self,
        node: ast.AST,
        denominator: ast.AST,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        if _expr_guarded(denominator):
            return True
        if isinstance(denominator, ast.Name) and self._name_guarded(
            denominator.id, node, parents
        ):
            return True
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.IfExp) and isinstance(
                current.test, (ast.Compare, ast.BoolOp)
            ):
                return True
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    call = item.context_expr
                    if isinstance(call, ast.Call):
                        name = call_name(call) or ""
                        if name.endswith("errstate"):
                            return True
            if isinstance(current, ast.stmt) and not isinstance(
                current, (ast.With, ast.AsyncWith)
            ):
                # keep climbing: guards can wrap several statements up
                pass
            current = parents.get(current)
        return False

    def _name_guarded(
        self,
        name: str,
        node: ast.AST,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        """Every assignment to *name* in the enclosing scope is guarded."""
        scope: ast.AST | None = parents.get(node)
        while scope is not None and not isinstance(
            scope, _FUNCTION_NODES + (ast.Module,)
        ):
            scope = parents.get(scope)
        if scope is None:
            return False
        values: list[ast.AST] = []
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        values.append(sub.value)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name) and sub.target.id == name:
                    values.append(sub.value)
            elif isinstance(sub, (ast.AugAssign, ast.For)):
                target = sub.target
                if isinstance(target, ast.Name) and target.id == name:
                    return False  # mutated/iterated: cannot prove a bound
        return bool(values) and all(_expr_guarded(v) for v in values)
