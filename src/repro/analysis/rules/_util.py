"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call target, e.g. ``np.random.default_rng``."""
    return dotted_name(node.func)


def iter_parents(tree: ast.AST):
    """Yield ``(parent, child)`` pairs for the whole tree."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            yield parent, child


def build_parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent map (identity keyed)."""
    return {child: parent for parent, child in iter_parents(tree)}


def enclosing(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    kinds: tuple[type, ...],
) -> ast.AST | None:
    """Nearest ancestor of one of *kinds*, or None."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, kinds):
            return current
        current = parents.get(current)
    return None
