"""``dead-import`` / ``import-cycle``: module hygiene rules.

``dead-import`` flags module-level imports whose bound name is never
used in the rest of the file.  Dead imports hide real dependencies and
rot into import cycles; ``__init__.py`` files (re-export surface),
``__future__`` imports, underscore aliases, and names re-exported via
``__all__`` are exempt.

``import-cycle`` builds the module-level import graph over ``repro.*``
and reports every strongly connected component with more than one
module.  Only module-level imports participate: a deferred
function-level import is the sanctioned way to break a cycle (e.g. the
trainer deferring ``repro.core.batch``), so those edges are excluded.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Finding, ModuleSource, Rule


def _module_level_imports(tree: ast.AST):
    """Yield the Import/ImportFrom statements directly under the module."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node


def _dunder_all_names(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    names.add(sub.value)
    return names


class DeadImportRule(Rule):
    rule_id = "dead-import"
    title = "module-level import that is never used"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/") and not path.endswith("__init__.py")

    def check(self, module: ModuleSource) -> list[Finding]:
        exported = _dunder_all_names(module.tree)
        findings: list[Finding] = []
        for node in _module_level_imports(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                if bound.startswith("_") or bound in exported:
                    continue
                if not self._used(module, node, bound):
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"'{bound}' is imported but never used; remove "
                            "the import (or re-export it via __all__)",
                        )
                    )
        return findings

    def _used(
        self, module: ModuleSource, node: ast.AST, name: str
    ) -> bool:
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        total = len(pattern.findall(module.source))
        start = getattr(node, "lineno", 1)
        end = getattr(node, "end_lineno", start) or start
        on_import = sum(
            len(pattern.findall(module.lines[i - 1]))
            for i in range(start, end + 1)
            if i <= len(module.lines)
        )
        return total - on_import > 0


def _path_to_module(path: str) -> str | None:
    """``src/repro/a/b.py`` -> ``repro.a.b``; __init__ maps to the package."""
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    dotted = path[len("src/"):-len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


class ImportCycleRule(Rule):
    rule_id = "import-cycle"
    title = "module-level import cycle inside repro.*"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check_project(self, modules: list[ModuleSource]) -> list[Finding]:
        by_name: dict[str, ModuleSource] = {}
        for module in modules:
            name = _path_to_module(module.path)
            if name is not None:
                by_name[name] = module

        edges: dict[str, set[str]] = {name: set() for name in by_name}
        edge_nodes: dict[tuple[str, str], ast.AST] = {}
        for name, module in by_name.items():
            package = (
                name
                if module.path.endswith("__init__.py")
                else name.rsplit(".", 1)[0]
            )
            for node in _module_level_imports(module.tree):
                for target in self._targets(node, package):
                    resolved = self._resolve(target, by_name)
                    if resolved is not None and resolved != name:
                        edges[name].add(resolved)
                        edge_nodes.setdefault((name, resolved), node)

        findings: list[Finding] = []
        for component in _tarjan_sccs(edges):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            anchor = ordered[0]
            member = next(m for m in edges[anchor] if m in component)
            node = edge_nodes[(anchor, member)]
            findings.append(
                by_name[anchor].finding(
                    self.rule_id,
                    node,
                    "module-level import cycle: "
                    + " -> ".join(ordered + [ordered[0]])
                    + "; defer one import into the function that needs it",
                )
            )
        return findings

    def _targets(self, node: ast.AST, package: str) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".")
                base_parts = parts[: len(parts) - node.level + 1]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base:
                return []
            return [f"{base}.{alias.name}" for alias in node.names] + [base]
        return []

    def _resolve(
        self, target: str, by_name: dict[str, ModuleSource]
    ) -> str | None:
        """Longest known-module prefix of a dotted import target."""
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in by_name:
                return candidate
        return None


def _tarjan_sccs(edges: dict[str, set[str]]) -> list[set[str]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)

    for name in sorted(edges):
        if name not in index:
            strongconnect(name)
    return sccs
