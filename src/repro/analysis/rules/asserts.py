"""``runtime-assert``: no ``assert`` for runtime validation in library code.

``assert`` statements vanish under ``python -O``, so a solver or model
that relies on them for input/state validation silently accepts corrupt
data in optimised runs.  Library code must raise ``ValueError`` /
``RuntimeError`` / ``SolverFailure`` instead; ``tests/`` (where asserts
are the point) is exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule


class RuntimeAssertRule(Rule):
    rule_id = "runtime-assert"
    title = "assert used for runtime validation in library code"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        "assert is stripped under python -O; raise "
                        "ValueError/RuntimeError for runtime validation",
                    )
                )
        return findings
