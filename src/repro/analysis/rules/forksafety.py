"""``fork-unsafe-closure``: no fork-hostile state in ``parallel_map`` workers.

``repro.core.batch.parallel_map`` ships worker callables to a process
pool.  Two patterns break there:

- a ``lambda`` worker — it drags the whole enclosing frame along and is
  not picklable under the spawn start method;
- a nested worker function whose free variables are bound to
  per-process resources (open file handles, ``threading``/
  ``multiprocessing`` locks, ``Workspace`` scratch buffers) in the
  enclosing scope — those objects are either unpicklable or silently
  duplicated per child.

Module-level functions, ``functools.partial`` over them, and bound
methods are fine: their state is explicit arguments, not captured frame.

A third pattern is legal but wasteful: a worker that reads a **large
module-level ndarray** by name.  Under spawn every worker re-creates the
array at import (a private copy per process), and under fork the pages
stay copy-on-write only until the first touch — either way the data
bypasses the zero-copy shared-memory plane (:mod:`repro.core.shm`) that
arrays passed *through the pool* ride automatically.  Such workers are
flagged: pass the array per-item or through the task object instead.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import build_parent_map, call_name, enclosing

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_UNSAFE_LAST_PARTS = {
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event", "Condition",
    "Workspace",
}
#: Pool entry points whose first argument ships to worker processes.
_POOL_ENTRY_POINTS = {"parallel_map", "parallel_map_ex"}
#: numpy constructors whose module-level results are whole data arrays
#: (as opposed to small constants) when read from a pool worker.
_NDARRAY_FACTORIES = {
    "zeros", "ones", "empty", "full", "array", "load", "loadtxt",
    "frombuffer", "arange", "linspace",
}


def _is_ndarray_binding(value: ast.AST) -> str | None:
    """If *value* builds an ndarray via a numpy factory, say which."""
    if not isinstance(value, ast.Call):
        return None
    name = call_name(value)
    if name is None:
        return None
    parts = name.split(".")
    if (
        len(parts) >= 2
        and parts[0] in ("np", "numpy")
        and parts[-1] in _NDARRAY_FACTORIES
    ):
        return name
    return None


def _is_unsafe_binding(value: ast.AST) -> str | None:
    """If *value* constructs fork-hostile state, say what it is."""
    if not isinstance(value, ast.Call):
        return None
    name = call_name(value)
    if name is None:
        return None
    if name == "open":
        return "an open file handle"
    last = name.split(".")[-1]
    if last in _UNSAFE_LAST_PARTS:
        return f"a {last} object"
    return None


def _free_names(fn: ast.AST) -> set[str]:
    """Names loaded in *fn* that it neither binds nor receives."""
    bound: set[str] = set()
    args = fn.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ):
        bound.add(arg.arg)
    loaded: set[str] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, ast.Load):
                loaded.add(sub.id)
            else:
                bound.add(sub.id)
        elif isinstance(sub, _FUNCTION_NODES + (ast.ClassDef,)) and sub is not fn:
            bound.add(sub.name)
    return loaded - bound


class ForkUnsafeClosureRule(Rule):
    rule_id = "fork-unsafe-closure"
    title = "fork-unsafe state captured by a parallel_map worker"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, module: ModuleSource) -> list[Finding]:
        parents = build_parent_map(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] not in _POOL_ENTRY_POINTS:
                continue
            if not node.args:
                continue
            entry = name.split(".")[-1]
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                findings.append(
                    module.finding(
                        self.rule_id,
                        worker,
                        f"lambda passed to {entry} captures the "
                        "enclosing frame and is not picklable under spawn; "
                        "use a module-level function or functools.partial",
                    )
                )
                continue
            if isinstance(worker, ast.Name):
                findings.extend(
                    self._check_nested_worker(module, node, worker, parents)
                )
                findings.extend(
                    self._check_module_arrays(module, worker)
                )
        return findings

    def _check_module_arrays(
        self, module: ModuleSource, worker: ast.Name
    ) -> list[Finding]:
        """Flag workers reading module-level ndarrays by name.

        The array never travels through the pool's payload, so the
        shared-memory transport cannot externalise it — every worker
        process materialises a private copy instead.
        """
        worker_def = next(
            (
                sub
                for sub in ast.walk(module.tree)
                if isinstance(sub, _FUNCTION_NODES) and sub.name == worker.id
            ),
            None,
        )
        if worker_def is None:
            return []
        free = _free_names(worker_def)
        findings: list[Finding] = []
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Name) and target.id in free):
                    continue
                what = _is_ndarray_binding(stmt.value)
                if what is not None:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            worker_def,
                            f"worker '{worker_def.name}' reads module-level "
                            f"ndarray '{target.id}' ({what}(...)) by value; "
                            "every pool worker materialises a private copy "
                            "that bypasses the shared-memory transport — "
                            "pass it per-item or via the task object",
                        )
                    )
        return findings

    def _check_nested_worker(
        self,
        module: ModuleSource,
        call: ast.Call,
        worker: ast.Name,
        parents: dict[ast.AST, ast.AST],
    ) -> list[Finding]:
        scope = enclosing(call, parents, _FUNCTION_NODES)
        if scope is None:
            return []
        worker_def = next(
            (
                sub
                for sub in ast.walk(scope)
                if isinstance(sub, _FUNCTION_NODES) and sub.name == worker.id
            ),
            None,
        )
        if worker_def is None:
            return []
        free = _free_names(worker_def)
        findings: list[Finding] = []
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if not (isinstance(target, ast.Name) and target.id in free):
                    continue
                what = _is_unsafe_binding(sub.value)
                if what is not None:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            worker_def,
                            f"worker '{worker_def.name}' closes over "
                            f"'{target.id}' ({what}); pass it per-item or "
                            "construct it inside the worker",
                        )
                    )
        return findings
