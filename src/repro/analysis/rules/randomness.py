"""``unseeded-rng``: no unseeded numpy randomness outside ``nn/init.py``.

Reproducibility hinges on every stochastic choice flowing from an
explicit seed (or the shared construction RNG that ``nn/init.py`` owns).
``np.random.default_rng()`` with no seed and the legacy module-global
``np.random.*`` functions both draw irreproducible state.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleSource, Rule
from repro.analysis.rules._util import call_name

#: Legacy module-global RNG entry points (stateful, process-global).
_GLOBAL_STATE_FNS = {
    "random", "rand", "randn", "randint", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "standard_normal",
    "seed", "get_state", "set_state",
}


class UnseededRngRule(Rule):
    rule_id = "unseeded-rng"
    title = "unseeded or process-global numpy randomness"

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/") and not path.endswith("nn/init.py")

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) < 3 or parts[-2] != "random" or parts[0] not in (
                "np", "numpy"
            ):
                continue
            fn = parts[-1]
            if fn in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"np.random.{fn}() without a seed is "
                            "irreproducible; pass a seed or use the shared "
                            "construction RNG from repro.nn.init",
                        )
                    )
            elif fn in _GLOBAL_STATE_FNS:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"np.random.{fn} uses the process-global legacy "
                        "RNG; use a seeded np.random.Generator instead",
                    )
                )
        return findings
