"""Project-specific lint rules (the fast, local tier).

Each rule encodes one invariant the runtime introduced in earlier PRs,
checkable one file at a time:

========================  =================================================
rule id                   invariant
========================  =================================================
``runtime-assert``        no ``assert`` for runtime validation in library
                          code (stripped under ``python -O``)
``unseeded-rng``          no unseeded ``np.random`` use outside the shared
                          construction RNG in ``nn/init.py``
``wall-clock``            no ``time.time()``/``datetime.now()`` in
                          deterministic paths, and no raw monotonic
                          reads (``perf_counter``/``monotonic``) outside
                          ``repro.obs`` — the observability layer owns
                          the timing primitive
``unguarded-division``    no float division without an epsilon or
                          ``np.errstate`` guard in ``features/`` and
                          ``solvers/smoothers.py``
``fp64-narrowing``        no float32 casts inside the frozen fp64 kernel
                          branches of ``nn/functional.py``/``nn/layers.py``
``fork-unsafe-closure``   no fork-unsafe state captured by
                          ``parallel_map`` worker closures
``dead-import``           no module-level import that is never used
``import-cycle``          no module-level import cycles inside ``repro``
========================  =================================================

The whole-program tier — ``worker-context``, ``metrics-contract`` and
``shm-scope``, built on the shared project call graph — lives in
:mod:`repro.analysis.passes`; :func:`default_rules` returns both tiers
so ``python -m repro.analysis`` runs everything by default
(``--rules local``/``--rules callgraph`` selects one tier).
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.asserts import RuntimeAssertRule
from repro.analysis.rules.divisions import UnguardedDivisionRule
from repro.analysis.rules.forksafety import ForkUnsafeClosureRule
from repro.analysis.rules.imports import DeadImportRule, ImportCycleRule
from repro.analysis.rules.precision import Fp64NarrowingRule
from repro.analysis.rules.randomness import UnseededRngRule
from repro.analysis.rules.wallclock import WallClockRule


def local_rules() -> list[Rule]:
    """The fast single-file rules, in reporting order."""
    return [
        RuntimeAssertRule(),
        UnseededRngRule(),
        WallClockRule(),
        UnguardedDivisionRule(),
        Fp64NarrowingRule(),
        ForkUnsafeClosureRule(),
        DeadImportRule(),
        ImportCycleRule(),
    ]


def default_rules() -> list[Rule]:
    """Both tiers — local rules plus the callgraph passes."""
    from repro.analysis.passes import default_passes

    return [*local_rules(), *default_passes()]
