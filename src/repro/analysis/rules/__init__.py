"""Project-specific lint rules.

Each rule encodes one invariant the runtime introduced in earlier PRs:

========================  =================================================
rule id                   invariant
========================  =================================================
``runtime-assert``        no ``assert`` for runtime validation in library
                          code (stripped under ``python -O``)
``unseeded-rng``          no unseeded ``np.random`` use outside the shared
                          construction RNG in ``nn/init.py``
``wall-clock``            no ``time.time()``/``datetime.now()`` in
                          deterministic paths, and no raw monotonic
                          reads (``perf_counter``/``monotonic``) outside
                          ``repro.obs`` — the observability layer owns
                          the timing primitive
``unguarded-division``    no float division without an epsilon or
                          ``np.errstate`` guard in ``features/`` and
                          ``solvers/smoothers.py``
``fp64-narrowing``        no float32 casts inside the frozen fp64 kernel
                          branches of ``nn/functional.py``/``nn/layers.py``
``fork-unsafe-closure``   no fork-unsafe state captured by
                          ``parallel_map`` worker closures
``dead-import``           no module-level import that is never used
``import-cycle``          no module-level import cycles inside ``repro``
========================  =================================================
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.asserts import RuntimeAssertRule
from repro.analysis.rules.divisions import UnguardedDivisionRule
from repro.analysis.rules.forksafety import ForkUnsafeClosureRule
from repro.analysis.rules.imports import DeadImportRule, ImportCycleRule
from repro.analysis.rules.precision import Fp64NarrowingRule
from repro.analysis.rules.randomness import UnseededRngRule
from repro.analysis.rules.wallclock import WallClockRule


def default_rules() -> list[Rule]:
    """The full rule set, in reporting order."""
    return [
        RuntimeAssertRule(),
        UnseededRngRule(),
        WallClockRule(),
        UnguardedDivisionRule(),
        Fp64NarrowingRule(),
        ForkUnsafeClosureRule(),
        DeadImportRule(),
        ImportCycleRule(),
    ]
