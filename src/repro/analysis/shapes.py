"""Symbolic shape/dtype verifier for :mod:`repro.nn` module graphs.

Propagates a symbolic ``(N, C, H, W)`` tensor description through a
:class:`~repro.nn.module.Module` tree **without executing any kernels**:
each layer family has a structural handler that checks channel plumbing,
spatial arithmetic (padding/stride/pool divisibility) and the precision
contract (every ``Parameter.compute`` dtype must match the activation
dtype), then emits the output description.  A mistake that would
otherwise surface as a broadcast error deep inside ``im2col`` instead
fails here with a readable module path, e.g.::

    IRFusionNet.decoders.0.modules.0: Conv2d expects 12ch input, got 16ch
    (skip concat = 8ch gated skip + 8ch upsampled decoder signal)

Covered: Conv2d / FusedConvBiasReLU / ConvTranspose2d, BatchNorm2d, the
activations, max/avg/global pooling, nearest upsampling, Sequential /
Residual, CBAM (channel + spatial attention), attention gates, all three
Inception blocks, and the model-level topologies (FlexUNet and friends,
IRPnet's pyramid, MAVIREC's depth-shared stem, MAUnet's multiscale
blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.attention import (
    CBAM,
    AttentionGate,
    ChannelAttention,
    SpatialAttention,
)
from repro.nn.containers import Residual, Sequential
from repro.nn.functional import conv_output_shape
from repro.nn.inception import _MultiBranch
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    FusedConvBiasReLU,
    GlobalAvgPool,
    GlobalMaxPool,
    Identity,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    UpsampleNearest,
)
from repro.nn.module import Module, Parameter


class ShapeError(ValueError):
    """A static shape, channel or dtype contract violation."""


@dataclass(frozen=True)
class TensorSpec:
    """Symbolic activation description: channels, spatial dims, dtype.

    The batch dimension is fully symbolic (every covered op is
    batch-preserving), so only ``(C, H, W)`` and the dtype are tracked.
    """

    channels: int
    height: int
    width: int
    dtype: np.dtype

    def with_(self, **kw) -> "TensorSpec":
        values = {
            "channels": self.channels,
            "height": self.height,
            "width": self.width,
            "dtype": self.dtype,
        }
        values.update(kw)
        return TensorSpec(**values)

    def describe(self) -> str:
        return f"{self.channels}ch {self.height}x{self.width} {self.dtype}"


@dataclass
class ShapeReport:
    """Result of one verification pass."""

    model: str
    input: TensorSpec
    output: TensorSpec
    warnings: list[str] = field(default_factory=list)


class ShapeVerifier:
    """Walks a module tree, propagating a :class:`TensorSpec`.

    Parameters
    ----------
    strict:
        Raise on module types without a handler.  When False, unknown
        modules are assumed shape-preserving and a warning is recorded
        (useful when user-registered architectures mix in custom blocks).
    check_dtype:
        Enforce that every parameter's compute dtype equals the
        activation dtype (the fp32-compute/fp64-master contract).
    """

    def __init__(self, strict: bool = True, check_dtype: bool = True) -> None:
        self.strict = strict
        self.check_dtype = check_dtype
        self.warnings: list[str] = []

    # -- dispatch -----------------------------------------------------------

    def verify(self, module: Module, spec: TensorSpec, path: str) -> TensorSpec:
        """Infer the output spec of *module* applied to *spec*."""
        # Model-level topologies first (they subclass Module directly but
        # need structural walks), then leaf/container layer families.
        for kind, handler in _HANDLERS:
            if isinstance(module, kind):
                return handler(self, module, spec, path)
        if self.strict:
            raise ShapeError(
                f"{path}: no shape handler for {type(module).__name__}; "
                "register one or verify with strict=False"
            )
        self.warnings.append(
            f"{path}: assuming {type(module).__name__} is shape-preserving"
        )
        return spec

    # -- shared checks ------------------------------------------------------

    def check_parameter(self, param: Parameter | None, spec: TensorSpec,
                        path: str, name: str) -> None:
        if param is None or not self.check_dtype:
            return
        if param.compute_dtype != spec.dtype:
            raise ShapeError(
                f"{path}: parameter {name!r} computes in "
                f"{param.compute_dtype} but the activation dtype is "
                f"{spec.dtype} — the kernel would silently promote "
                "(precision-contract break)"
            )

    def require_channels(self, spec: TensorSpec, expected: int, path: str,
                         what: str) -> None:
        if spec.channels != expected:
            raise ShapeError(
                f"{path}: {what} expects {expected}ch input, "
                f"got {spec.channels}ch"
            )


# ---------------------------------------------------------------------------
# Layer handlers
# ---------------------------------------------------------------------------


def _passthrough(v: ShapeVerifier, m: Module, spec: TensorSpec,
                 path: str) -> TensorSpec:
    return spec


def _conv2d(v: ShapeVerifier, m, spec: TensorSpec, path: str) -> TensorSpec:
    out_c, in_c, kh, kw = m.weight.shape
    v.require_channels(spec, in_c, path, type(m).__name__)
    v.check_parameter(m.weight, spec, path, "weight")
    v.check_parameter(m.bias, spec, path, "bias")
    try:
        oh, ow = conv_output_shape(
            (spec.height, spec.width), m.kernel, m.stride, m.padding
        )
    except ValueError as exc:
        raise ShapeError(f"{path}: {exc}") from None
    return spec.with_(channels=out_c, height=oh, width=ow)


def _conv_transpose2d(v: ShapeVerifier, m: ConvTranspose2d, spec: TensorSpec,
                      path: str) -> TensorSpec:
    in_c = m.weight.shape[0]
    v.require_channels(spec, in_c, path, "ConvTranspose2d")
    v.check_parameter(m.weight, spec, path, "weight")
    v.check_parameter(m.bias, spec, path, "bias")
    oh, ow = m._output_hw((spec.height, spec.width))
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"{path}: ConvTranspose2d emits non-positive output {oh}x{ow} "
            f"for input {spec.height}x{spec.width}"
        )
    return spec.with_(channels=m.out_channels, height=oh, width=ow)


def _batchnorm2d(v: ShapeVerifier, m: BatchNorm2d, spec: TensorSpec,
                 path: str) -> TensorSpec:
    expected = m.gamma.shape[0]
    v.require_channels(spec, expected, path, "BatchNorm2d")
    v.check_parameter(m.gamma, spec, path, "gamma")
    v.check_parameter(m.beta, spec, path, "beta")
    return spec


def _maxpool2d(v: ShapeVerifier, m: MaxPool2d, spec: TensorSpec,
               path: str) -> TensorSpec:
    kh, kw = m.kernel
    if spec.height % kh or spec.width % kw:
        raise ShapeError(
            f"{path}: MaxPool2d kernel {kh}x{kw} does not divide input "
            f"{spec.height}x{spec.width}"
        )
    return spec.with_(height=spec.height // kh, width=spec.width // kw)


def _avgpool2d(v: ShapeVerifier, m: AvgPool2d, spec: TensorSpec,
               path: str) -> TensorSpec:
    try:
        oh, ow = conv_output_shape(
            (spec.height, spec.width), m.kernel, m.stride, m.padding
        )
    except ValueError as exc:
        raise ShapeError(f"{path}: {exc}") from None
    return spec.with_(height=oh, width=ow)


def _globalpool(v: ShapeVerifier, m: Module, spec: TensorSpec,
                path: str) -> TensorSpec:
    return spec.with_(height=1, width=1)


def _upsample(v: ShapeVerifier, m: UpsampleNearest, spec: TensorSpec,
              path: str) -> TensorSpec:
    return spec.with_(height=spec.height * m.factor,
                      width=spec.width * m.factor)


def _sequential(v: ShapeVerifier, m: Sequential, spec: TensorSpec,
                path: str) -> TensorSpec:
    for i, child in enumerate(m.modules):
        spec = v.verify(child, spec, f"{path}.modules.{i}")
    return spec


def _residual(v: ShapeVerifier, m: Residual, spec: TensorSpec,
              path: str) -> TensorSpec:
    out = v.verify(m.body, spec, f"{path}.body")
    if (out.channels, out.height, out.width) != (
        spec.channels, spec.height, spec.width
    ):
        raise ShapeError(
            f"{path}: residual add needs body output to match its input; "
            f"body emits {out.describe()} for input {spec.describe()}"
        )
    return spec


def _multibranch(v: ShapeVerifier, m: _MultiBranch, spec: TensorSpec,
                 path: str) -> TensorSpec:
    outputs = [
        v.verify(branch, spec, f"{path}.branches.{i}")
        for i, branch in enumerate(m.branches)
    ]
    first = outputs[0]
    for i, out in enumerate(outputs[1:], start=1):
        if (out.height, out.width) != (first.height, first.width):
            raise ShapeError(
                f"{path}: branch {i} emits {out.height}x{out.width} but "
                f"branch 0 emits {first.height}x{first.width}; concat "
                "needs matching spatial dims"
            )
    total = sum(out.channels for out in outputs)
    return spec.with_(channels=total, height=first.height, width=first.width)


def _channel_attention(v: ShapeVerifier, m: ChannelAttention, spec: TensorSpec,
                       path: str) -> TensorSpec:
    expected = m.w1.shape[1]
    v.require_channels(spec, expected, path, "ChannelAttention")
    for name in ("w1", "b1", "w2", "b2"):
        v.check_parameter(getattr(m, name), spec, path, name)
    if m.w2.shape[0] != expected:
        raise ShapeError(
            f"{path}: ChannelAttention MLP emits {m.w2.shape[0]}ch scales "
            f"for {expected}ch input"
        )
    return spec


def _spatial_attention(v: ShapeVerifier, m: SpatialAttention, spec: TensorSpec,
                       path: str) -> TensorSpec:
    descriptor = spec.with_(channels=2)
    gate = v.verify(m.conv, descriptor, f"{path}.conv")
    if (gate.height, gate.width) != (spec.height, spec.width):
        raise ShapeError(
            f"{path}: spatial gate is {gate.height}x{gate.width} but the "
            f"input is {spec.height}x{spec.width}; the 'same'-padded conv "
            "must preserve spatial dims"
        )
    if gate.channels != 1:
        raise ShapeError(
            f"{path}: spatial gate must be single-channel, "
            f"got {gate.channels}ch"
        )
    return spec


def _cbam(v: ShapeVerifier, m: CBAM, spec: TensorSpec,
          path: str) -> TensorSpec:
    spec = v.verify(m.channel, spec, f"{path}.channel")
    return v.verify(m.spatial, spec, f"{path}.spatial")


def verify_attention_gate(v: ShapeVerifier, gate: AttentionGate,
                          skip: TensorSpec, signal: TensorSpec,
                          path: str) -> TensorSpec:
    """Two-input handler for the attention gate: ``gate(skip, signal)``."""
    if (skip.height, skip.width) != (signal.height, signal.width):
        raise ShapeError(
            f"{path}: skip is {skip.height}x{skip.width} but the gating "
            f"signal is {signal.height}x{signal.width}; the attention gate "
            "needs matching spatial dims"
        )
    theta = v.verify(gate.theta_x, skip, f"{path}.theta_x")
    phi = v.verify(gate.phi_g, signal, f"{path}.phi_g")
    if theta.channels != phi.channels:
        raise ShapeError(
            f"{path}: theta_x emits {theta.channels}ch but phi_g emits "
            f"{phi.channels}ch; the gate sums them elementwise"
        )
    psi = v.verify(gate.psi, theta, f"{path}.psi")
    if psi.channels != 1:
        raise ShapeError(
            f"{path}: psi must emit a single-channel gate, "
            f"got {psi.channels}ch"
        )
    return skip  # x * sigmoid(psi): skip channels/extent preserved


# ---------------------------------------------------------------------------
# Model-level handlers
# ---------------------------------------------------------------------------


def _flex_unet(v: ShapeVerifier, m, spec: TensorSpec, path: str) -> TensorSpec:
    factor = 2**m.depth
    if spec.height % factor or spec.width % factor:
        raise ShapeError(
            f"{path}: input {spec.height}x{spec.width} must be divisible "
            f"by 2**depth = {factor}"
        )
    skips: list[TensorSpec] = []
    x = spec
    for i, (encoder, pool) in enumerate(zip(m.encoders, m.pools)):
        x = v.verify(encoder, x, f"{path}.encoders.{i}")
        skips.append(x)
        x = v.verify(pool, x, f"{path}.pools.{i}")
    x = v.verify(m.bottleneck, x, f"{path}.bottleneck")
    for stage in range(m.depth):
        scale = m.depth - 1 - stage
        x = v.verify(m.ups[stage], x, f"{path}.ups.{stage}")
        skip = skips[scale]
        gate = m.gates[stage]
        if gate is not None:
            skip = verify_attention_gate(
                v, gate, skip, x, f"{path}.gates.{stage}"
            )
        if (skip.height, skip.width) != (x.height, x.width):
            raise ShapeError(
                f"{path}.decoders.{stage}: cannot concat skip "
                f"{skip.height}x{skip.width} with decoder signal "
                f"{x.height}x{x.width}"
            )
        cat = x.with_(channels=skip.channels + x.channels)
        try:
            x = v.verify(m.decoders[stage], cat, f"{path}.decoders.{stage}")
        except ShapeError as exc:
            raise ShapeError(
                f"{exc} (skip concat = {skip.channels}ch "
                f"{'gated ' if gate is not None else ''}skip + "
                f"{x.channels}ch upsampled decoder signal)"
            ) from None
        post = m.posts[stage]
        if post is not None:
            x = v.verify(post, x, f"{path}.posts.{stage}")
    return v.verify(m.head, x, f"{path}.head")


def _irpnet(v: ShapeVerifier, m, spec: TensorSpec, path: str) -> TensorSpec:
    factor = 2**m.depth
    if spec.height % factor or spec.width % factor:
        raise ShapeError(
            f"{path}: input {spec.height}x{spec.width} must be divisible "
            f"by 2**depth = {factor}"
        )
    x = spec
    fused: TensorSpec | None = None
    for scale in range(m.depth + 1):
        x = v.verify(m.encoders[scale], x, f"{path}.encoders.{scale}")
        lateral = v.verify(m.laterals[scale], x, f"{path}.laterals.{scale}")
        contribution = v.verify(
            m.upsamplers[scale], lateral, f"{path}.upsamplers.{scale}"
        )
        if fused is None:
            fused = contribution
        elif (contribution.channels, contribution.height,
              contribution.width) != (fused.channels, fused.height,
                                      fused.width):
            raise ShapeError(
                f"{path}.upsamplers.{scale}: pyramid contribution "
                f"{contribution.describe()} cannot be summed with the "
                f"fused map {fused.describe()}"
            )
        if scale < m.depth:
            x = v.verify(m.pools[scale], x, f"{path}.pools.{scale}")
    if fused is None:  # depth >= 1 is enforced at construction
        raise ShapeError(f"{path}: pyramid produced no scale contributions")
    return v.verify(m.head, fused, f"{path}.head")


def _mavirec(v: ShapeVerifier, m, spec: TensorSpec, path: str) -> TensorSpec:
    x = v.verify(m.stem_spatial, spec, f"{path}.stem_spatial")
    x = v.verify(m.stem_mix, x, f"{path}.stem_mix")
    return v.verify(m.body, x, f"{path}.body")


def _depth_shared_conv(v: ShapeVerifier, m, spec: TensorSpec,
                       path: str) -> TensorSpec:
    v.check_parameter(m.weight, spec, path, "weight")
    v.check_parameter(m.bias, spec, path, "bias")
    try:
        oh, ow = conv_output_shape(
            (spec.height, spec.width), m.kernel, (1, 1), m.padding
        )
    except ValueError as exc:
        raise ShapeError(f"{path}: {exc}") from None
    if (oh, ow) != (spec.height, spec.width):
        raise ShapeError(
            f"{path}: depth-shared stem must preserve spatial dims; "
            f"emits {oh}x{ow} for {spec.height}x{spec.width}"
        )
    return spec


def _multiscale_block(v: ShapeVerifier, m, spec: TensorSpec,
                      path: str) -> TensorSpec:
    b3 = v.verify(m.branch3, spec, f"{path}.branch3")
    b5 = v.verify(m.branch5, spec, f"{path}.branch5")
    shortcut = v.verify(m.shortcut, spec, f"{path}.shortcut")
    merged = b3.channels + b5.channels
    if merged != shortcut.channels:
        raise ShapeError(
            f"{path}: multiscale concat emits {merged}ch "
            f"({b3.channels}+{b5.channels}) but the residual shortcut "
            f"emits {shortcut.channels}ch"
        )
    if (b3.height, b3.width) != (b5.height, b5.width) or (
        b3.height, b3.width
    ) != (shortcut.height, shortcut.width):
        raise ShapeError(
            f"{path}: branch outputs disagree spatially: 3x3 "
            f"{b3.height}x{b3.width}, 5x5 {b5.height}x{b5.width}, "
            f"shortcut {shortcut.height}x{shortcut.width}"
        )
    return shortcut


def _build_handlers():
    """Most-specific-first (type, handler) dispatch table."""
    from repro.models.irpnet import IRPnet
    from repro.models.maunet import MultiScaleBlock
    from repro.models.mavirec import MAVIREC, DepthSharedConv
    from repro.models.unet_blocks import FlexUNet

    return (
        # model topologies (FlexUNet covers its subclasses)
        (IRPnet, _irpnet),
        (MAVIREC, _mavirec),
        (FlexUNet, _flex_unet),
        (MultiScaleBlock, _multiscale_block),
        (DepthSharedConv, _depth_shared_conv),
        # attention
        (CBAM, _cbam),
        (ChannelAttention, _channel_attention),
        (SpatialAttention, _spatial_attention),
        # multi-branch / containers
        (_MultiBranch, _multibranch),
        (Residual, _residual),
        (Sequential, _sequential),
        # leaf layers
        (Conv2d, _conv2d),
        (FusedConvBiasReLU, _conv2d),
        (ConvTranspose2d, _conv_transpose2d),
        (BatchNorm2d, _batchnorm2d),
        (MaxPool2d, _maxpool2d),
        (AvgPool2d, _avgpool2d),
        (GlobalAvgPool, _globalpool),
        (GlobalMaxPool, _globalpool),
        (UpsampleNearest, _upsample),
        (ReLU, _passthrough),
        (LeakyReLU, _passthrough),
        (Sigmoid, _passthrough),
        (Tanh, _passthrough),
        (Identity, _passthrough),
    )


_HANDLERS = _build_handlers()


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def verify_model(
    model: Module,
    in_channels: int,
    hw: tuple[int, int],
    dtype=np.float64,
    strict: bool = True,
    check_dtype: bool = True,
    name: str | None = None,
) -> ShapeReport:
    """Statically validate *model* for an ``(N, in_channels, H, W)`` input.

    Raises :class:`ShapeError` with a readable module path on the first
    channel/spatial/dtype contract violation; no kernel is executed.
    """
    label = name or type(model).__name__
    verifier = ShapeVerifier(strict=strict, check_dtype=check_dtype)
    spec = TensorSpec(
        channels=in_channels, height=hw[0], width=hw[1], dtype=np.dtype(dtype)
    )
    out = verifier.verify(model, spec, label)
    return ShapeReport(
        model=label, input=spec, output=out, warnings=verifier.warnings
    )


def verify_registry(
    in_channels: int = 6,
    hw: tuple[int, int] = (32, 32),
    base_channels: int = 6,
    depth: int = 3,
    dtype=np.float64,
) -> dict[str, ShapeReport]:
    """Verify every registered architecture; raises on the first failure."""
    from repro.models.registry import MODEL_REGISTRY, create_model

    reports: dict[str, ShapeReport] = {}
    for model_name in sorted(MODEL_REGISTRY):
        model = create_model(
            model_name,
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            seed=0,
        )
        reports[model_name] = verify_model(
            model, in_channels, hw, dtype=dtype, name=model_name
        )
    return reports


def verify_feature_contract() -> None:
    """Check :func:`repro.features.fusion.channel_names`'s width contract.

    The model's ``in_channels`` is derived from this list, so its length
    must follow the documented formula for every config/layer-count
    combination and its entries must be unique.
    """
    from repro.features.fusion import FeatureConfig, channel_names

    for hierarchical in (True, False):
        for use_numerical in (True, False):
            for layers in ([1], [1, 2], [1, 2, 3], [1, 2, 3, 4]):
                config = FeatureConfig(
                    use_numerical=use_numerical, hierarchical=hierarchical
                )
                names = channel_names(config, layers)
                if hierarchical:
                    expected = (len(layers) if use_numerical else 0) + len(
                        layers
                    ) + 4
                else:
                    expected = (1 if use_numerical else 0) + 3
                if len(names) != expected:
                    raise ShapeError(
                        "features.fusion.channel_names: "
                        f"{len(names)} channels for hierarchical="
                        f"{hierarchical} use_numerical={use_numerical} "
                        f"layers={layers}, expected {expected}"
                    )
                if len(set(names)) != len(names):
                    raise ShapeError(
                        "features.fusion.channel_names: duplicate channel "
                        f"names in {names}"
                    )
