"""Human-readable module summaries.

``summarize(model)`` prints the module tree with per-node parameter
counts — the quick sanity check for architecture experiments.
"""

from __future__ import annotations

from repro.nn.module import Module, _collect_named


def _tree_lines(module: Module, name: str, depth: int) -> list[str]:
    indent = "  " * depth
    own = sum(
        leaf.size
        for attr, value in module.__dict__.items()
        for _, leaf in _collect_named(value, attr)
        if not isinstance(leaf, Module)
    )
    total = module.num_parameters()
    lines = [
        f"{indent}{name}: {type(module).__name__} "
        f"(params: {total:,}{f', own: {own:,}' if own and own != total else ''})"
    ]
    for attr, value in module.__dict__.items():
        for sub_path, leaf in _collect_named(value, attr):
            if isinstance(leaf, Module):
                lines.extend(_tree_lines(leaf, sub_path, depth + 1))
    return lines


def summarize(module: Module, name: str = "model", max_lines: int = 200) -> str:
    """The module tree as indented text (truncated past *max_lines*)."""
    lines = _tree_lines(module, name, 0)
    if len(lines) > max_lines:
        hidden = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... ({hidden} more modules)"]
    return "\n".join(lines)


def parameter_table(module: Module) -> str:
    """One line per parameter: path, shape, size."""
    rows = [f"{'path':<50s} {'shape':>18s} {'size':>10s}"]
    rows.append("-" * len(rows[0]))
    total = 0
    for path, parameter in module.named_parameters():
        shape = "x".join(str(d) for d in parameter.shape) or "scalar"
        rows.append(f"{path:<50s} {shape:>18s} {parameter.size:>10,d}")
        total += parameter.size
    rows.append("-" * len(rows[0]))
    rows.append(f"{'total':<50s} {'':>18s} {total:>10,d}")
    return "\n".join(rows)
