"""Composite module containers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules: forward in order, backward in reverse."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output


def fuse_conv_relu(module: Module) -> int:
    """Fuse adjacent ``(Conv2d, ReLU)`` pairs inside Sequential chains.

    Walks the module tree and replaces each eligible pair with a
    :class:`~repro.nn.layers.FusedConvBiasReLU` (sharing the conv's
    Parameter objects) followed by an :class:`~repro.nn.layers.Identity`
    placeholder, so state-dict paths, parameter ordering and optimizer
    slots are all unchanged.  Only exact ``Conv2d``/``ReLU`` instances
    are fused (subclasses may override forward/backward).  Returns the
    number of pairs fused.  Numerically the fused kernel computes the
    same conv + bias + ReLU, so outputs and gradients are unchanged.
    """
    from repro.nn.layers import Conv2d, FusedConvBiasReLU, Identity, ReLU

    fused = 0
    if isinstance(module, Sequential):
        mods = module.modules
        for i in range(len(mods) - 1):
            if type(mods[i]) is Conv2d and type(mods[i + 1]) is ReLU:
                mods[i] = FusedConvBiasReLU(mods[i])
                mods[i + 1] = Identity()
                fused += 1
    for child in module.children():
        fused += fuse_conv_relu(child)
    return fused


class Residual(Module):
    """``y = x + body(x)``; channel counts of x and body(x) must match."""

    def __init__(self, body: Module) -> None:
        super().__init__()
        self.body = body

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        if out.shape != x.shape:
            raise ValueError(
                f"residual shape mismatch: body {out.shape} vs input {x.shape}"
            )
        return x + out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.body.backward(grad_output)
