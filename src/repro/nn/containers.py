"""Composite module containers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules: forward in order, backward in reverse."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output


class Residual(Module):
    """``y = x + body(x)``; channel counts of x and body(x) must match."""

    def __init__(self, body: Module) -> None:
        super().__init__()
        self.body = body

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        if out.shape != x.shape:
            raise ValueError(
                f"residual shape mismatch: body {out.shape} vs input {x.shape}"
            )
        return x + out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.body.backward(grad_output)
