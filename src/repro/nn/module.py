"""Parameter and Module base classes.

A :class:`Module` owns :class:`Parameter` leaves and/or child modules as
plain attributes; discovery walks ``__dict__`` (lists and dicts of modules
included).  There is no autodiff tape: each module caches its forward
inputs and implements an explicit ``backward`` that consumes the gradient
of the loss w.r.t. its output and returns the gradient w.r.t. its input,
accumulating parameter gradients along the way.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Precision contract: ``data`` is always the float64 **master** copy —
    it is what optimisers update, what ``state_dict`` saves and what
    checkpoints restore.  ``compute`` is what forward/backward kernels
    read: identical to ``data`` in the default fp64 mode (zero overhead,
    bitwise-neutral), or a cached lower-precision cast after
    :meth:`set_compute_dtype`.  Gradients always accumulate in float64
    regardless of the compute dtype.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self._compute_dtype = np.float64
        self._compute_cache: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def compute_dtype(self) -> np.dtype:
        return np.dtype(self._compute_dtype)

    @property
    def compute(self) -> np.ndarray:
        """The tensor kernels should read: master data, or its cached cast."""
        if self._compute_dtype == np.float64:
            return self.data
        if self._compute_cache is None:
            self._compute_cache = self.data.astype(self._compute_dtype)
        return self._compute_cache

    def set_compute_dtype(self, dtype) -> None:
        """Switch the compute precision; the master copy stays float64."""
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported compute dtype: {dtype}")
        self._compute_dtype = dtype.type
        self._compute_cache = None

    def sync_compute(self) -> None:
        """Refresh the compute cast after the master copy changed."""
        self._compute_cache = None

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses with non-trainable state that must survive checkpointing
    (e.g. BatchNorm running statistics) declare the attribute names in
    ``buffer_names``; buffers are then included in ``state_dict``.
    """

    buffer_names: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training = True

    # -- forward / backward ---------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> np.ndarray:
        return self.forward(*args, **kwargs)

    # -- parameter / child discovery -------------------------------------------

    def children(self) -> list["Module"]:
        """Direct child modules, in attribute insertion order."""
        found: list[Module] = []
        for value in self.__dict__.values():
            found.extend(_collect(value, Module))
        return found

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its descendants."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            params.extend(_collect(value, Parameter))
        for child in self.children():
            params.extend(child.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- compute precision -------------------------------------------------------

    def set_compute_dtype(self, dtype) -> "Module":
        """Set the compute precision of every parameter in the tree.

        Master weights stay float64; kernels reading ``Parameter.compute``
        see the requested dtype.  fp64 restores the zero-overhead default.
        """
        for parameter in self.parameters():
            parameter.set_compute_dtype(dtype)
        return self

    def workspaces(self) -> list:
        """Every :class:`~repro.nn.functional.Workspace` in the module tree."""
        from repro.nn.functional import Workspace

        found: list = []
        for value in self.__dict__.values():
            if isinstance(value, Workspace):
                found.append(value)
        for child in self.children():
            found.extend(child.workspaces())
        return found

    # -- train / eval -----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm/Dropout)."""
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict ----------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """(path, parameter) pairs; paths follow attribute/index structure."""
        named: list[tuple[str, Parameter]] = []
        for attr, value in self.__dict__.items():
            for sub_path, leaf in _collect_named(value, attr):
                if isinstance(leaf, Parameter):
                    named.append((f"{prefix}{sub_path}", leaf))
                elif isinstance(leaf, Module):
                    named.extend(leaf.named_parameters(prefix=f"{prefix}{sub_path}."))
        return named

    def named_buffers(self, prefix: str = "") -> list[tuple[str, "Module", str]]:
        """(path, owner module, attribute) triples for every buffer."""
        named: list[tuple[str, Module, str]] = []
        for attr in self.buffer_names:
            named.append((f"{prefix}{attr}", self, attr))
        for attr, value in self.__dict__.items():
            for sub_path, leaf in _collect_named(value, attr):
                if isinstance(leaf, Module):
                    named.extend(leaf.named_buffers(prefix=f"{prefix}{sub_path}."))
        return named

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter and buffer keyed by its path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, owner, attr in self.named_buffers():
            state[name] = np.array(getattr(owner, attr), dtype=np.float64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers; keys and shapes must match exactly."""
        named = dict(self.named_parameters())
        buffers = {name: (owner, attr) for name, owner, attr in self.named_buffers()}
        expected = set(named) | set(buffers)
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)[:5]}, "
                f"unexpected={sorted(unexpected)[:5]}"
            )
        for name, parameter in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs "
                    f"{parameter.data.shape}"
                )
            parameter.data = value.copy()
            parameter.grad = np.zeros_like(parameter.data)
            parameter.sync_compute()
        for name, (owner, attr) in buffers.items():
            current = np.asarray(getattr(owner, attr))
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != current.shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: {value.shape} vs "
                    f"{current.shape}"
                )
            setattr(owner, attr, value.copy())


def _collect(value, kind) -> list:
    """Instances of *kind* directly inside an attribute value."""
    if isinstance(value, kind):
        return [value]
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            if isinstance(item, kind):
                out.append(item)
        return out
    if isinstance(value, dict):
        return [item for item in value.values() if isinstance(item, kind)]
    return []


def _collect_named(value, path: str) -> list[tuple[str, object]]:
    """(path, leaf) pairs for Parameters/Modules inside an attribute value."""
    if isinstance(value, (Parameter, Module)):
        return [(path, value)]
    if isinstance(value, (list, tuple)):
        out = []
        for i, item in enumerate(value):
            if isinstance(item, (Parameter, Module)):
                out.append((f"{path}.{i}", item))
        return out
    if isinstance(value, dict):
        out = []
        for key, item in value.items():
            if isinstance(item, (Parameter, Module)):
                out.append((f"{path}.{key}", item))
        return out
    return []
