"""Loss functions.

All losses expose ``forward(prediction, target) -> float`` and
``backward() -> grad`` (gradient of the mean loss w.r.t. the prediction).
:class:`WeightedHotspotLoss` emphasises the >90 %-of-max region that the
contest F1 metric scores; :class:`KirchhoffLoss` is the physics-constraint
regulariser IRPnet adds (discrete current conservation on the predicted
voltage-drop field).
"""

from __future__ import annotations

import numpy as np


class _Loss:
    """Shared cache/plumbing for losses."""

    def __init__(self) -> None:
        self._cache: dict | None = None

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)

    def _check(self, prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction {prediction.shape} vs target {target.shape}"
            )

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError


class MSELoss(_Loss):
    """Mean squared error."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._check(prediction, target)
        diff = prediction - target
        self._cache = {"diff": diff}
        return float(np.mean(diff**2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff = self._cache["diff"]
        return 2.0 * diff / diff.size


class MAELoss(_Loss):
    """Mean absolute error (the contest's headline metric as a loss)."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._check(prediction, target)
        diff = prediction - target
        self._cache = {"diff": diff}
        return float(np.mean(np.abs(diff)))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff = self._cache["diff"]
        return np.sign(diff) / diff.size


class HuberLoss(_Loss):
    """Huber loss: quadratic near zero, linear in the tails."""

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__()
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._check(prediction, target)
        diff = prediction - target
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        loss = np.where(
            quadratic,
            0.5 * diff**2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        self._cache = {"diff": diff, "quadratic": quadratic}
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff = self._cache["diff"]
        grad = np.where(
            self._cache["quadratic"], diff, self.delta * np.sign(diff)
        )
        return grad / diff.size


class WeightedHotspotLoss(_Loss):
    """MAE with extra weight on the hotspot region of the *target*.

    Pixels whose golden drop exceeds ``threshold`` x max are weighted by
    ``hotspot_weight``; this mirrors the label-distribution-smoothing idea
    of PGAU (hotspots are rare but score-critical).
    """

    def __init__(self, hotspot_weight: float = 4.0, threshold: float = 0.9) -> None:
        super().__init__()
        if hotspot_weight < 1.0:
            raise ValueError("hotspot_weight must be >= 1")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.hotspot_weight = hotspot_weight
        self.threshold = threshold

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._check(prediction, target)
        diff = prediction - target
        per_sample_max = target.max(axis=tuple(range(1, target.ndim)), keepdims=True)
        hot = target > self.threshold * per_sample_max
        # np.where over two python scalars yields float64; cast so the
        # weighted gradient keeps the prediction's compute dtype.
        weights = np.where(hot, self.hotspot_weight, 1.0).astype(
            prediction.dtype, copy=False
        )
        weights = weights / weights.mean()
        self._cache = {"diff": diff, "weights": weights}
        return float(np.mean(weights * np.abs(diff)))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff = self._cache["diff"]
        return self._cache["weights"] * np.sign(diff) / diff.size


def _laplacian(field: np.ndarray) -> np.ndarray:
    """5-point discrete Laplacian with replicated borders, per (N,1,H,W)."""
    padded = np.pad(field, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="edge")
    return (
        padded[:, :, :-2, 1:-1]
        + padded[:, :, 2:, 1:-1]
        + padded[:, :, 1:-1, :-2]
        + padded[:, :, 1:-1, 2:]
        - 4.0 * field
    )


def _laplacian_adjoint(grad: np.ndarray) -> np.ndarray:
    """Adjoint of :func:`_laplacian` under the edge-replication padding."""
    n, c, h, w = grad.shape
    out = -4.0 * grad
    padded = np.zeros((n, c, h + 2, w + 2), dtype=grad.dtype)
    padded[:, :, :-2, 1:-1] += grad
    padded[:, :, 2:, 1:-1] += grad
    padded[:, :, 1:-1, :-2] += grad
    padded[:, :, 1:-1, 2:] += grad
    core = padded[:, :, 1:-1, 1:-1].copy()
    # fold the replicated borders back onto the edge rows/columns
    core[:, :, 0, :] += padded[:, :, 0, 1:-1]
    core[:, :, -1, :] += padded[:, :, -1, 1:-1]
    core[:, :, :, 0] += padded[:, :, 1:-1, 0]
    core[:, :, :, -1] += padded[:, :, 1:-1, -1]
    core[:, :, 0, 0] += padded[:, :, 0, 0]
    core[:, :, 0, -1] += padded[:, :, 0, -1]
    core[:, :, -1, 0] += padded[:, :, -1, 0]
    core[:, :, -1, -1] += padded[:, :, -1, -1]
    return out + core


class KirchhoffLoss(_Loss):
    """Physics-constrained loss: data term + current-conservation term.

    On a uniform resistive sheet, KCL gives ``Lap(v_drop) ∝ current``.
    The regulariser penalises the residual between the Laplacian of the
    predicted drop map and a least-squares-scaled current map, steering
    predictions toward circuit-consistent fields (the IRPnet idea).
    """

    def __init__(self, current_map: np.ndarray | None = None, weight: float = 0.1):
        super().__init__()
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.weight = weight
        self.current_map = current_map
        self._data = MAELoss()

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._check(prediction, target)
        data_loss = self._data.forward(prediction, target)
        if self.current_map is None or self.weight == 0.0:
            self._cache = {"physics": None}
            return data_loss
        current = np.broadcast_to(
            np.asarray(self.current_map, dtype=prediction.dtype), prediction.shape
        )
        lap = _laplacian(prediction)
        denom = float((current * current).sum())
        alpha = float((lap * current).sum()) / denom if denom > 0 else 0.0
        residual = lap - alpha * current
        self._cache = {"physics": residual}
        return data_loss + self.weight * float(np.mean(residual**2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = self._data.backward()
        residual = self._cache["physics"]
        if residual is not None:
            # alpha treated as a constant (stop-gradient), standard for
            # scale-matched physics regularisers
            grad = grad + self.weight * _laplacian_adjoint(
                2.0 * residual / residual.size
            )
        return grad
