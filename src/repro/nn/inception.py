"""Inception blocks (Szegedy et al., Inception-v3/v4 style).

Multi-branch convolutions that "learn feature maps across different kernel
sizes simultaneously" (Section III-D).  Following the paper, the encoder
uses Inception-A at the earliest scale, Inception-B at the middle scale,
and Inception-C at the deepest — A with stacked 3x3s, B with factorised
1x7/7x1 pairs, C with split 1x3/3x1 heads for high-dimensional features.

Every branch ends at ``out_channels // num_branch_units`` channels (the
remainder goes to the first branch) so any output width works.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import construction_rng
from repro.nn.containers import Sequential
from repro.nn.layers import AvgPool2d, Conv2d, ReLU
from repro.nn.module import Module


def _conv(in_ch: int, out_ch: int, kernel, rng) -> Sequential:
    """conv → ReLU with 'same' padding (asymmetric kernels included)."""
    if isinstance(kernel, int):
        padding: object = "same"
    else:
        kh, kw = kernel
        padding = ((kh - 1) // 2, (kw - 1) // 2)
    return Sequential(Conv2d(in_ch, out_ch, kernel, padding=padding, rng=rng), ReLU())


class _MultiBranch(Module):
    """Concat of parallel branches applied to the same input."""

    def __init__(self, branches: list[Module]) -> None:
        super().__init__()
        self.branches = branches
        self._splits: list[int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        outputs = [branch(x) for branch in self.branches]
        self._splits = [o.shape[1] for o in outputs]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._splits is None:
            raise RuntimeError("backward called before forward")
        grad_input = None
        start = 0
        for branch, width in zip(self.branches, self._splits):
            part = branch.backward(grad_output[:, start : start + width])
            grad_input = part if grad_input is None else grad_input + part
            start += width
        return grad_input


def _branch_widths(out_channels: int, units: int) -> list[int]:
    base = out_channels // units
    if base < 1:
        raise ValueError(
            f"out_channels={out_channels} too small for {units} branch units"
        )
    widths = [base] * units
    widths[0] += out_channels - base * units
    return widths


class InceptionA(_MultiBranch):
    """Early-scale block: 1x1 | 1x1-3x3 | 1x1-3x3-3x3 | pool-1x1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = construction_rng(rng)
        w1, w2, w3, w4 = _branch_widths(out_channels, 4)
        super().__init__(
            [
                _conv(in_channels, w1, 1, rng),
                Sequential(
                    _conv(in_channels, w2, 1, rng), _conv(w2, w2, 3, rng)
                ),
                Sequential(
                    _conv(in_channels, w3, 1, rng),
                    _conv(w3, w3, 3, rng),
                    _conv(w3, w3, 3, rng),
                ),
                Sequential(
                    AvgPool2d(3, stride=1, padding=1),
                    _conv(in_channels, w4, 1, rng),
                ),
            ]
        )


class InceptionB(_MultiBranch):
    """Mid-scale block with factorised 1x7 / 7x1 convolutions."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = construction_rng(rng)
        w1, w2, w3, w4 = _branch_widths(out_channels, 4)
        super().__init__(
            [
                _conv(in_channels, w1, 1, rng),
                Sequential(
                    _conv(in_channels, w2, 1, rng),
                    _conv(w2, w2, (1, 7), rng),
                    _conv(w2, w2, (7, 1), rng),
                ),
                Sequential(
                    _conv(in_channels, w3, 1, rng),
                    _conv(w3, w3, (7, 1), rng),
                    _conv(w3, w3, (1, 7), rng),
                ),
                Sequential(
                    AvgPool2d(3, stride=1, padding=1),
                    _conv(in_channels, w4, 1, rng),
                ),
            ]
        )


class InceptionC(_MultiBranch):
    """Deep-scale block with split 1x3 / 3x1 output heads.

    Branch units: 1x1 (1), pool-1x1 (1), 1x1→{1x3, 3x1} (2),
    1x1→3x3→{1x3, 3x1} (2) — six width units in total.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = construction_rng(rng)
        w1, w2, w3, w4, w5, w6 = _branch_widths(out_channels, 6)
        split_a = _MultiBranch(
            [_conv(w3, w3, (1, 3), rng), _conv(w3, w4, (3, 1), rng)]
        )
        split_b = _MultiBranch(
            [_conv(w5, w5, (1, 3), rng), _conv(w5, w6, (3, 1), rng)]
        )
        super().__init__(
            [
                _conv(in_channels, w1, 1, rng),
                Sequential(
                    AvgPool2d(3, stride=1, padding=1),
                    _conv(in_channels, w2, 1, rng),
                ),
                Sequential(_conv(in_channels, w3, 1, rng), split_a),
                Sequential(
                    _conv(in_channels, w5, 1, rng),
                    _conv(w5, w5, 3, rng),
                    split_b,
                ),
            ]
        )
