"""Vectorised conv/pool primitives (im2col family).

All convolution layers reduce to three primitives: :func:`im2col`
(patch extraction via stride tricks), a batched matmul, and
:func:`col2im` (the scatter-add adjoint of im2col).  Kernels, strides and
paddings are ``(height, width)`` pairs so the asymmetric 1x7 / 7x1 kernels
of Inception-B/C come for free.

The im2col/col2im scratch matrices dominate training-time allocation
churn (a ``C*kh*kw x out_h*out_w`` matrix per conv per step), so the
primitives optionally draw their scratch from a per-layer
:class:`Workspace` arena.  Workspace buffers hold *scratch only* — patch
matrices and padded staging areas — never tensors that escape as layer
outputs, so reuse cannot alias activations held across steps (skip
connections, collected predictions).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

Pair = tuple[int, int]

#: Backend-dispatched matmul, resolved on first use: importing
#: :mod:`repro.core.kernels` at module scope would run the
#: ``repro.core`` package init, which reaches back into ``repro.nn``.
_KERNEL_MATMUL = None


def matmul(a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None):
    """Dense matmul through the tiered kernel backend."""
    global _KERNEL_MATMUL
    if _KERNEL_MATMUL is None:
        from repro.core.kernels import matmul as kernel_matmul

        _KERNEL_MATMUL = kernel_matmul
    return _KERNEL_MATMUL(a, b, out=out)


class Workspace:
    """A per-layer arena of reusable scratch buffers, keyed by name.

    ``request`` returns the named buffer, reallocating only when the
    requested shape or dtype changes (steady-state training reuses every
    buffer).  Freshly allocated buffers are zeroed; pass ``refill=0.0``
    when the caller accumulates into the buffer and needs it re-zeroed on
    every reuse (the padded im2col staging area relies on zero-on-alloc
    alone: its border pixels are written exactly once and the interior is
    overwritten each call).
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def request(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        refill: float | None = None,
    ) -> np.ndarray:
        buffer = self._buffers.get(name)
        if (
            buffer is None
            or buffer.shape != tuple(shape)
            or buffer.dtype != np.dtype(dtype)
        ):
            buffer = np.zeros(shape, dtype=dtype)
            self._buffers[name] = buffer
        elif refill is not None:
            buffer.fill(refill)
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


def to_pair(value: int | Pair) -> Pair:
    """Normalise an int or pair to a (height, width) pair."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2:
        raise ValueError(f"expected an int or pair, got {value!r}")
    return (int(pair[0]), int(pair[1]))


def conv_output_shape(
    input_hw: Pair, kernel: Pair, stride: Pair, padding: Pair
) -> Pair:
    """Spatial output shape of a convolution."""
    h, w = input_hw
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"non-positive conv output {out_h}x{out_w} for input {h}x{w}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return (out_h, out_w)


def im2col(
    x: np.ndarray,
    kernel: Pair,
    stride: Pair,
    padding: Pair,
    workspace: Workspace | None = None,
    prefix: str = "",
) -> np.ndarray:
    """Extract sliding patches: ``(N, C*kh*kw, out_h*out_w)``.

    With a *workspace*, the padded staging area and the returned patch
    matrix are drawn from the arena; the result is then only valid until
    the next im2col call on the same workspace.  The copy into the
    preallocated buffer walks the strided windows in the same C order as
    ``ascontiguousarray``, so the contents are bitwise identical either
    way.  *prefix* namespaces the arena buffers so two im2col calls with
    different shapes (e.g. forward patches vs the backward-data sweep)
    don't evict each other's buffers every step.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if (kh, kw) == (1, 1) and (sh, sw) == (1, 1) and (ph, pw) == (0, 0):
        # A pointwise convolution's patch matrix IS the input: return a
        # reshaped view (bitwise identical, no copy, no arena buffer).
        # Callers cache it only as long as they hold the input alive.
        return x.reshape(n, c, h * w)
    out_h, out_w = conv_output_shape((h, w), kernel, stride, padding)
    if ph == 0 and pw == 0:
        padded = x
    elif workspace is not None:
        # Border pixels are zeroed at allocation and never written again;
        # only the interior is refreshed per call.
        padded = workspace.request(
            f"{prefix}im2col_padded", (n, c, h + 2 * ph, w + 2 * pw), x.dtype
        )
        padded[:, :, ph : ph + h, pw : pw + w] = x
    else:
        padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    s0, s1, s2, s3 = padded.strides
    windows = as_strided(
        padded,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    if workspace is not None:
        cols = workspace.request(
            f"{prefix}im2col_cols", (n, c * kh * kw, out_h * out_w), x.dtype
        )
        np.copyto(cols.reshape(n, c, kh, kw, out_h, out_w), windows)
        return cols
    return np.ascontiguousarray(windows).reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: Pair,
    stride: Pair,
    padding: Pair,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to image space.

    With a *workspace* the accumulator is drawn from the arena (re-zeroed
    per call) and the result may be a view of it — callers must consume
    the result before the next col2im on the same workspace, so only pass
    one for gradients that are consumed within the backward pass, never
    for layer outputs.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv_output_shape((h, w), kernel, stride, padding)
    expected = (n, c * kh * kw, out_h * out_w)
    if cols.shape != expected:
        raise ValueError(f"cols shape {cols.shape} != expected {expected}")
    blocks = cols.reshape(n, c, kh, kw, out_h, out_w)
    if workspace is not None:
        padded = workspace.request(
            "col2im_padded", (n, c, h + 2 * ph, w + 2 * pw), cols.dtype, refill=0.0
        )
    else:
        padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                blocks[:, :, i, j]
            )
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: Pair,
    padding: Pair,
    workspace: Workspace | None = None,
    fuse_relu: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolution forward; returns (output, cached patch matrix).

    The output is always freshly allocated (bias and the optional fused
    ReLU are applied in place on it); only the patch matrix may live in
    the workspace.
    """
    filters, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels, weight expects {in_channels}"
        )
    cols = im2col(x, (kh, kw), stride, padding, workspace=workspace)
    out_h, out_w = conv_output_shape(x.shape[2:], (kh, kw), stride, padding)
    flat = matmul(weight.reshape(filters, -1), cols)  # (N, F, L)
    out = flat.reshape(x.shape[0], filters, out_h, out_w)
    if bias is not None:
        out += bias.reshape(1, filters, 1, 1)
    if fuse_relu:
        np.maximum(out, 0.0, out=out)
    return out, cols


def conv2d_backward(
    grad_output: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weight: np.ndarray,
    stride: Pair,
    padding: Pair,
    with_bias: bool,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gradients (d_input, d_weight, d_bias) of a convolution.

    With a *workspace*, ``grad_input`` may be a view of arena scratch —
    valid until the layer's next backward, which is enough for a chain
    backward pass that consumes each gradient immediately.
    """
    n = grad_output.shape[0]
    filters = weight.shape[0]
    grad_flat = grad_output.reshape(n, filters, -1)  # (N, F, L)
    if grad_flat.dtype == np.float64 and cols.dtype == np.float64:
        # The einsum C-loop accumulates in a fixed order; the fp64 path
        # keeps it so results stay bitwise identical to earlier releases.
        grad_weight = np.einsum("nfl,nkl->fk", grad_flat, cols)
    else:
        # Batched BLAS matmul + sum is several times faster than einsum in
        # fp32; per-sample partials then reduce in index order.
        grad_weight = matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
    grad_weight = grad_weight.reshape(weight.shape)
    grad_bias = grad_output.sum(axis=(0, 2, 3)) if with_bias else None
    kernel = (weight.shape[2], weight.shape[3])
    kh, kw = kernel
    ph, pw = padding
    if (
        grad_flat.dtype != np.float64
        and stride == (1, 1)
        and ph < kh
        and pw < kw
    ):
        # Backward-data as a full correlation: im2col over the output
        # gradient + one GEMM with the 180°-rotated kernel.  This swaps
        # the memory-bound col2im scatter (kh*kw strided adds) for a
        # single patch copy, a clear win in the reduced-precision path;
        # the fp64 path keeps the scatter form bitwise-stable.
        in_channels = weight.shape[1]
        w_rot = np.ascontiguousarray(
            weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
        ).reshape(in_channels, filters * kh * kw)
        cols_g = im2col(
            grad_output,
            kernel,
            (1, 1),
            (kh - 1 - ph, kw - 1 - pw),
            workspace=workspace,
            prefix="bwd_",
        )
        if workspace is not None:
            grad_input = workspace.request(
                "bwd_grad_input", (n, in_channels, cols_g.shape[2]), cols_g.dtype
            )
            matmul(w_rot, cols_g, out=grad_input)
        else:
            grad_input = matmul(w_rot, cols_g)
        return grad_input.reshape(x_shape), grad_weight, grad_bias
    w_mat_t = weight.reshape(filters, -1).T
    if workspace is not None:
        grad_cols = workspace.request(
            "grad_cols", (n, w_mat_t.shape[0], grad_flat.shape[2]), grad_flat.dtype
        )
        matmul(w_mat_t, grad_flat, out=grad_cols)  # (N, K, L)
    else:
        grad_cols = matmul(w_mat_t, grad_flat)
    grad_input = col2im(
        grad_cols, x_shape, kernel, stride, padding, workspace=workspace
    )
    return grad_input, grad_weight, grad_bias


def maxpool2d_forward(
    x: np.ndarray, kernel: Pair
) -> tuple[np.ndarray, np.ndarray]:
    """Non-overlapping max pooling; returns (output, argmax mask).

    Stride equals kernel and the spatial dims must divide evenly — the
    only configuration the models use (2x2).
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    if h % kh or w % kw:
        raise ValueError(f"input {h}x{w} not divisible by pool {kernel}")
    oh, ow = h // kh, w // kw
    blocks = x.reshape(n, c, oh, kh, ow, kw)
    flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out, arg


def maxpool2d_backward(
    grad_output: np.ndarray,
    arg: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: Pair,
) -> np.ndarray:
    """Route gradients to the argmax positions."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh, ow = h // kh, w // kw
    flat = np.zeros((n, c, oh, ow, kh * kw), dtype=grad_output.dtype)
    np.put_along_axis(flat, arg[..., None], grad_output[..., None], axis=-1)
    blocks = flat.reshape(n, c, oh, ow, kh, kw).transpose(0, 1, 2, 4, 3, 5)
    return blocks.reshape(n, c, h, w)


def avgpool2d_forward(x: np.ndarray, kernel: Pair, padding: Pair = (0, 0),
                      stride: Pair | None = None) -> np.ndarray:
    """Average pooling via im2col (supports overlapping windows)."""
    kh, kw = kernel
    stride = stride or kernel
    n, c = x.shape[:2]
    cols = im2col(x, kernel, stride, padding)
    out_h, out_w = conv_output_shape(x.shape[2:], kernel, stride, padding)
    means = cols.reshape(n, c, kh * kw, -1).mean(axis=2)
    return means.reshape(n, c, out_h, out_w)


def avgpool2d_backward(
    grad_output: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: Pair,
    padding: Pair = (0, 0),
    stride: Pair | None = None,
) -> np.ndarray:
    """Adjoint of average pooling: spread gradients uniformly."""
    kh, kw = kernel
    stride = stride or kernel
    n, c = x_shape[:2]
    grad_flat = grad_output.reshape(n, c, 1, -1) / (kh * kw)
    grad_cols = np.broadcast_to(
        grad_flat, (n, c, kh * kw, grad_flat.shape[-1])
    ).reshape(n, c * kh * kw, -1)
    return col2im(np.ascontiguousarray(grad_cols), x_shape, kernel, stride, padding)


def upsample_nearest_forward(x: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor."""
    return x.repeat(factor, axis=2).repeat(factor, axis=3)


def upsample_nearest_backward(grad_output: np.ndarray, factor: int) -> np.ndarray:
    """Adjoint of nearest upsampling: sum each factor x factor block."""
    n, c, h, w = grad_output.shape
    if h % factor or w % factor:
        raise ValueError(f"gradient {h}x{w} not divisible by factor {factor}")
    blocks = grad_output.reshape(n, c, h // factor, factor, w // factor, factor)
    return blocks.sum(axis=(3, 5))
