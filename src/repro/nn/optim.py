"""Optimisers: SGD with momentum and Adam, plus gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base: holds the parameter list and zeroes gradients."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = parameters

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Optimiser internal state as flat arrays (for checkpointing)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state written by :meth:`state_dict`."""
        if state:
            raise KeyError(f"unexpected optimizer state keys: {sorted(state)[:5]}")


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += grad
            parameter.data -= self.lr * velocity
            parameter.sync_compute()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = {f"velocity.{i}" for i in range(len(self._velocity))}
        if set(state) != expected:
            raise KeyError(
                f"SGD state mismatch: got {sorted(state)[:5]}, "
                f"expected {len(expected)} velocity arrays"
            )
        for i, velocity in enumerate(self._velocity):
            velocity[...] = state[f"velocity.{i}"]


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba).

    Steps operate on the float64 master weights (``Parameter.data``) and
    re-sync each parameter's compute-precision cast afterwards, so mixed
    precision never degrades the accumulated weight state.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            parameter.sync_compute()

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {f"m.{i}": m.copy() for i, m in enumerate(self._m)}
        state.update({f"v.{i}": v.copy() for i, v in enumerate(self._v)})
        state["t"] = np.array(self._t, dtype=np.int64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = (
            {f"m.{i}" for i in range(len(self._m))}
            | {f"v.{i}" for i in range(len(self._v))}
            | {"t"}
        )
        if set(state) != expected:
            raise KeyError(
                f"Adam state mismatch: got {sorted(state)[:5]}, "
                f"expected m/v arrays for {len(self._m)} parameters plus 't'"
            )
        for i in range(len(self._m)):
            self._m[i][...] = state[f"m.{i}"]
            self._v[i][...] = state[f"v.{i}"]
        self._t = int(state["t"])


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global 2-norm is at most *max_norm*.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(
        np.sqrt(sum(float((p.grad**2).sum()) for p in parameters))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total
