"""Core layers with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.nn.functional import (
    Pair,
    Workspace,
    avgpool2d_backward,
    avgpool2d_forward,
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
    maxpool2d_backward,
    maxpool2d_forward,
    to_pair,
    upsample_nearest_backward,
    upsample_nearest_forward,
)
from repro.nn.init import construction_rng, kaiming_normal
from repro.nn.module import Module, Parameter


def _resolve_padding(padding: int | Pair | str, kernel: Pair) -> Pair:
    if padding == "same":
        kh, kw = kernel
        if kh % 2 == 0 or kw % 2 == 0:
            raise ValueError("'same' padding requires odd kernel sizes")
        return ((kh - 1) // 2, (kw - 1) // 2)
    return to_pair(padding)  # type: ignore[arg-type]


class Conv2d(Module):
    """2D convolution (im2col-based) with optional bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int | Pair,
        stride: int | Pair = 1,
        padding: int | Pair | str = "same",
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        self.kernel = to_pair(kernel)
        self.stride = to_pair(stride)
        self.padding = _resolve_padding(padding, self.kernel)
        kh, kw = self.kernel
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kh, kw), fan_in, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None
        self._workspace = Workspace()
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cols = conv2d_forward(
            x,
            self.weight.compute,
            self.bias.compute if self.bias is not None else None,
            self.stride,
            self.padding,
            workspace=self._workspace,
        )
        self._cols = cols
        self._x_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        grad_input, grad_weight, grad_bias = conv2d_backward(
            grad_output,
            self._cols,
            self._x_shape,
            self.weight.compute,
            self.stride,
            self.padding,
            with_bias=self.bias is not None,
            workspace=self._workspace,
        )
        self.weight.grad += grad_weight
        if self.bias is not None and grad_bias is not None:
            self.bias.grad += grad_bias
        return grad_input


class FusedConvBiasReLU(Module):
    """Conv + bias + ReLU executed as one fused kernel.

    Built from an existing :class:`Conv2d` by the
    :func:`~repro.nn.containers.fuse_conv_relu` graph pass.  The
    ``weight``/``bias`` attributes are the *same* :class:`Parameter`
    objects as the source conv (same state-dict paths, same optimizer
    slots), so fusion is transparent to checkpoints and training state.
    The ReLU mask is recovered from the fused output (``out > 0`` iff the
    pre-activation was ``> 0``), saving the separate pre-activation
    tensor the unfused pair keeps alive.
    """

    def __init__(self, conv: Conv2d) -> None:
        super().__init__()
        self.kernel = conv.kernel
        self.stride = conv.stride
        self.padding = conv.padding
        self.weight = conv.weight
        self.bias = conv.bias
        self._workspace = conv._workspace
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cols = conv2d_forward(
            x,
            self.weight.compute,
            self.bias.compute if self.bias is not None else None,
            self.stride,
            self.padding,
            workspace=self._workspace,
            fuse_relu=True,
        )
        self._cols = cols
        self._x_shape = x.shape
        self._mask = out > 0
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_pre = np.where(self._mask, grad_output, 0.0)
        grad_input, grad_weight, grad_bias = conv2d_backward(
            grad_pre,
            self._cols,
            self._x_shape,
            self.weight.compute,
            self.stride,
            self.padding,
            with_bias=self.bias is not None,
            workspace=self._workspace,
        )
        self.weight.grad += grad_weight
        if self.bias is not None and grad_bias is not None:
            self.bias.grad += grad_bias
        return grad_input


class ConvTranspose2d(Module):
    """Transposed convolution (the adjoint of :class:`Conv2d`).

    Weight shape follows the torch convention ``(in, out, kh, kw)``;
    output spatial size is ``(H-1)*stride - 2*padding + kernel``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int | Pair,
        stride: int | Pair = 2,
        padding: int | Pair = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        self.kernel = to_pair(kernel)
        self.stride = to_pair(stride)
        self.padding = to_pair(padding)
        kh, kw = self.kernel
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            kaiming_normal((in_channels, out_channels, kh, kw), fan_in, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None
        self.out_channels = out_channels
        self._x: np.ndarray | None = None
        self._out_shape: tuple[int, int, int, int] | None = None

    def _output_hw(self, input_hw: Pair) -> Pair:
        h, w = input_hw
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        return ((h - 1) * sh - 2 * ph + kh, (w - 1) * sw - 2 * pw + kw)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        out_h, out_w = self._output_hw((h, w))
        out_shape = (n, self.out_channels, out_h, out_w)
        # conv-transpose forward == conv backward-data with x as the gradient
        w_mat = self.weight.compute.reshape(c_in, -1)  # (Cin, Cout*kh*kw)
        grad_cols = np.matmul(w_mat.T, x.reshape(n, c_in, -1))
        out = col2im(grad_cols, out_shape, self.kernel, self.stride, self.padding)
        if self.bias is not None:
            out = out + self.bias.compute.reshape(1, -1, 1, 1)
        self._x = x
        self._out_shape = out_shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        n, c_in = x.shape[:2]
        cols = im2col(grad_output, self.kernel, self.stride, self.padding)
        x_flat = x.reshape(n, c_in, -1)
        if x_flat.dtype == np.float64 and cols.dtype == np.float64:
            grad_w = np.einsum("nfl,nkl->fk", x_flat, cols)
        else:
            grad_w = np.matmul(x_flat, cols.transpose(0, 2, 1)).sum(axis=0)
        self.weight.grad += grad_w.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        w_mat = self.weight.compute.reshape(c_in, -1)
        grad_input = np.matmul(w_mat, cols).reshape(x.shape)
        return grad_input


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel with running stats."""

    buffer_names = ("running_mean", "running_var")

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(channels), name="gamma")
        self.beta = Parameter(np.zeros(channels), name="beta")
        self.eps = eps
        self.momentum = momentum
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        #: When False, training-mode forwards still normalise with batch
        #: statistics but leave the running buffers untouched.  The
        #: sharded training engine uses this: workers compute per-shard
        #: stats (exposed via ``batch_stats``) and the parent folds a
        #: deterministic reduction of them into the buffers itself.
        self.update_running = True
        self.batch_stats: tuple[np.ndarray, np.ndarray] | None = None
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            # One pass over x: E[x] and E[x^2] together, instead of the
            # separate mean+var sweeps (var clamped against the tiny
            # negative values cancellation can produce).
            count = x.shape[0] * x.shape[2] * x.shape[3]
            mean = x.sum(axis=(0, 2, 3)) / count
            mean_sq = np.einsum("nchw,nchw->c", x, x) / count
            var = np.maximum(mean_sq - mean * mean, 0.0)
            self.batch_stats = (mean, var)
            if self.update_running:
                self.running_mean = (
                    (1 - self.momentum) * self.running_mean + self.momentum * mean
                )
                self.running_var = (
                    (1 - self.momentum) * self.running_var + self.momentum * var
                )
        else:
            # Running stats are float64 buffers; cast to the activation
            # dtype so eval mode never upcasts a reduced-precision pass
            # (a no-op copy-free cast in fp64).
            mean = self.running_mean.astype(x.dtype, copy=False)
            var = self.running_var.astype(x.dtype, copy=False)
        std = np.sqrt(var + self.eps)
        if x.dtype == np.float64:
            x_hat = (x - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
        else:
            # Reduced precision: multiply by the reciprocal instead of
            # dividing elementwise (measurably cheaper, same tolerance).
            inv = (1.0 / std).astype(x.dtype, copy=False)
            x_hat = (x - mean.reshape(1, -1, 1, 1).astype(x.dtype, copy=False)) * (
                inv.reshape(1, -1, 1, 1)
            )
        self._cache = (x_hat, std)
        return self.gamma.compute.reshape(1, -1, 1, 1) * x_hat + self.beta.compute.reshape(
            1, -1, 1, 1
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        if grad_output.dtype == np.float64:
            # Legacy operation order, kept bitwise-stable for fp64 runs.
            self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
            self.beta.grad += grad_output.sum(axis=(0, 2, 3))
            gamma = self.gamma.compute.reshape(1, -1, 1, 1)
            grad_x_hat = grad_output * gamma
            if not self.training:
                return grad_x_hat / std.reshape(1, -1, 1, 1)
            count = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
            sum_g = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
            sum_gx = (grad_x_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            return (
                grad_x_hat - sum_g / count - x_hat * sum_gx / count
            ) / std.reshape(1, -1, 1, 1)
        # Reduced precision: the parameter-gradient reductions already
        # carry the per-channel sums the input gradient needs
        # (sum(g*gamma) = gamma*beta-contrib, sum(g*gamma*x_hat) =
        # gamma*gamma-contrib), so the whole input gradient collapses to
        # one per-channel affine form c1*g + c2*x_hat + c3 — two fewer
        # full-array reduction passes and no grad_x_hat temporary.
        g_sum = grad_output.sum(axis=(0, 2, 3))
        gx_sum = np.einsum("nchw,nchw->c", grad_output, x_hat)
        self.gamma.grad += gx_sum
        self.beta.grad += g_sum
        gamma = self.gamma.compute
        inv_std = (1.0 / std).astype(grad_output.dtype, copy=False)
        if not self.training:
            coef = (gamma * inv_std).reshape(1, -1, 1, 1)
            return grad_output * coef
        count = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]
        scale = gamma * inv_std
        c2 = -(scale * gx_sum) / count
        c3 = -(scale * g_sum) / count
        return (
            grad_output * scale.reshape(1, -1, 1, 1)
            + x_hat * c2.reshape(1, -1, 1, 1)
            + c3.reshape(1, -1, 1, 1)
        )


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.slope * grad_output)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = expit(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)


class Identity(Module):
    """Pass-through (useful as an ablation stand-in)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class MaxPool2d(Module):
    """Non-overlapping max pooling (stride == kernel)."""

    def __init__(self, kernel: int | Pair = 2) -> None:
        super().__init__()
        self.kernel = to_pair(kernel)
        self._arg: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, arg = maxpool2d_forward(x, self.kernel)
        self._arg = arg
        self._x_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._arg is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return maxpool2d_backward(grad_output, self._arg, self._x_shape, self.kernel)


class AvgPool2d(Module):
    """Average pooling; supports overlapping windows via explicit stride."""

    def __init__(
        self,
        kernel: int | Pair = 2,
        stride: int | Pair | None = None,
        padding: int | Pair = 0,
    ) -> None:
        super().__init__()
        self.kernel = to_pair(kernel)
        self.stride = to_pair(stride) if stride is not None else self.kernel
        self.padding = to_pair(padding)
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return avgpool2d_forward(x, self.kernel, self.padding, self.stride)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return avgpool2d_backward(
            grad_output, self._x_shape, self.kernel, self.padding, self.stride
        )


class GlobalAvgPool(Module):
    """Mean over spatial dims, keeping (N, C, 1, 1)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3), keepdims=True)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad_output / (h * w), self._x_shape).copy()


class GlobalMaxPool(Module):
    """Max over spatial dims, keeping (N, C, 1, 1)."""

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._out = x.max(axis=(2, 3), keepdims=True)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None or self._out is None:
            raise RuntimeError("backward called before forward")
        mask = self._x == self._out
        # split gradient across ties to keep the adjoint exact
        counts = mask.sum(axis=(2, 3), keepdims=True)
        return mask * (grad_output / counts)


class UpsampleNearest(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, factor: int = 2) -> None:
        super().__init__()
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def forward(self, x: np.ndarray) -> np.ndarray:
        return upsample_nearest_forward(x, self.factor)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return upsample_nearest_backward(grad_output, self.factor)


class Linear(Module):
    """Fully connected layer over (N, F) inputs (CBAM channel MLP)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), in_features, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Linear expects (N, F) input, got shape {x.shape}")
        self._x = x
        out = x @ self.weight.compute.T
        if self.bias is not None:
            out = out + self.bias.compute
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad_output.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.compute


class Concat(Module):
    """Channel-axis concatenation of a list of tensors."""

    def __init__(self) -> None:
        super().__init__()
        self._splits: list[int] | None = None

    def forward(self, xs: list[np.ndarray]) -> np.ndarray:
        if not xs:
            raise ValueError("cannot concatenate an empty list")
        self._splits = [x.shape[1] for x in xs]
        return np.concatenate(xs, axis=1)

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._splits is None:
            raise RuntimeError("backward called before forward")
        grads = []
        start = 0
        for width in self._splits:
            grads.append(grad_output[:, start : start + width])
            start += width
        return grads
