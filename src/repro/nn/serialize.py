"""Model checkpointing: state dicts to/from ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Write a module's state dict to a compressed npz archive."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Load an archive written by :func:`save_state` into *module*."""
    with np.load(path) as archive:
        module.load_state_dict({key: archive[key] for key in archive.files})
