"""Model checkpointing: state dicts to/from ``.npz`` archives.

Two formats live here:

- **Weights-only** (:func:`save_state` / :func:`load_state`) — just the
  module's parameters/buffers; used for deployment checkpoints.
- **Training checkpoints** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) — arbitrary named arrays (model + optimiser
  state) plus a JSON metadata blob (epoch counter, RNG state, history),
  enabling bit-exact resume after an interruption.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.nn.module import Module

#: Reserved array name holding the JSON metadata inside checkpoint archives.
_META_KEY = "__checkpoint_meta__"


def save_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Write a module's state dict to a compressed npz archive."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(path, **state)


def _name_list(names: set[str], limit: int = 8) -> str:
    """Render a key set for error messages: every name, bounded."""
    ordered = sorted(names)
    shown = ", ".join(ordered[:limit])
    extra = len(ordered) - limit
    return shown + (f", ... (+{extra} more)" if extra > 0 else "")


def load_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Load an archive written by :func:`save_state` into *module*.

    Failure modes are diagnosed before any weight is touched, so the
    error names the actual problem instead of surfacing as a raw
    ``load_state_dict`` KeyError three layers down:

    - a *training checkpoint* archive (one written by
      :func:`save_checkpoint`) raises a :class:`ValueError` pointing at
      :func:`load_checkpoint`;
    - an archive whose keys do not match the module raises a
      :class:`ValueError` naming the missing and unexpected keys.
    """
    path = os.fspath(path)
    with np.load(path) as archive:
        if _META_KEY in archive.files:
            raise ValueError(
                f"{path!r} is a training checkpoint (it contains the "
                f"{_META_KEY!r} metadata entry), not a weights-only "
                "archive; restore it with load_checkpoint(), or re-export "
                "the model with save_state()"
            )
        state = {key: archive[key] for key in archive.files}
    expected = {name for name, _ in module.named_parameters()}
    expected.update(name for name, _, _ in module.named_buffers())
    missing = expected - set(state)
    unexpected = set(state) - expected
    if missing or unexpected:
        parts = [f"{path!r} does not match the target module"]
        if missing:
            parts.append(
                f"missing {len(missing)} key(s): {_name_list(missing)}"
            )
        if unexpected:
            parts.append(
                f"unexpected {len(unexpected)} key(s): "
                f"{_name_list(unexpected)}"
            )
        parts.append(
            "the archive was saved from a different architecture or "
            "configuration than the module being restored"
        )
        raise ValueError("; ".join(parts))
    module.load_state_dict(state)


def state_fingerprint(state: dict[str, np.ndarray]) -> str:
    """Content hash of a state dict covering every weight byte.

    Keys, dtypes, shapes and raw array bytes all feed the digest, so
    two states collide only if they are byte-identical — the property
    the worker-side model cache in :mod:`repro.core.batch` relies on to
    never serve a stale model after a retrain.
    """
    digest = hashlib.blake2b(digest_size=16)
    for key in sorted(state):
        value = np.asarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(value.dtype).encode("ascii"))
        digest.update(repr(value.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def save_checkpoint(
    path: str | os.PathLike[str],
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> None:
    """Write named arrays plus JSON-serialisable metadata atomically.

    The archive is written to a temporary sibling first and renamed into
    place, so a crash mid-write never corrupts the previous checkpoint.

    The temporary name ends in ``.npz`` so numpy writes exactly the file
    we rename — probing for a name numpy *might* have produced resolved
    to stale temporaries left by an earlier crash and installed the
    corrupt file (the bug this replaces).  Stale temporaries from either
    naming scheme are removed up front.
    """
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path = os.fspath(path)
    tmp = f"{path}.tmp.npz"
    for stale in (f"{path}.tmp", tmp):
        try:
            os.remove(stale)
        except FileNotFoundError:
            pass
    np.savez_compressed(tmp, **payload)
    os.replace(tmp, path)


def load_checkpoint(
    path: str | os.PathLike[str],
) -> tuple[dict[str, np.ndarray], dict]:
    """Read ``(arrays, meta)`` written by :func:`save_checkpoint`."""
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(
                f"{os.fspath(path)!r} is not a training checkpoint "
                "(missing metadata; was it written by save_state?)"
            )
        meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
        arrays = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    return arrays, meta
