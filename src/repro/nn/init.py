"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic under a seed — a requirement for the
ablation study, where variants must differ only in architecture.
"""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He initialisation for ReLU-family activations."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot initialisation for sigmoid/tanh paths."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class RngState:
    """A shared generator handed through model construction.

    Models create one from their seed and pass it to every layer, so layer
    creation order fully determines the weights.
    """

    def __init__(self, seed: int = 0) -> None:
        self.generator = np.random.default_rng(seed)

    def __call__(self) -> np.random.Generator:
        return self.generator


#: The process-wide stream unseeded layers draw from.  Every unseeded
#: layer advances the *same* stream, so consecutive layers get distinct
#: weights (the old per-layer ``default_rng(0)`` fallback handed every
#: unseeded layer an identical weight tensor) while construction stays
#: deterministic given construction order.
_construction_rng = np.random.default_rng(0)


def construction_rng(
    rng: np.random.Generator | None = None,
) -> np.random.Generator:
    """Resolve a layer's init generator: the given one, else the shared stream."""
    return rng if rng is not None else _construction_rng


def seed_construction_rng(seed: int = 0) -> None:
    """Reset the shared stream (call before building a model unseeded)."""
    global _construction_rng
    _construction_rng = np.random.default_rng(seed)
