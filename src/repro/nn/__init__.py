"""A compact from-scratch neural-network framework on numpy.

The paper trains PyTorch models; this environment has no deep-learning
runtime, so the framework is reimplemented here: explicit forward/backward
modules (no autodiff tape), im2col convolutions, batch normalisation,
pooling/upsampling, the CBAM and attention-gate blocks, Inception blocks,
standard losses and Adam/SGD optimisers.  Every layer's backward pass is
verified against numerical gradients in the test suite.

Conventions: activations are ``(N, C, H, W)`` float64 arrays; modules cache
what their backward pass needs during forward and must be called in
forward-then-backward order.
"""

from repro.nn.attention import CBAM, AttentionGate, ChannelAttention, SpatialAttention
from repro.nn.containers import Residual, Sequential
from repro.nn.inception import InceptionA, InceptionB, InceptionC
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    ConvTranspose2d,
    GlobalAvgPool,
    GlobalMaxPool,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    UpsampleNearest,
)
from repro.nn.losses import (
    HuberLoss,
    KirchhoffLoss,
    MAELoss,
    MSELoss,
    WeightedHotspotLoss,
)
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialize import load_state, save_state
from repro.nn.summary import parameter_table, summarize

__all__ = [
    "Adam",
    "AttentionGate",
    "AvgPool2d",
    "BatchNorm2d",
    "CBAM",
    "ChannelAttention",
    "Concat",
    "Conv2d",
    "ConvTranspose2d",
    "GlobalAvgPool",
    "GlobalMaxPool",
    "HuberLoss",
    "Identity",
    "InceptionA",
    "InceptionB",
    "InceptionC",
    "KirchhoffLoss",
    "LeakyReLU",
    "Linear",
    "MAELoss",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Residual",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SpatialAttention",
    "Tanh",
    "UpsampleNearest",
    "WeightedHotspotLoss",
    "clip_grad_norm",
    "load_state",
    "parameter_table",
    "save_state",
    "summarize",
]
