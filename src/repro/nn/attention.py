"""Attention blocks: CBAM (channel + spatial) and the attention gate.

CBAM (Woo et al., ECCV'18) provides the paper's "global and local
attention": the Channel Attention Module squeezes spatially and reweights
channels (global view); the Spatial Attention Module squeezes over
channels and reweights pixels (local view).  Equation (6):
``m' = Mc(m) (x) m``, ``m'' = Ms(m') (x) m'``.

The attention gate (Attention U-Net) filters encoder skip features with a
gating signal from the decoder before concatenation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.nn.init import construction_rng, kaiming_normal
from repro.nn.layers import Conv2d, ReLU, Sigmoid
from repro.nn.module import Module, Parameter


class ChannelAttention(Module):
    """Squeeze-and-excite over channels with shared two-layer MLP.

    ``Mc(m) = sigmoid(MLP(avgpool(m)) + MLP(maxpool(m)))`` applied
    multiplicatively.  The MLP weights are shared between the two pooled
    branches, so the backward pass accumulates both contributions.
    """

    def __init__(
        self,
        channels: int,
        reduction: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        hidden = max(1, channels // reduction)
        self.w1 = Parameter(
            kaiming_normal((hidden, channels), channels, rng), name="w1"
        )
        self.b1 = Parameter(np.zeros(hidden), name="b1")
        self.w2 = Parameter(
            kaiming_normal((channels, hidden), hidden, rng), name="w2"
        )
        self.b2 = Parameter(np.zeros(channels), name="b2")
        self._cache: dict | None = None

    def _mlp_forward(self, pooled: np.ndarray) -> tuple[np.ndarray, dict]:
        hidden_pre = pooled @ self.w1.compute.T + self.b1.compute
        hidden = np.maximum(hidden_pre, 0.0)
        out = hidden @ self.w2.compute.T + self.b2.compute
        return out, {"input": pooled, "hidden": hidden, "mask": hidden_pre > 0}

    def _mlp_backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        self.w2.grad += grad_out.T @ cache["hidden"]
        self.b2.grad += grad_out.sum(axis=0)
        grad_hidden = (grad_out @ self.w2.compute) * cache["mask"]
        self.w1.grad += grad_hidden.T @ cache["input"]
        self.b1.grad += grad_hidden.sum(axis=0)
        return grad_hidden @ self.w1.compute

    def forward(self, m: np.ndarray) -> np.ndarray:
        n, c, h, w = m.shape
        avg = m.mean(axis=(2, 3))
        mx = m.max(axis=(2, 3))
        avg_out, avg_cache = self._mlp_forward(avg)
        max_out, max_cache = self._mlp_forward(mx)
        scale = expit(avg_out + max_out)  # (N, C)
        out = m * scale[:, :, None, None]
        self._cache = {
            "m": m,
            "scale": scale,
            "avg_cache": avg_cache,
            "max_cache": max_cache,
            "mx": mx,
        }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        m = self._cache["m"]
        scale = self._cache["scale"]
        n, c, h, w = m.shape
        grad_m = grad_output * scale[:, :, None, None]
        grad_scale = (grad_output * m).sum(axis=(2, 3))  # (N, C)
        grad_logits = grad_scale * scale * (1.0 - scale)
        grad_avg = self._mlp_backward(grad_logits, self._cache["avg_cache"])
        grad_max = self._mlp_backward(grad_logits, self._cache["max_cache"])
        grad_m += grad_avg[:, :, None, None] / (h * w)
        max_mask = m == self._cache["mx"][:, :, None, None]
        counts = max_mask.sum(axis=(2, 3), keepdims=True)
        grad_m += max_mask * (grad_max[:, :, None, None] / counts)
        return grad_m


class SpatialAttention(Module):
    """Pixel-wise gate from channel-mean and channel-max descriptors.

    ``Ms(m) = sigmoid(conv7x7([mean_c(m); max_c(m)]))`` applied
    multiplicatively.
    """

    def __init__(
        self, kernel: int = 7, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.conv = Conv2d(2, 1, kernel, padding="same", rng=rng)
        self._cache: dict | None = None

    def forward(self, m: np.ndarray) -> np.ndarray:
        mean_c = m.mean(axis=1, keepdims=True)
        max_c = m.max(axis=1, keepdims=True)
        descriptor = np.concatenate([mean_c, max_c], axis=1)
        logits = self.conv(descriptor)
        scale = expit(logits)  # (N, 1, H, W)
        out = m * scale
        self._cache = {"m": m, "scale": scale, "max_c": max_c}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        m = self._cache["m"]
        scale = self._cache["scale"]
        channels = m.shape[1]
        grad_m = grad_output * scale
        grad_scale = (grad_output * m).sum(axis=1, keepdims=True)
        grad_logits = grad_scale * scale * (1.0 - scale)
        grad_descriptor = self.conv.backward(grad_logits)
        grad_m += grad_descriptor[:, 0:1] / channels
        max_mask = m == self._cache["max_c"]
        counts = max_mask.sum(axis=1, keepdims=True)
        grad_m += max_mask * (grad_descriptor[:, 1:2] / counts)
        return grad_m


class CBAM(Module):
    """Convolutional block attention: channel gate then spatial gate."""

    def __init__(
        self,
        channels: int,
        reduction: int = 4,
        spatial_kernel: int = 7,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channel = ChannelAttention(channels, reduction, rng=rng)
        self.spatial = SpatialAttention(spatial_kernel, rng=rng)

    def forward(self, m: np.ndarray) -> np.ndarray:
        return self.spatial(self.channel(m))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.channel.backward(self.spatial.backward(grad_output))


class AttentionGate(Module):
    """Attention-U-Net skip gate.

    ``psi = sigmoid(W_psi . relu(W_x x + W_g g))`` and the skip features
    are filtered as ``x * psi``.  Gating signal and skip features must
    share spatial size (guaranteed by the upsample-first decoder layout).
    """

    def __init__(
        self,
        skip_channels: int,
        gate_channels: int,
        inter_channels: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        inter = inter_channels or max(1, skip_channels // 2)
        self.theta_x = Conv2d(skip_channels, inter, 1, padding=0, rng=rng)
        self.phi_g = Conv2d(gate_channels, inter, 1, padding=0, rng=rng)
        self.psi = Conv2d(inter, 1, 1, padding=0, rng=rng)
        self.relu = ReLU()
        self.sigmoid = Sigmoid()
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, g: np.ndarray) -> np.ndarray:
        if x.shape[2:] != g.shape[2:]:
            raise ValueError(
                f"skip {x.shape[2:]} and gate {g.shape[2:]} spatial mismatch"
            )
        combined = self.relu(self.theta_x(x) + self.phi_g(g))
        gate = self.sigmoid(self.psi(combined))  # (N, 1, H, W)
        self._cache = {"x": x, "gate": gate}
        return x * gate

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (grad wrt skip x, grad wrt gating signal g)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        gate = self._cache["gate"]
        grad_x = grad_output * gate
        grad_gate = (grad_output * x).sum(axis=1, keepdims=True)
        grad_combined = self.relu.backward(
            self.psi.backward(self.sigmoid.backward(grad_gate))
        )
        grad_x += self.theta_x.backward(grad_combined)
        grad_g = self.phi_g.backward(grad_combined)
        return grad_x, grad_g
