"""Process-wide named counters and gauges.

One registry per process, guarded by a lock so the batch engine's
threads and the solver cascade can bump counters concurrently.  The
registry is *fork-aware* by construction: a forked worker inherits a
copy-on-write snapshot, takes :func:`metrics_snapshot` when it starts an
item, and ships :func:`counters_delta` back with the result so the
parent can :func:`merge_metrics` the movement without double counting.

Counter names are dotted, lowest-level owner first::

    amg_setup_cache.hits        amg_setup_cache.misses
    amg_setup_cache.evictions   pcg.iterations
    solver.attempts             solver.fallbacks
    train.overflow_steps        batch.items
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """Thread-safe map of counter / gauge names to values."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def counter_add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{"counters": {...}, "gauges": {...}}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def counters_delta(self, earlier: dict) -> dict:
        """Counter movement since an *earlier* :meth:`snapshot`.

        Only counters that actually moved appear, so worker payloads
        stay tiny.  Gauges ride along as absolute values (last writer
        wins on merge).
        """
        before = earlier.get("counters", {})
        with self._lock:
            counters = {
                name: value - before.get(name, 0.0)
                for name, value in self._counters.items()
                if value != before.get(name, 0.0)
            }
            gauges = dict(self._gauges)
        return {"counters": counters, "gauges": gauges}

    def merge(self, delta: dict) -> None:
        """Fold a :meth:`counters_delta` payload into this registry."""
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in delta.get("gauges", {}).items():
                self._gauges[name] = float(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


#: The process-wide registry every instrumented module writes to.
_REGISTRY = MetricsRegistry()


def counter_add(name: str, value: float = 1.0) -> None:
    """Add *value* to the named process-wide counter."""
    _REGISTRY.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set the named process-wide gauge."""
    _REGISTRY.gauge_set(name, value)


def metrics_snapshot() -> dict:
    """Snapshot of every counter and gauge."""
    return _REGISTRY.snapshot()


def counters_delta(earlier: dict) -> dict:
    """Counter movement since *earlier* (a :func:`metrics_snapshot`)."""
    return _REGISTRY.counters_delta(earlier)


def merge_metrics(delta: dict) -> None:
    """Fold a worker's shipped delta into this process's registry."""
    _REGISTRY.merge(delta)


def reset_metrics() -> None:
    """Zero every counter and gauge (tests and fresh CLI runs)."""
    _REGISTRY.reset()
