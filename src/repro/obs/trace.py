"""Nested, labelled spans on the monotonic clock.

A :class:`Span` records one named interval (``parse``, ``amg_setup``,
``pcg``, ``features``, ``inference``, a per-epoch ``train`` …) plus
free-form attributes and child spans.  A :class:`Tracer` owns one span
tree and a stack of open spans; :func:`trace` installs a tracer as the
calling thread's *active* trace, and :func:`span` attaches to whatever
is active — or, when nothing is, opens an implicit trace for its own
dynamic extent so deeply nested instrumentation still produces a
correctly nested subtree.  Library code therefore never threads a tracer
through its call signatures: the pipeline opens ``span("analyze")``, the
solver opens ``span("pcg")`` five frames down, and they nest.

Only the monotonic clock is read here (``time.perf_counter``): span
timestamps are intervals, never wall-clock data, so traces stay out of
the reproducibility story and the PR-4 ``wall-clock`` lint stays clean.
Forked batch workers inherit the same monotonic epoch on Linux, so their
span timestamps remain directly comparable with the parent's.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


def monotonic() -> float:
    """The one timing primitive in the repository (monotonic seconds).

    Every interval measurement outside this package goes through spans
    or this function — never ``time.time()`` and never a private
    ``perf_counter`` call (the ``wall-clock`` lint rule enforces both).
    """
    return time.perf_counter()


class Span:
    """One named interval with attributes and children.

    ``start``/``end`` are monotonic-clock readings; :attr:`duration` is
    the only value consumers should report.  A span whose ``end`` is not
    yet set reports the elapsed time so far.
    """

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = str(name)
        self.attrs = dict(attrs or {})
        self.start = monotonic()
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Span length in seconds (elapsed-so-far while still open)."""
        end = self.end if self.end is not None else monotonic()
        return max(end - self.start, 0.0)

    def close(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end is None:
            self.end = monotonic()

    # -- queries --------------------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span named *name* in the subtree (preorder), or None."""
        for candidate in self.iter_spans():
            if candidate.name == name:
                return candidate
        return None

    def total(self, name: str) -> float:
        """Summed duration of every span named *name* in the subtree."""
        return sum(s.duration for s in self.iter_spans() if s.name == name)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe tree; times become (start, duration) floats."""
        return {
            "name": self.name,
            "start": float(self.start),
            "duration": float(self.duration),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(payload["name"], payload.get("attrs"))
        span.start = float(payload["start"])
        span.end = span.start + float(payload["duration"])
        span.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span


class Tracer:
    """Owns one span tree and the stack of currently open spans.

    A tracer is single-threaded by design: it belongs to the thread that
    installed it via :func:`trace` (thread-local), and forked workers
    build their own and ship the serialized tree back (see
    :mod:`repro.core.batch`).
    """

    def __init__(self, name: str = "run", attrs: dict | None = None) -> None:
        self.root = Span(name, attrs)
        self._stack: list[Span] = [self.root]

    @property
    def active(self) -> Span:
        """The innermost open span (the attach point for children)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs):
        child = Span(name, attrs)
        self.active.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.close()
            if self._stack and self._stack[-1] is child:
                self._stack.pop()

    def attach(self, payload: dict) -> Span:
        """Graft a serialized span tree under the active span.

        Used by the batch engine to re-root a worker's trace inside the
        parent's; timestamps are comparable because fork preserves the
        monotonic epoch.
        """
        span = Span.from_dict(payload)
        self.active.children.append(span)
        return span

    def finish(self) -> Span:
        """Close every open span (root last) and return the root."""
        while self._stack:
            self._stack.pop().close()
        self._stack = [self.root]
        return self.root


#: Per-thread active tracer.  Forked children inherit the forking
#: thread's value; batch workers deliberately install their own.
_ACTIVE = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer installed on this thread, or None."""
    return getattr(_ACTIVE, "tracer", None)


@contextmanager
def trace(name: str = "run", **attrs):
    """Install a fresh :class:`Tracer` as this thread's active trace.

    Yields the tracer; on exit the tree is finished and the previously
    active tracer (if any) restored.  The caller keeps the tracer object
    and decides what to do with ``tracer.root`` (export, summarise,
    attach to diagnostics).
    """
    tracer = Tracer(name, attrs)
    previous = current_tracer()
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        tracer.finish()
        _ACTIVE.tracer = previous


@contextmanager
def span(name: str, **attrs):
    """Open a span under the active trace; yields the :class:`Span`.

    With no active trace, an implicit one is opened for this span's
    dynamic extent, so nested :func:`span` calls still build a correctly
    nested subtree reachable through the yielded span — this is how
    ``AnalysisResult.solver_seconds``-style fields stay meaningful in
    untraced runs.
    """
    tracer = current_tracer()
    if tracer is not None:
        with tracer.span(name, **attrs) as opened:
            yield opened
        return
    with trace(name, **attrs) as implicit:
        yield implicit.root
