"""Structured trace export: JSONL files and the human summary tree.

File schema (one JSON object per line):

- line 1 — ``{"kind": "header", "version": 1, "root": "<name>"}``
- one ``{"kind": "span", "id": int, "parent": int | null, "name": str,
  "start": float, "duration": float, "attrs": {...}}`` per span, ids
  assigned in preorder so a parent always precedes its children;
  ``start`` is the offset in seconds from the root span's start (the
  absolute monotonic reading never leaves the process);
- optionally one final ``{"kind": "metrics", "counters": {...},
  "gauges": {...}}`` line.

``python -m repro.obs --validate PATH`` checks a file against this
schema; the CI bench-smoke job runs it on a traced ``analyze``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import Span

#: Schema version stamped into (and demanded from) trace headers.
TRACE_VERSION = 1


def trace_lines(root: Span, metrics: dict | None = None) -> list[str]:
    """Serialize a span tree (plus optional metrics) to JSONL lines."""
    lines = [
        json.dumps(
            {"kind": "header", "version": TRACE_VERSION, "root": root.name}
        )
    ]
    origin = root.start
    counter = 0

    def emit(span: Span, parent: int | None) -> None:
        nonlocal counter
        span_id = counter
        counter += 1
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "id": span_id,
                    "parent": parent,
                    "name": span.name,
                    "start": max(span.start - origin, 0.0),
                    "duration": span.duration,
                    "attrs": span.attrs,
                }
            )
        )
        for child in span.children:
            emit(child, span_id)

    emit(root, None)
    if metrics is not None:
        lines.append(
            json.dumps(
                {
                    "kind": "metrics",
                    "counters": metrics.get("counters", {}),
                    "gauges": metrics.get("gauges", {}),
                }
            )
        )
    return lines


def write_trace(path, root: Span, metrics: dict | None = None) -> None:
    """Write the JSONL trace file for *root* (and optional metrics)."""
    Path(path).write_text("\n".join(trace_lines(root, metrics)) + "\n")


# -- validation ---------------------------------------------------------------


def _check_span(record: dict, seen_ids: set, lineno: int) -> list[str]:
    errors = []
    for key, types in (
        ("id", int),
        ("name", str),
        ("start", (int, float)),
        ("duration", (int, float)),
        ("attrs", dict),
    ):
        if not isinstance(record.get(key), types) or isinstance(
            record.get(key), bool
        ):
            errors.append(f"line {lineno}: span field {key!r} missing or wrong type")
    span_id = record.get("id")
    parent = record.get("parent")
    if isinstance(span_id, int):
        if span_id in seen_ids:
            errors.append(f"line {lineno}: duplicate span id {span_id}")
        seen_ids.add(span_id)
    if parent is None:
        if span_id != 0:
            errors.append(f"line {lineno}: only span 0 may be the root")
    elif not isinstance(parent, int) or parent not in seen_ids - {span_id}:
        errors.append(
            f"line {lineno}: parent {parent!r} does not precede this span"
        )
    if isinstance(record.get("duration"), (int, float)) and record["duration"] < 0:
        errors.append(f"line {lineno}: negative duration")
    if isinstance(record.get("start"), (int, float)) and record["start"] < 0:
        errors.append(f"line {lineno}: negative start offset")
    return errors


def validate_trace_lines(lines: list[str]) -> list[str]:
    """Schema errors in the given JSONL lines (empty list = valid)."""
    errors: list[str] = []
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append((lineno, json.loads(line)))
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc.msg})")
    if not records:
        return errors + ["empty trace file"]

    lineno, header = records[0]
    if header.get("kind") != "header":
        errors.append(f"line {lineno}: first record must be the header")
    elif header.get("version") != TRACE_VERSION:
        errors.append(
            f"line {lineno}: unsupported trace version {header.get('version')!r}"
        )

    seen_ids: set[int] = set()
    metrics_seen = False
    for lineno, record in records[1:]:
        kind = record.get("kind")
        if kind == "span":
            if metrics_seen:
                errors.append(f"line {lineno}: span after the metrics record")
            errors.extend(_check_span(record, seen_ids, lineno))
        elif kind == "metrics":
            if metrics_seen:
                errors.append(f"line {lineno}: more than one metrics record")
            metrics_seen = True
            for key in ("counters", "gauges"):
                if not isinstance(record.get(key), dict):
                    errors.append(
                        f"line {lineno}: metrics field {key!r} missing or wrong type"
                    )
        else:
            errors.append(f"line {lineno}: unknown record kind {kind!r}")
    if 0 not in seen_ids:
        errors.append("no root span (id 0)")
    return errors


def validate_trace_file(path) -> list[str]:
    """Schema errors for a trace file on disk (empty list = valid)."""
    return validate_trace_lines(Path(path).read_text().splitlines())


def registry_errors(lines: list[str]) -> list[str]:
    """Names in the trace that the contract registry does not declare.

    Complements the structural check in :func:`validate_trace_lines`:
    the schema says a span has *a* name, the registry
    (:mod:`repro.obs.registry`) says which names exist.  This catches
    dynamically-built names the static ``metrics-contract`` lint pass
    cannot see.  Kept separate from the schema check because ad-hoc
    traces (tests, exploratory scripts) legitimately use unregistered
    names — ``python -m repro.obs --validate`` applies both, with
    ``--no-registry`` to opt out.
    """
    from repro.obs import registry

    errors: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # the schema check reports these
        kind = record.get("kind")
        if kind == "span":
            name = record.get("name")
            if isinstance(name, str) and not registry.is_registered(
                "span", name
            ):
                hint = registry.suggest("span", name)
                suffix = f" (did you mean {hint!r}?)" if hint else ""
                errors.append(
                    f"line {lineno}: span name {name!r} is not in the "
                    f"repro.obs registry{suffix}"
                )
        elif kind == "metrics":
            for metric_kind, key in (("counter", "counters"), ("gauge", "gauges")):
                values = record.get(key)
                if not isinstance(values, dict):
                    continue
                for name in sorted(values):
                    if not registry.is_registered(metric_kind, name):
                        hint = registry.suggest(metric_kind, name)
                        suffix = f" (did you mean {hint!r}?)" if hint else ""
                        errors.append(
                            f"line {lineno}: {metric_kind} name {name!r} is "
                            f"not in the repro.obs registry{suffix}"
                        )
    return errors


# -- human summary ------------------------------------------------------------


def _format_span(span: Span, root_duration: float, depth: int) -> str:
    indent = "  " * depth
    label = f"{indent}{span.name}"
    if span.attrs:
        detail = ",".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        label += f"[{detail}]"
    share = ""
    if depth > 0 and root_duration > 0:
        share = f"  {100.0 * span.duration / root_duration:5.1f}%"
    return f"{label:<40s} {span.duration * 1e3:9.2f}ms{share}"


def summary_lines(
    root: Span, metrics: dict | None = None, max_depth: int = 6
) -> list[str]:
    """Indented per-span timing tree (CLI ``--debug`` output).

    Percentages are of the root span, so a stage's share of the whole
    run can be read straight off any line.
    """
    lines = ["trace:"]
    root_duration = root.duration

    def walk(span: Span, depth: int) -> None:
        if depth > max_depth:
            return
        lines.append("  " + _format_span(span, root_duration, depth))
        for child in span.children:
            walk(child, depth + 1)

    walk(root, 0)
    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            lines.append("  counters:")
            for name in sorted(counters):
                value = counters[name]
                rendered = f"{value:g}"
                lines.append(f"    {name} = {rendered}")
    return lines
