"""Trace-file validation: ``python -m repro.obs --validate PATH``.

Exit status 0 when every given file conforms to the JSONL trace schema
(see :mod:`repro.obs.export`) **and** every span/counter/gauge name it
contains is declared in the contract registry
(:mod:`repro.obs.registry`), 1 otherwise — the CI bench-smoke and
chaos-smoke jobs run this on traced batch runs, so a metric name that
only materialises dynamically at runtime still fails CI rather than
feeding a dead dashboard series.  ``--no-registry`` restores the
schema-only check for ad-hoc traces with experimental names.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import registry_errors, validate_trace_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "validate JSONL trace files against the schema and the "
            "metric/span name registry"
        ),
    )
    parser.add_argument(
        "--validate",
        nargs="+",
        required=True,
        metavar="PATH",
        help="trace file(s) to check",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the span/counter name registry cross-check",
    )
    args = parser.parse_args(argv)

    status = 0
    for path in args.validate:
        target = Path(path)
        if not target.exists():
            print(f"{path}: no such file", file=sys.stderr)
            status = 1
            continue
        errors = validate_trace_file(target)
        if not args.no_registry:
            errors.extend(registry_errors(target.read_text().splitlines()))
        if errors:
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            status = 1
        else:
            spans = sum(
                1
                for line in target.read_text().splitlines()
                if line.strip() and json.loads(line).get("kind") == "span"
            )
            print(f"{path}: ok ({spans} span(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
