"""Declared contract for every metric and span name in the project.

The observability layer is stringly typed at the emit sites —
``counter_add("amg_setup_cache.hits")`` — which is ergonomic but means a
typo'd name produces a silently-dead dashboard series rather than an
error.  This module is the single source of truth the tooling checks
those strings against:

- the ``metrics-contract`` analysis pass resolves every
  ``counter_add``/``gauge_set``/``span(...)`` string literal in ``src/``
  against this registry at lint time;
- ``python -m repro.obs --validate`` cross-checks the names that appear
  in an exported trace file against the same registry at runtime, so a
  name that only materialises dynamically (f-strings, dispatch tables)
  is still caught in CI.

Adding a new counter/gauge/span is a two-line change: emit it, and
declare it here.  Dynamic families (names built with a runtime suffix,
e.g. per-reason serial-fallback counters) are declared with a trailing
``.*`` wildcard that matches exactly one-or-more extra segments.
"""

from __future__ import annotations

#: Every exact counter name ``counter_add`` may be called with.
COUNTERS: frozenset[str] = frozenset(
    {
        "amg_setup_cache.evictions",
        "amg_setup_cache.hits",
        "amg_setup_cache.misses",
        "batch.items",
        "batch.pipeline_cache_hits",
        "batch.pipeline_cache_misses",
        "batch.serial_fallbacks",
        "incremental.aborted",
        "incremental.base_solves",
        "incremental.column_cache_hits",
        "incremental.column_solves",
        "incremental.deltas",
        "incremental.direct_solves",
        "incremental.factorizations",
        "incremental.fallbacks",
        "incremental.full_solves",
        "incremental.polish_iterations",
        "incremental.rebuilds",
        "incremental.setup_builds",
        "incremental.setup_cache_hits",
        "incremental.smw_solves",
        "incremental.solves",
        "incremental.structural_deltas",
        "incremental.warm_solves",
        "kernels.numba_gemm",
        "kernels.numba_spmv",
        "pad_placement.candidates",
        "pcg.iterations",
        "pool.workers_respawned",
        "serve.completed",
        "serve.failed",
        "serve.model_loads",
        "serve.model_reloads",
        "serve.rejected",
        "serve.requests",
        "shm.attaches",
        "shm.bytes_adopted",
        "shm.bytes_shared",
        "shm.inline_fallbacks",
        "shm.segments_leaked",
        "shm.segments_released",
        "shm.segments_swept",
        "solver.attempts",
        "solver.deadline_skips",
        "solver.fallbacks",
        "task.quarantined",
        "task.retries",
        "task.timeouts",
        "train.overflow_steps",
        "transport.pickled_bytes",
    }
)

#: Counter families with a runtime-built suffix.  ``name.*`` matches
#: ``name.anything`` (one or more extra dotted segments), never bare
#: ``name`` — declare the bare name separately if it is also emitted.
COUNTER_FAMILIES: frozenset[str] = frozenset(
    {
        # per-reason breakdown emitted next to batch.serial_fallbacks:
        # no_fork, fork_off_main_thread, fork_reentry, fork_worker_death,
        # nested_in_worker, pool_unusable
        "batch.serial_fallbacks.*",
    }
)

#: Every exact gauge name ``gauge_set`` may be called with.
GAUGES: frozenset[str] = frozenset(
    {
        "serve.active_jobs",
        "serve.queue_depth",
        "shm.segments_active",
    }
)

GAUGE_FAMILIES: frozenset[str] = frozenset()

#: Every span name ``span(...)``/``trace(...)`` may open.
SPANS: frozenset[str] = frozenset(
    {
        "amg_setup",
        "analysis",  # python -m repro.analysis total wall time
        "analysis.callgraph",  # callgraph passes only (CI budget assert)
        "analyze",
        "batch",
        "features",
        "fit",
        "generate",
        "imports",
        "incremental.factorize",
        "incremental.rebuild",
        "incremental.solve",
        "inference",
        "item",
        "model_build",
        "model_load",
        "pad_placement",
        "parse",
        "pcg",
        "run",  # Tracer default root
        "serve.request",  # per-request root span in the serving daemon
        "shm_attach",
        "shm_externalize",
        "simulate",
        "solve",
        "solve_attempt",
        "task_attempt",
        "train",
        "validate",
    }
)

SPAN_FAMILIES: frozenset[str] = frozenset()

_KINDS = {
    "counter": (COUNTERS, COUNTER_FAMILIES),
    "gauge": (GAUGES, GAUGE_FAMILIES),
    "span": (SPANS, SPAN_FAMILIES),
}


def _family_match(name: str, families: frozenset[str]) -> bool:
    for pattern in families:
        prefix = pattern[:-1]  # "batch.serial_fallbacks." from "....*"
        if name.startswith(prefix) and len(name) > len(prefix):
            return True
    return False


def is_registered(kind: str, name: str) -> bool:
    """True when *name* is a declared ``counter``/``gauge``/``span``."""
    try:
        exact, families = _KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown registry kind: {kind!r}") from None
    return name in exact or _family_match(name, families)


def registered_names(kind: str) -> frozenset[str]:
    """The exact (non-wildcard) names declared for *kind*."""
    try:
        exact, _ = _KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown registry kind: {kind!r}") from None
    return exact


def suggest(kind: str, name: str) -> str | None:
    """The closest registered name, for "did you mean" messages."""
    import difflib

    exact, _ = _KINDS.get(kind, (frozenset(), frozenset()))
    matches = difflib.get_close_matches(name, sorted(exact), n=1, cutoff=0.6)
    return matches[0] if matches else None


def unregistered_names(
    kind: str, names: "set[str] | frozenset[str]"
) -> list[str]:
    """The subset of *names* missing from the registry, sorted."""
    return sorted(name for name in names if not is_registered(kind, name))
