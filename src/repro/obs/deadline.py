"""Cooperative deadlines on the monotonic clock.

A deadline is a *budget* handed down through the call stack: the worker
pool gives each task attempt ``deadline_scope(task_budget)``, the solver
cascade asks :func:`deadline_remaining` before starting an expensive
stage, and :class:`~repro.solvers.guard.IterationGuard` trips mid-solve
once the budget is gone.  Scopes nest and only ever *tighten* — an inner
scope can shorten the effective deadline but never extend past its
enclosing scope — so a caller's budget is a hard ceiling for everything
it calls.

Deadlines live here (not in :mod:`repro.core`) because they are pure
timing state: this package owns the monotonic clock, and the solver
layer can consult the budget without importing the execution runtime.

The state is thread-local: a pool worker's deadline never leaks into
another thread, and an untraced, un-budgeted call sees ``None``
(= unlimited) everywhere.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.trace import monotonic

_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


@contextmanager
def deadline_scope(seconds: float):
    """Run the body under a deadline *seconds* from now.

    Nested scopes tighten: the effective deadline inside the body is the
    minimum of this scope's and every enclosing one's, so handing a
    callee a generous budget can never extend the caller's.
    """
    stack = _stack()
    at = monotonic() + float(seconds)
    if stack:
        at = min(at, stack[-1])
    stack.append(at)
    try:
        yield
    finally:
        stack.pop()


def deadline_remaining() -> float | None:
    """Seconds left in the innermost active deadline, or ``None``.

    May be negative once the deadline has passed — callers that only
    care about expiry should test ``<= 0``.
    """
    stack = _stack()
    if not stack:
        return None
    return stack[-1] - monotonic()


def deadline_active() -> bool:
    """True when the calling thread is inside a :func:`deadline_scope`."""
    return bool(_stack())
