"""Unified observability layer: tracing, metrics and run telemetry.

This package is the *only* module in the repository that touches timing
primitives directly (enforced by the ``wall-clock`` lint rule).  Every
other module expresses timing through :func:`span` / :func:`trace` and
reads durations back from the resulting :class:`Span` tree, so one run
produces one coherent account of where its time went instead of eight
modules each keeping private stopwatches.

Three pieces:

- :mod:`repro.obs.trace` — nested, labelled spans on the monotonic
  clock.  ``span("pcg")`` attaches to whatever trace is active on the
  calling thread, or times a detached subtree when none is (so
  ``SolveResult.setup_seconds``-style fields work with zero
  configuration).
- :mod:`repro.obs.metrics` — process-wide named counters and gauges
  (cache hits, fallback attempts, PCG iterations, overflow steps).
  Fork-aware: :mod:`repro.core.batch` workers snapshot the registry at
  item start and ship the delta back with each result.
- :mod:`repro.obs.export` — structured JSONL trace files plus the
  human-readable span summary tree; ``python -m repro.obs --validate``
  checks an emitted file against the schema.
- :mod:`repro.obs.deadline` — thread-local cooperative deadlines on the
  same monotonic clock: the worker pool scopes each task attempt, the
  solver cascade reads the remaining budget to short-circuit stages it
  cannot finish in time.
- :mod:`repro.obs.registry` — the declared contract of every
  counter/gauge/span name; the ``metrics-contract`` lint pass and the
  ``--validate`` trace check both resolve names against it.
"""

from repro.obs.deadline import (
    deadline_active,
    deadline_remaining,
    deadline_scope,
)
from repro.obs.export import (
    registry_errors,
    summary_lines,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from repro.obs.metrics import (
    counter_add,
    counters_delta,
    gauge_set,
    merge_metrics,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.trace import Span, Tracer, current_tracer, monotonic, span, trace

__all__ = [
    "Span",
    "Tracer",
    "counter_add",
    "counters_delta",
    "current_tracer",
    "deadline_active",
    "deadline_remaining",
    "deadline_scope",
    "gauge_set",
    "merge_metrics",
    "metrics_snapshot",
    "monotonic",
    "registry_errors",
    "reset_metrics",
    "span",
    "summary_lines",
    "trace",
    "validate_trace_file",
    "validate_trace_lines",
    "write_trace",
]
