"""IR-Fusion: static IR drop analysis combining numerical solution and ML.

Reproduction of Guo et al., "IR-Fusion: A Fusion Framework for Static IR
Drop Analysis Combining Numerical Solution and Machine Learning"
(DATE 2025).

The package is organised bottom-up:

- :mod:`repro.spice`    -- SPICE netlist AST, parser and writer.
- :mod:`repro.grid`     -- power-grid data model (layers, nodes, wires map).
- :mod:`repro.mna`      -- modified nodal analysis; conductance stamping.
- :mod:`repro.solvers`  -- CG / PCG / aggregation AMG / K-cycle / AMG-PCG.
- :mod:`repro.features` -- hierarchical numerical-structural feature maps.
- :mod:`repro.nn`       -- from-scratch numpy neural-network framework.
- :mod:`repro.models`   -- IRFusionNet and the six baseline models.
- :mod:`repro.data`     -- synthetic benchmark generation, augmentation,
  curriculum learning, ICCAD-2023 data format.
- :mod:`repro.train`    -- trainer and metrics.
- :mod:`repro.eval`     -- evaluation harness and report rendering.
- :mod:`repro.core`     -- configuration and the end-to-end pipeline.
"""

from typing import Any

__version__ = "1.0.0"

__all__ = ["FusionConfig", "IRFusionPipeline", "__version__"]


def __getattr__(name: str) -> Any:
    # Lazy top-level exports keep `import repro.spice` cheap: the heavy
    # pipeline stack only loads when the convenience names are touched.
    if name == "FusionConfig":
        from repro.core.config import FusionConfig

        return FusionConfig
    if name == "IRFusionPipeline":
        from repro.core.pipeline import IRFusionPipeline

        return IRFusionPipeline
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
