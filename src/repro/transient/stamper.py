"""Capacitance-matrix stamping in the reduced (non-pad) node space.

Stamping mirrors the conductance rules: a capacitor between two unknown
nodes adds to both diagonals and couples them negatively; a capacitor to
ground (decap) or to a pad adds only to the unknown node's diagonal — a
pad is an AC ground for the homogeneous term, and its (constant) voltage
contributes nothing to ``C dv/dt``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.grid.netlist import PowerGrid
from repro.mna.system import ReducedSystem
from repro.spice.ast import Capacitor
from repro.spice.nodes import GROUND


def build_capacitance_matrix(
    grid: PowerGrid,
    system: ReducedSystem,
    capacitors: list[Capacitor],
) -> sp.csr_matrix:
    """Assemble ``C`` over the reduced unknowns of *system*.

    Parameters
    ----------
    grid:
        The power grid the reduced system was stamped from (for node-name
        resolution).
    system:
        Defines the unknown ordering.
    capacitors:
        Capacitor elements; terminals may reference ground or pads.
    """
    row_of = {int(g): r for r, g in enumerate(system.unknown_indices)}

    def row_for(name: str) -> int | None:
        """Reduced row for a node name; None for ground/pads."""
        if name == GROUND:
            return None
        if name not in grid:
            raise ValueError(f"capacitor terminal {name!r} is not a grid node")
        return row_of.get(grid.index_of(name))

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n = system.size
    diag = np.zeros(n, dtype=float)
    for cap in capacitors:
        if cap.capacitance == 0.0:
            continue
        a = row_for(cap.node_a)
        b = row_for(cap.node_b)
        if a is None and b is None:
            continue  # cap between ground/pads: no dynamics in this space
        if a is not None:
            diag[a] += cap.capacitance
        if b is not None:
            diag[b] += cap.capacitance
        if a is not None and b is not None:
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((-cap.capacitance, -cap.capacitance))
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n), dtype=float)
    matrix.sum_duplicates()
    return matrix


def uniform_decap(
    grid: PowerGrid, farads_per_load: float
) -> list[Capacitor]:
    """Synthesis helper: one decap to ground at every load node."""
    if farads_per_load < 0:
        raise ValueError("capacitance must be non-negative")
    return [
        Capacitor(f"Cd{k}", node.name, GROUND, farads_per_load)
        for k, node in enumerate(grid.loads(), start=1)
    ]
