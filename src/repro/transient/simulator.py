"""Backward-Euler transient simulator with a constant time step.

Semi-discretised PG dynamics over the reduced unknowns:

    C dv/dt + G v = b(t)

Backward Euler with step *h* gives ``(G + C/h) v_{n+1} = b(t_{n+1}) +
(C/h) v_n``.  ``G + C/h`` is SPD and constant, so one sparse factorisation
(our :class:`DirectSolver`, standing in for KLU/CHOLMOD) serves every
step — the "constant time step" usage the paper's introduction describes.

The RHS ``b(t)`` contains the pad-coupling terms (time-invariant, taken
from the static stamping) plus the load-current waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.grid.netlist import PowerGrid
from repro.mna.stamper import build_reduced_system
from repro.mna.system import ReducedSystem
from repro.solvers.direct import DirectSolver
from repro.spice.ast import Capacitor
from repro.transient.stamper import build_capacitance_matrix
from repro.transient.waveforms import Waveform


@dataclass
class TransientResult:
    """Simulation trace.

    Attributes
    ----------
    times:
        Time points (including t=0, the DC operating point).
    drops:
        ``(T, N)`` per-time, per-grid-node IR drop in volts.
    """

    times: np.ndarray
    drops: np.ndarray

    @property
    def num_steps(self) -> int:
        return len(self.times) - 1

    def worst_drop_over_time(self) -> np.ndarray:
        """``(T,)`` worst drop at each time point."""
        return self.drops.max(axis=1)

    def envelope(self) -> np.ndarray:
        """``(N,)`` per-node worst drop over the whole window (dynamic
        signoff quantity)."""
        return self.drops.max(axis=0)

    def peak(self) -> tuple[float, float, int]:
        """(drop, time, node index) of the global dynamic worst case."""
        flat = int(np.argmax(self.drops))
        step, node = np.unravel_index(flat, self.drops.shape)
        return (
            float(self.drops[step, node]),
            float(self.times[step]),
            int(node),
        )


class TransientSimulator:
    """Constant-step backward-Euler integration of a PG with decaps."""

    def __init__(
        self,
        grid: PowerGrid,
        capacitors: list[Capacitor],
        supply_voltage: float | None = None,
    ) -> None:
        if supply_voltage is None:
            levels = {n.pad_voltage for n in grid.pads()}
            if len(levels) != 1:
                raise ValueError(
                    f"cannot infer a single supply voltage from pads: {levels}"
                )
            supply_voltage = levels.pop()
        self.grid = grid
        self.supply_voltage = supply_voltage
        self.system: ReducedSystem = build_reduced_system(grid)
        self.capacitance = build_capacitance_matrix(grid, self.system, capacitors)
        # pad-coupling part of the RHS (loads stripped out)
        self._pad_rhs = self.system.rhs.copy()
        row_of = {
            int(g): r for r, g in enumerate(self.system.unknown_indices)
        }
        for node in grid.loads():
            row = row_of.get(node.index)
            if row is not None:
                self._pad_rhs[row] += node.load_current
        self._row_of = row_of

    def _load_rows(self, waveforms: dict[int, Waveform]) -> list[tuple[int, Waveform]]:
        rows = []
        for node_index, waveform in waveforms.items():
            row = self._row_of.get(node_index)
            if row is None:
                raise ValueError(
                    f"node {node_index} is a pad or unknown; cannot load it"
                )
            rows.append((row, waveform))
        return rows

    def dc_operating_point(self, waveforms: dict[int, Waveform], t: float = 0.0):
        """Static solve with the waveform currents frozen at time *t*."""
        rhs = self._pad_rhs.copy()
        for row, waveform in self._load_rows(waveforms):
            rhs[row] -= waveform(t)
        x = DirectSolver().solve(self.system.matrix, rhs).x
        return x

    def run(
        self,
        waveforms: dict[int, Waveform],
        t_end: float,
        dt: float,
    ) -> TransientResult:
        """Integrate from the t=0 operating point to *t_end*.

        Parameters
        ----------
        waveforms:
            ``{grid node index: waveform}``; unlisted loads draw zero.
        t_end, dt:
            Window length and (constant) step size.
        """
        if dt <= 0 or t_end <= 0:
            raise ValueError("t_end and dt must be positive")
        steps = int(round(t_end / dt))
        if steps < 1:
            raise ValueError("window shorter than one step")

        load_rows = self._load_rows(waveforms)
        lhs = sp.csr_matrix(self.system.matrix + self.capacitance / dt)
        solver = DirectSolver()

        x = self.dc_operating_point(waveforms, t=0.0)
        times = [0.0]
        drops = [self.supply_voltage - self.system.scatter(x)]
        c_over_h = self.capacitance / dt
        for n in range(1, steps + 1):
            t = n * dt
            rhs = self._pad_rhs + c_over_h @ x
            for row, waveform in load_rows:
                rhs[row] -= waveform(t)
            x = solver.solve(lhs, rhs).x
            times.append(t)
            drops.append(self.supply_voltage - self.system.scatter(x))
        return TransientResult(
            times=np.array(times), drops=np.stack(drops)
        )
