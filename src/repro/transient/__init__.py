"""Transient (dynamic) IR-drop analysis.

The paper's introduction situates static analysis next to transient
simulation ("direct solvers such as KLU and Cholmod are usually employed
for transient simulation with a constant time step"); MAVIREC targets the
dynamic problem.  This package provides that substrate: capacitor
stamping, piecewise-linear current waveforms, and a backward-Euler
integrator that factors ``G + C/h`` once per (constant) step size and
reuses it across the whole simulation window — exactly the KLU/Cholmod
usage pattern.
"""

from repro.transient.simulator import TransientResult, TransientSimulator
from repro.transient.stamper import build_capacitance_matrix
from repro.transient.waveforms import (
    ConstantWaveform,
    PiecewiseLinearWaveform,
    PulseWaveform,
    StepWaveform,
)

__all__ = [
    "ConstantWaveform",
    "PiecewiseLinearWaveform",
    "PulseWaveform",
    "StepWaveform",
    "TransientResult",
    "TransientSimulator",
    "build_capacitance_matrix",
]
