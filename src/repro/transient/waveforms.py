"""Current waveforms for transient analysis.

Each waveform is a callable ``i(t) -> amps``; vectorised sampling over a
time grid is provided by :meth:`Waveform.sample`.  The PWL form matches
SPICE ``PWL(t1 v1 t2 v2 ...)`` semantics: linear interpolation between
breakpoints, clamped to the end values outside the span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Waveform:
    """Base: scalar evaluation plus vectorised sampling."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Evaluate on a whole time grid."""
        return np.array([self(float(t)) for t in times], dtype=float)


@dataclass(frozen=True)
class ConstantWaveform(Waveform):
    """A DC draw: ``i(t) = value``."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.full(len(times), self.value, dtype=float)


@dataclass(frozen=True)
class StepWaveform(Waveform):
    """Jump from ``before`` to ``after`` at ``at_time``."""

    before: float
    after: float
    at_time: float

    def __call__(self, t: float) -> float:
        return self.after if t >= self.at_time else self.before


@dataclass(frozen=True)
class PulseWaveform(Waveform):
    """Rectangular pulse: ``high`` on [start, start+width), else ``low``."""

    low: float
    high: float
    start: float
    width: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("pulse width must be positive")

    def __call__(self, t: float) -> float:
        if self.start <= t < self.start + self.width:
            return self.high
        return self.low


class PiecewiseLinearWaveform(Waveform):
    """SPICE-style PWL waveform from (time, value) breakpoints."""

    def __init__(self, points: list[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("PWL needs at least two breakpoints")
        times = [p[0] for p in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL breakpoints must be strictly increasing")
        self._times = np.array(times, dtype=float)
        self._values = np.array([p[1] for p in points], dtype=float)

    def __call__(self, t: float) -> float:
        return float(np.interp(t, self._times, self._values))

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.interp(times, self._times, self._values)

    @property
    def duration(self) -> float:
        return float(self._times[-1] - self._times[0])
