"""Analysis-as-a-service: a persistent daemon over the fusion pipeline.

Batch analysis (:mod:`repro.core.batch`) amortises model-load and AMG
setup cost *within* one invocation; this package amortises it *across*
invocations.  ``python -m repro.serve --model-dir runs/models`` starts a
long-lived HTTP/JSON daemon whose three warm layers each remove a cold
start from the request path:

- the **model registry** (:mod:`repro.serve.registry`) loads every
  checkpoint pair once and hot-reloads on file change;
- the **AMG setup cache** (:mod:`repro.solvers.cache`) is shared across
  requests, so repeat decks skip hierarchy construction entirely;
- in pool-dispatch mode, a **keep-alive** handle
  (:meth:`repro.core.pool.WorkerPool.keep_alive`) pins warm spawn
  workers — and their fingerprint-keyed pipeline caches — between
  requests.

Admission control (bounded queue, ``queue_full``/``draining``
rejections), cooperative per-request deadlines, per-request
:mod:`repro.obs` traces and a graceful SIGTERM drain make the daemon
safe to put behind real clients.  See ``docs/serving.md``.
"""

from repro.serve.app import ServeDaemon
from repro.serve.registry import (
    ModelEntry,
    ModelLoadError,
    ModelNotFoundError,
    ModelRegistry,
)
from repro.serve.service import (
    AnalysisService,
    AnalyzeRequest,
    DrainingError,
    Job,
    QueueFullError,
    RequestError,
    ServeOptions,
)

__all__ = [
    "AnalysisService",
    "AnalyzeRequest",
    "DrainingError",
    "Job",
    "ModelEntry",
    "ModelLoadError",
    "ModelNotFoundError",
    "ModelRegistry",
    "QueueFullError",
    "RequestError",
    "ServeDaemon",
    "ServeOptions",
]
