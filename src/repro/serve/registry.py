"""Warm model registry for the serving daemon.

A daemon that rebuilds the model for every request pays the load cost —
``model_build`` + weight copy + shape verification — on the request
path, exactly the overhead :mod:`repro.core.batch` built its
fingerprint-keyed worker-side pipeline cache to avoid.  The registry is
the parent-process counterpart: every ``<name>.npz`` / ``<name>.npz.json``
checkpoint pair in the model directory is loaded **once** through
:meth:`repro.core.pipeline.IRFusionPipeline.from_model_file` (the same
load path the CLI uses) and kept warm, keyed by name.

Hot reload is stat-based: each lookup compares the stored
``(mtime_ns, size)`` stamp of both files against the filesystem and
reloads only when a retrain actually replaced the checkpoint.  Because
:func:`~repro.nn.serialize.save_checkpoint` installs atomically via
``os.replace``, a lookup never observes a half-written archive — it sees
either the old stamp (old entry stays valid) or the new one (reload).
The entry's weight fingerprint (:func:`~repro.nn.serialize.state_fingerprint`)
rides into every response, and in pool-dispatch mode it is what keys the
worker-side pipeline cache — a reloaded model changes the fingerprint, so
warm workers can never serve stale weights.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.core.pipeline import IRFusionPipeline
from repro.nn.serialize import state_fingerprint
from repro.obs import counter_add

_WEIGHTS_SUFFIX = ".npz"
_META_SUFFIX = ".npz.json"


class ModelNotFoundError(LookupError):
    """The requested model name has no checkpoint pair in the model dir."""


class ModelLoadError(RuntimeError):
    """A checkpoint pair exists but could not be loaded into a pipeline."""


@dataclass
class ModelEntry:
    """One warm, ready-to-analyze model.

    ``stamp`` is the ``(mtime_ns, size)`` pair of both checkpoint files
    at load time; a mismatch on lookup triggers a hot reload.
    """

    name: str
    path: str
    pipeline: IRFusionPipeline
    fingerprint: str
    in_channels: int
    stamp: tuple

    def describe(self) -> dict:
        """JSON-ready row for ``GET /models``."""
        config = self.pipeline.config
        return {
            "name": self.name,
            "loaded": True,
            "fingerprint": self.fingerprint,
            "in_channels": self.in_channels,
            "pixels": config.pixels,
            "base_channels": config.base_channels,
            "depth": config.depth,
            "solver_iterations": config.solver_iterations,
        }


class ModelRegistry:
    """Named, warm, hot-reloadable pipelines backed by a checkpoint dir.

    *config_overrides* adjust execution knobs on every loaded pipeline
    (``sanitize=True``, ``backend="numba"``, ...) without touching the
    recorded architecture — they pass straight through to
    :meth:`IRFusionPipeline.from_model_file`.
    """

    def __init__(self, model_dir, **config_overrides) -> None:
        self._dir = os.fspath(model_dir)
        self._overrides = dict(config_overrides)
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}

    @property
    def model_dir(self) -> str:
        return self._dir

    # -- discovery -------------------------------------------------------------

    def discover(self) -> list[str]:
        """Sorted names of every complete checkpoint pair on disk."""
        try:
            files = set(os.listdir(self._dir))
        except FileNotFoundError:
            raise ModelNotFoundError(
                f"model directory {self._dir!r} does not exist"
            ) from None
        return sorted(
            name[: -len(_WEIGHTS_SUFFIX)]
            for name in files
            if name.endswith(_WEIGHTS_SUFFIX)
            and name[: -len(_WEIGHTS_SUFFIX)] + _META_SUFFIX in files
        )

    def resolve(self, name: str | None) -> str:
        """Map a request's model field to a concrete name.

        ``None`` means "the only model" — legal exactly when the
        directory holds one checkpoint pair, so single-model deployments
        need no client-side configuration.
        """
        if name is not None:
            return str(name)
        names = self.discover()
        if len(names) == 1:
            return names[0]
        if not names:
            raise ModelNotFoundError(
                f"model directory {self._dir!r} contains no "
                f"<name>{_WEIGHTS_SUFFIX} / <name>{_META_SUFFIX} checkpoint "
                "pairs (write one with `repro train --out ...`)"
            )
        raise ModelNotFoundError(
            "request omitted 'model' but the registry serves "
            f"{len(names)} models: {', '.join(names)}"
        )

    # -- lookup / load ---------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, name + _WEIGHTS_SUFFIX)

    @staticmethod
    def _stamp(path: str) -> tuple:
        weights = os.stat(path)
        meta = os.stat(path + ".json")
        return (
            weights.st_mtime_ns,
            weights.st_size,
            meta.st_mtime_ns,
            meta.st_size,
        )

    def get(self, name: str | None) -> ModelEntry:
        """The warm entry for *name*, (re)loading from disk if needed."""
        name = self.resolve(name)
        path = self._path(name)
        with self._lock:
            try:
                stamp = self._stamp(path)
            except FileNotFoundError:
                self._entries.pop(name, None)
                available = ", ".join(self.discover()) or "<none>"
                raise ModelNotFoundError(
                    f"no model named {name!r} in {self._dir!r} "
                    f"(available: {available})"
                ) from None
            entry = self._entries.get(name)
            if entry is not None and entry.stamp == stamp:
                return entry
            reloading = entry is not None
            try:
                pipeline = IRFusionPipeline.from_model_file(
                    path, **self._overrides
                )
            except Exception as exc:
                # A broken file on disk invalidates any stale entry too:
                # serving old weights while the operator believes a new
                # checkpoint is live would be silently wrong.
                self._entries.pop(name, None)
                raise ModelLoadError(
                    f"failed to load model {name!r} from {path!r}: {exc}"
                ) from exc
            entry = ModelEntry(
                name=name,
                path=path,
                pipeline=pipeline,
                # _trained_channels is stamped by the load path above; it
                # is the channel count inference will demand of decks.
                in_channels=int(pipeline._trained_channels),
                fingerprint=state_fingerprint(pipeline.model.state_dict()),
                stamp=stamp,
            )
            self._entries[name] = entry
            counter_add(
                "serve.model_reloads" if reloading else "serve.model_loads"
            )
            return entry

    def warm(self) -> list[ModelEntry]:
        """Eagerly load every discovered model (daemon startup).

        Fail-fast by design: a daemon that cannot load its advertised
        models should refuse to start, not 500 on first use.
        """
        return [self.get(name) for name in self.discover()]

    def describe(self) -> list[dict]:
        """JSON-ready rows for ``GET /models`` (disk is the source of truth)."""
        rows = []
        for name in self.discover():
            with self._lock:
                entry = self._entries.get(name)
            if entry is not None:
                rows.append(entry.describe())
            else:
                rows.append({"name": name, "loaded": False})
        return rows
