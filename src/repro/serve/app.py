"""HTTP/JSON front end for the analysis service.

Deliberately stdlib-only (``http.server``): the daemon must run in the
same minimal environment as the rest of the repository, so the transport
layer is a thin JSON adapter over :class:`~repro.serve.service.AnalysisService`
rather than a web-framework dependency.  ``ThreadingHTTPServer`` gives
one thread per connection, which is exactly right here — handlers only
parse JSON and block on job events; all heavy work happens on the
service's executor threads behind admission control.

Endpoints
---------
- ``POST /analyze`` — submit a deck.  Synchronous by default (the
  response is the finished job document); ``"async": true`` returns
  ``202`` with a job id to poll.
- ``GET  /jobs/<id>`` — job document (state, result or error).
- ``GET  /models`` — the registry's view of the model directory.
- ``GET  /healthz`` — liveness + queue occupancy.
- ``GET  /metrics`` — full counter/gauge snapshot plus AMG cache stats.

:class:`ServeDaemon` owns the server plus the service and provides the
graceful-drain choreography: :meth:`ServeDaemon.begin_drain` (called
from the SIGTERM handler) is signal-safe — it only spawns the drainer
thread, which stops admission, waits out in-flight jobs and then stops
the accept loop.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import metrics_snapshot
from repro.serve.registry import ModelNotFoundError, ModelRegistry
from repro.serve.service import (
    AnalysisService,
    AnalyzeRequest,
    DrainingError,
    QueueFullError,
    RequestError,
    ServeOptions,
)

#: Hard cap on request body size; a deck bigger than this is almost
#: certainly a mistake, and bounding it keeps a bad client from making
#: the daemon buffer arbitrary memory.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Set by ServeDaemon right after construction.
    service: AnalysisService
    verbose: bool = False


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    # Keep-alive requires Content-Length on every response; _send_json
    # always sets it.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- GET -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            stats = self.service.stats()
            status = "draining" if stats["draining"] else "ok"
            self._send_json(200, {"status": status, **stats})
        elif path == "/metrics":
            from repro.solvers.cache import setup_cache_stats

            snapshot = metrics_snapshot()
            self._send_json(
                200,
                {
                    "counters": snapshot["counters"],
                    "gauges": snapshot["gauges"],
                    "amg_setup_cache": setup_cache_stats().to_dict(),
                    "serve": self.service.stats(),
                },
            )
        elif path == "/models":
            try:
                rows = self.service.registry.describe()
            except ModelNotFoundError as exc:
                self._send_json(
                    500, {"error": "model_dir_missing", "message": str(exc)}
                )
                return
            self._send_json(200, {"models": rows})
        elif path.startswith("/jobs/"):
            job = self.service.get_job(path[len("/jobs/") :])
            if job is None:
                self._send_json(
                    404, {"error": "unknown_job", "message": self.path}
                )
            else:
                status = job.status if job.done.is_set() else 200
                self._send_json(status, job.describe())
        else:
            self._send_json(
                404, {"error": "not_found", "message": f"no route {path!r}"}
            )

    # -- POST ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/analyze":
            self._send_json(
                404, {"error": "not_found", "message": f"no route {path!r}"}
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_json(
                400, {"error": "bad_request", "message": "bad Content-Length"}
            )
            return
        if length > MAX_BODY_BYTES:
            self._send_json(
                413,
                {
                    "error": "too_large",
                    "message": f"body exceeds {MAX_BODY_BYTES} bytes",
                },
            )
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(
                400,
                {"error": "bad_request", "message": f"body is not JSON: {exc}"},
            )
            return
        try:
            request = AnalyzeRequest.from_payload(payload)
            job = self.service.submit(request)
        except RequestError as exc:
            self._send_json(400, {"error": "bad_request", "message": str(exc)})
            return
        except QueueFullError as exc:
            self._send_json(
                429,
                {
                    "error": "queue_full",
                    "message": str(exc),
                    "queue_limit": self.service.options.queue_limit,
                },
            )
            return
        except DrainingError as exc:
            self._send_json(503, {"error": "draining", "message": str(exc)})
            return

        if isinstance(payload, dict) and payload.get("async"):
            self._send_json(
                202,
                {
                    "job_id": job.id,
                    "state": job.state,
                    "poll": f"/jobs/{job.id}",
                },
            )
            return
        job.done.wait()
        self._send_json(job.status, job.describe())


class ServeDaemon:
    """The HTTP server + analysis service pair, with drain choreography."""

    def __init__(
        self,
        model_dir=None,
        *,
        registry: ModelRegistry | None = None,
        options: ServeOptions | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
    ) -> None:
        if registry is None:
            if model_dir is None:
                raise ValueError("provide model_dir or a ModelRegistry")
            registry = ModelRegistry(model_dir)
        self.service = AnalysisService(registry, options)
        self._httpd = _ServeHTTPServer((host, port), _Handler)
        self._httpd.service = self.service
        self._httpd.verbose = verbose
        self._thread: threading.Thread | None = None
        self._drainer: threading.Thread | None = None
        self._lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — port 0 resolves to the real one."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve on a background thread (tests / embedding); returns address."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until a drain stops the accept loop."""
        self.service.start()
        self._httpd.serve_forever()

    def begin_drain(self, timeout: float | None = None) -> None:
        """Start graceful shutdown; safe to call from a signal handler.

        Only spawns the drainer thread (no locks are waited on in the
        signal context beyond the daemon's own); the drainer stops
        admission, lets queued and in-flight jobs finish (bounded by
        *timeout*), then stops the accept loop so
        :meth:`serve_forever` returns.
        """
        with self._lock:
            if self._drainer is not None:
                return
            self._drainer = threading.Thread(
                target=self._drain,
                args=(timeout,),
                name="serve-drain",
                daemon=True,
            )
            self._drainer.start()

    def _drain(self, timeout: float | None) -> None:
        self.service.drain(timeout)
        self._httpd.shutdown()

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain, wait for the loops to exit, and release the socket."""
        self.begin_drain(timeout)
        drainer = self._drainer
        if drainer is not None:
            drainer.join(timeout=None if timeout is None else timeout + 5.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd.server_close()
