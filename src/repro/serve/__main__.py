"""``python -m repro.serve`` — the analysis daemon's entry point.

Also backs the ``repro serve`` CLI subcommand: :func:`add_serve_arguments`
installs the flag set on any argparse parser and :func:`run` executes a
parsed namespace, so the two entry points cannot drift.

Exit codes follow the CLI convention: ``0`` clean (drained) exit, ``2``
startup/configuration error (bad model dir, unloadable checkpoint).
SIGTERM and SIGINT both trigger a graceful drain — in-flight and queued
jobs finish (bounded by ``--drain-timeout``) before the process exits 0.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from repro.serve.app import ServeDaemon
from repro.serve.registry import ModelLoadError, ModelNotFoundError, ModelRegistry
from repro.serve.service import ServeOptions


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the daemon's flags (shared with ``repro serve``)."""
    parser.add_argument(
        "--model-dir",
        required=True,
        help="directory of <name>.npz / <name>.npz.json checkpoint pairs",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor threads (1 keeps AMG-cache accounting deterministic)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="max queued jobs before requests get 429 queue_full",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="per-request budget in seconds when the request sets none",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="directory for 'trace': 'file' requests (created if missing)",
    )
    parser.add_argument(
        "--pool-jobs",
        type=int,
        default=0,
        help="dispatch analysis to N crash-isolated pool workers (0 = in-process)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let in-flight jobs finish on SIGTERM/SIGINT",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the numerics sanitizer on every loaded model",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log one line per HTTP request to stderr",
    )


def run(args: argparse.Namespace) -> int:
    """Start the daemon from parsed arguments; blocks until drained."""
    overrides = {"sanitize": True} if args.sanitize else {}
    registry = ModelRegistry(args.model_dir, **overrides)
    try:
        entries = registry.warm()
    except (ModelNotFoundError, ModelLoadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(
            f"error: no checkpoint pairs in {args.model_dir!r}; "
            "write one with `repro train --out <dir>/<name>.npz`",
            file=sys.stderr,
        )
        return 2
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    try:
        options = ServeOptions(
            workers=args.workers,
            queue_limit=args.queue_limit,
            default_deadline=args.default_deadline,
            trace_dir=args.trace_dir,
            pool_jobs=args.pool_jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    daemon = ServeDaemon(
        registry=registry,
        options=options,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
    )

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        daemon.begin_drain(args.drain_timeout)

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    for entry in entries:
        print(
            f"model {entry.name}: fingerprint {entry.fingerprint[:12]} "
            f"({entry.pipeline.config.pixels}px, "
            f"{entry.in_channels} channels)",
            flush=True,
        )
    host, port = daemon.address
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    daemon.serve_forever()
    # serve_forever returns only after a drain stopped the accept loop.
    daemon.stop(timeout=args.drain_timeout)
    print("repro-serve drained; exiting", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="persistent IR-drop analysis daemon with warm models",
    )
    add_serve_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
