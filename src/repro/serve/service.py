"""Request queue, admission control and job execution for the daemon.

The service is the HTTP-free core of ``repro.serve``: it validates
request payloads (:class:`AnalyzeRequest`), admits them into a bounded
queue (:meth:`AnalysisService.submit` — full queue and draining are
typed rejections, never silent drops), and runs them on a small fixed
set of executor threads against the warm
:class:`~repro.serve.registry.ModelRegistry`.

Two execution modes:

- **in-process** (default): the request runs on the executor thread
  itself, so every request shares the process-global AMG setup cache
  (:mod:`repro.solvers.cache`) — the second request for the same deck
  reuses the first one's hierarchy and skips the dominant setup cost.
- **pool dispatch** (``pool_jobs > 0``): the deck ships to the
  supervised spawn pool as a :class:`~repro.core.batch._PipelineTask`,
  buying crash isolation (a segfaulting deck kills a worker, not the
  daemon) at the price of per-worker caches.  The service holds a
  :meth:`~repro.core.pool.WorkerPool.keep_alive` handle for its whole
  lifetime so warm workers — and their fingerprint-keyed pipeline
  caches — survive arbitrary request gaps.

Every job runs under its own ``serve.request`` trace; the resulting span
tree is returned inline (``"trace": "inline"``) or written to the
configured trace directory (``"trace": "file"``).  Deadlines map onto
:func:`repro.obs.deadline_scope`, the same cooperative budget the solver
cascade already honours, so an expensive stage that cannot finish in
time short-circuits instead of blowing the request budget.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from contextlib import ExitStack

from repro.obs import (
    counter_add,
    counters_delta,
    deadline_scope,
    gauge_set,
    metrics_snapshot,
    monotonic,
    trace,
)
from repro.obs.export import trace_lines, write_trace
from repro.serve.registry import (
    ModelLoadError,
    ModelNotFoundError,
    ModelRegistry,
)
from repro.solvers.guard import SolverFailure
from repro.spice.parser import SpiceParseError


class RequestError(ValueError):
    """The request payload is malformed or unsupported (HTTP 400)."""


class QueueFullError(RuntimeError):
    """Admission control rejected the request: queue at capacity (429)."""


class DrainingError(RuntimeError):
    """The daemon is draining and admits no new work (HTTP 503)."""


_TRACE_MODES = ("none", "inline", "file")
_REQUEST_FIELDS = frozenset(
    {
        "netlist",
        "netlist_path",
        "model",
        "mode",
        "deadline_seconds",
        "trace",
        "async",
    }
)


@dataclass(frozen=True)
class ServeOptions:
    """Daemon-level knobs (one instance for the service's lifetime).

    workers:
        Executor threads.  The default of 1 serialises execution, which
        keeps the shared AMG setup cache's hit accounting deterministic:
        N identical queued decks report exactly 1 miss + N-1 hits.
    queue_limit:
        Maximum *queued* (not yet running) jobs before admission control
        returns ``queue_full``.
    default_deadline:
        Per-request budget in seconds applied when the request does not
        carry its own ``deadline_seconds``; ``None`` = unlimited.
    trace_dir:
        Directory for ``"trace": "file"`` requests; ``None`` rejects
        them at admission.
    pool_jobs:
        ``> 0`` dispatches execution to the supervised spawn pool with
        this worker count (crash isolation); ``0`` runs in-process.
    history_limit:
        Completed jobs kept addressable via ``GET /jobs/<id>``.
    """

    workers: int = 1
    queue_limit: int = 8
    default_deadline: float | None = None
    trace_dir: str | None = None
    pool_jobs: int = 0
    history_limit: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.pool_jobs < 0:
            raise ValueError("pool_jobs must be >= 0")
        if self.history_limit < 1:
            raise ValueError("history_limit must be >= 1")


@dataclass(frozen=True)
class AnalyzeRequest:
    """A validated ``POST /analyze`` payload."""

    netlist: str | None = None
    netlist_path: str | None = None
    model: str | None = None
    mode: str = "static"
    deadline_seconds: float | None = None
    trace: str = "none"

    @classmethod
    def from_payload(cls, payload) -> "AnalyzeRequest":
        """Parse and validate a decoded JSON body; raises RequestError."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(payload) - _REQUEST_FIELDS)
        if unknown:
            raise RequestError(f"unknown request fields: {', '.join(unknown)}")

        netlist = payload.get("netlist")
        netlist_path = payload.get("netlist_path")
        if (netlist is None) == (netlist_path is None):
            raise RequestError(
                "provide exactly one of 'netlist' (SPICE deck text) or "
                "'netlist_path' (server-side deck file)"
            )
        if netlist is not None and not isinstance(netlist, str):
            raise RequestError("'netlist' must be a string")
        if netlist_path is not None and not isinstance(netlist_path, str):
            raise RequestError("'netlist_path' must be a string")

        model = payload.get("model")
        if model is not None and not isinstance(model, str):
            raise RequestError("'model' must be a string")

        mode = payload.get("mode", "static")
        if mode != "static":
            raise RequestError(
                f"mode {mode!r} is not supported; this daemon performs "
                "'static' IR-drop analysis only"
            )

        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise RequestError(
                    "'deadline_seconds' must be a number"
                ) from None
            if deadline <= 0:
                raise RequestError("'deadline_seconds' must be > 0")

        trace_mode = payload.get("trace", "none")
        if trace_mode not in _TRACE_MODES:
            raise RequestError(
                f"unknown trace mode {trace_mode!r}; expected one of "
                f"{_TRACE_MODES}"
            )
        return cls(
            netlist=netlist,
            netlist_path=netlist_path,
            model=model,
            mode=mode,
            deadline_seconds=deadline,
            trace=trace_mode,
        )


class Job:
    """One admitted request moving through queued → running → done/failed."""

    __slots__ = (
        "id",
        "request",
        "state",
        "result",
        "error",
        "status",
        "done",
        "submitted",
        "started",
        "finished",
    )

    def __init__(self, job_id: str, request: AnalyzeRequest) -> None:
        self.id = job_id
        self.request = request
        self.state = "queued"
        self.result: dict | None = None
        self.error: dict | None = None
        self.status = 200
        self.done = threading.Event()
        self.submitted = monotonic()
        self.started: float | None = None
        self.finished: float | None = None

    def fail(self, status: int, kind: str, message: str) -> None:
        self.state = "failed"
        self.status = status
        self.error = {"error": kind, "message": message}

    def describe(self) -> dict:
        """JSON-ready job document (``GET /jobs/<id>`` and sync replies)."""
        body: dict = {"job_id": self.id, "state": self.state}
        if self.started is not None:
            body["queued_seconds"] = self.started - self.submitted
        if self.finished is not None and self.started is not None:
            body["run_seconds"] = self.finished - self.started
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error["error"]
            body["message"] = self.error["message"]
        return body


def _classify(exc: Exception) -> tuple[int, str]:
    """(HTTP status, machine-readable kind) for an execution failure."""
    if isinstance(exc, RequestError):
        return 400, "bad_request"
    if isinstance(exc, ModelNotFoundError):
        return 404, "model_not_found"
    if isinstance(exc, ModelLoadError):
        return 500, "model_load_failed"
    if isinstance(exc, SolverFailure):
        return 500, "solver_failure"
    if isinstance(exc, (SpiceParseError, FileNotFoundError)):
        return 400, "bad_input"
    if isinstance(exc, ValueError):
        return 400, "bad_input"
    return 500, "internal"


class AnalysisService:
    """Bounded-queue executor over a warm model registry."""

    def __init__(
        self,
        registry: ModelRegistry,
        options: ServeOptions | None = None,
    ) -> None:
        self.registry = registry
        self.options = options or ServeOptions()
        self._cond = threading.Condition()
        self._queue: deque[Job] = deque()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._active = 0
        self._started = False
        self._draining = False
        self._stopped = False
        self._keepalive = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Warm the registry and spin up executor threads (idempotent).

        Every discovered model loads *before* the service accepts work:
        a daemon that cannot serve its advertised models should fail at
        startup, not 500 on first request.
        """
        with self._cond:
            if self._started:
                return
        self.registry.warm()
        with self._cond:
            if self._started:
                return
            self._started = True
        if self.options.pool_jobs > 0:
            from repro.core.pool import get_pool

            # Pin the pool for the daemon's lifetime: without this the
            # supervisor idle-retires warm workers between requests and
            # every cold request pays the respawn + model rebuild.
            self._keepalive = get_pool(self.options.pool_jobs).keep_alive()
        for index in range(self.options.workers):
            thread = threading.Thread(
                target=self._work,
                name=f"serve-exec-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining or self._stopped

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish queued + running work, stop executors.

        Returns True when every admitted job completed within *timeout*;
        jobs still queued when the budget expires are failed with a
        ``draining`` error so synchronous waiters always wake.
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._queue or self._active:
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(0.5 if remaining is None else min(remaining, 0.5))
            drained = not self._queue and not self._active
            self._stopped = True
            while self._queue:
                job = self._queue.popleft()
                job.fail(503, "draining", "daemon stopped before the job ran")
                job.finished = monotonic()
                job.done.set()
            gauge_set("serve.queue_depth", 0)
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._keepalive is not None:
            self._keepalive.release()
            self._keepalive = None
        return drained

    # -- admission -------------------------------------------------------------

    def submit(self, request: AnalyzeRequest) -> Job:
        """Admit a validated request; raises the typed rejection errors."""
        if request.trace == "file" and not self.options.trace_dir:
            raise RequestError(
                "'trace': 'file' requires the daemon to run with --trace-dir"
            )
        with self._cond:
            if not self._started:
                raise DrainingError("service is not started")
            if self._draining or self._stopped:
                counter_add("serve.rejected")
                raise DrainingError("daemon is draining; retry elsewhere")
            if len(self._queue) >= self.options.queue_limit:
                counter_add("serve.rejected")
                raise QueueFullError(
                    f"queue is full ({self.options.queue_limit} jobs waiting)"
                )
            job = Job(f"j{next(self._ids):06d}", request)
            self._jobs[job.id] = job
            self._prune_locked()
            self._queue.append(job)
            counter_add("serve.requests")
            gauge_set("serve.queue_depth", len(self._queue))
            self._cond.notify()
        return job

    def _prune_locked(self) -> None:
        # Drop oldest *finished* jobs beyond the history bound; live jobs
        # are never evicted, so a slow job's handle cannot vanish.
        excess = len(self._jobs) - self.options.history_limit
        if excess <= 0:
            return
        for job_id in [
            jid
            for jid, job in self._jobs.items()
            if job.state in ("done", "failed")
        ][:excess]:
            del self._jobs[job_id]

    def get_job(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def stats(self) -> dict:
        """JSON-ready service counters for ``/healthz`` and ``/metrics``."""
        with self._cond:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "queue_depth": len(self._queue),
                "queue_limit": self.options.queue_limit,
                "active": self._active,
                "workers": len(self._threads),
                "pool_jobs": self.options.pool_jobs,
                "draining": self._draining or self._stopped,
                "jobs": states,
            }

    # -- execution -------------------------------------------------------------

    def _work(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped and not self._queue:
                    return
                job = self._queue.popleft()
                gauge_set("serve.queue_depth", len(self._queue))
                self._active += 1
                gauge_set("serve.active_jobs", self._active)
                job.state = "running"
                job.started = monotonic()
            try:
                self._execute(job)
            finally:
                with self._cond:
                    self._active -= 1
                    gauge_set("serve.active_jobs", self._active)
                    job.finished = monotonic()
                    job.done.set()
                    self._cond.notify_all()

    def _execute(self, job: Job) -> None:
        request = job.request
        before = metrics_snapshot()
        try:
            entry = self.registry.get(request.model)
            deadline = (
                request.deadline_seconds
                if request.deadline_seconds is not None
                else self.options.default_deadline
            )
            with trace("serve.request", job=job.id, model=entry.name) as tracer:
                with ExitStack() as stack:
                    if deadline is not None:
                        stack.enter_context(deadline_scope(deadline))
                    if self.options.pool_jobs > 0:
                        result = self._run_on_pool(entry, request, deadline)
                    else:
                        result = self._run_in_process(entry, request)
            root = tracer.root
        except Exception as exc:  # noqa: BLE001 - reported per-job, never fatal
            status, kind = _classify(exc)
            job.fail(status, kind, str(exc))
            counter_add("serve.failed")
            return

        metrics = counters_delta(before)
        delta = metrics["counters"]
        payload = {
            "model": entry.name,
            "model_fingerprint": entry.fingerprint,
            "worst_predicted_drop_volts": result.worst_predicted_drop(),
            "mean_predicted_drop_volts": float(result.predicted_drop.mean()),
            "map_shape": list(result.predicted_drop.shape),
            "stage_seconds": {
                "solve": result.solver_seconds,
                "features": result.feature_seconds,
                "inference": result.model_seconds,
            },
            "duration_seconds": root.duration,
            "amg_setup_cache": {
                "hits": int(delta.get("amg_setup_cache.hits", 0)),
                "misses": int(delta.get("amg_setup_cache.misses", 0)),
                "evictions": int(delta.get("amg_setup_cache.evictions", 0)),
            },
            "degraded": result.diagnostics.degraded,
            "diagnostics": result.diagnostics.summary_lines(),
        }
        if deadline is not None:
            payload["deadline_seconds"] = deadline
        if request.trace == "inline":
            payload["trace"] = trace_lines(root, metrics)
        elif request.trace == "file":
            path = os.path.join(
                self.options.trace_dir, f"{job.id}.trace.jsonl"
            )
            write_trace(path, root, metrics)
            payload["trace_path"] = path
        job.result = payload
        job.state = "done"
        job.status = 200
        counter_add("serve.completed")

    def _run_in_process(self, entry, request: AnalyzeRequest):
        if request.netlist is not None:
            return entry.pipeline.analyze_text(request.netlist)
        return entry.pipeline.analyze_file(request.netlist_path)

    def _run_on_pool(self, entry, request: AnalyzeRequest, deadline):
        """Ship the deck to the spawn pool for crash-isolated execution.

        The task rides as a :class:`~repro.core.batch._PipelineTask`, so
        the worker caches the rebuilt pipeline by weight fingerprint —
        repeat requests against a warm worker skip the model rebuild.
        """
        from repro.core.batch import _PipelineTask
        from repro.core.pool import get_pool
        from repro.obs import current_tracer

        if request.netlist is not None:
            method, item = "analyze_text", request.netlist
        else:
            method, item = "analyze_file", request.netlist_path
        mapped = get_pool(self.options.pool_jobs).map(
            _PipelineTask(entry.pipeline, method),
            [item],
            timeout=deadline,
            deadline=deadline,
            traced=True,
        )
        tracer = current_tracer()
        if tracer is not None:
            for payload in mapped.span_payloads:
                tracer.attach(payload)
            for payload in mapped.attempt_spans:
                tracer.attach(payload)
        outcome = mapped.outcomes[0]
        if outcome.quarantine is not None:
            raise RuntimeError(
                f"deck quarantined after {outcome.attempts} attempt(s): "
                f"{outcome.quarantine.reason}"
            )
        if outcome.error is not None:
            raise RuntimeError(outcome.error)
        return outcome.result
