"""The power-grid container built by the spice parser / circuit generator.

Section III-B: "The spice parser loads the spice file and creates a hash
table of circuit nodes representing circuit connections. ... the PG is
stored as a nodes list and wires map, which are linked to present their
topologies."

:class:`PowerGrid` is that structure: a node table (name → :class:`PGNode`
with a dense integer id) and a wires map (per-node adjacency of
:class:`PGWire` records).  It is the single input to MNA stamping,
feature extraction and the synthetic generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.ast import (
    CurrentSource,
    Netlist,
    Resistor,
    VoltageSource,
    pack_strings,
    unpack_strings,
)
from repro.spice.nodes import GROUND, NodeName, is_structured_name, parse_node_name


@dataclass(slots=True)
class PGNode:
    """One circuit node of the power grid.

    Attributes
    ----------
    index:
        Dense 0-based id, assigned in insertion order (file order).
    name:
        The SPICE node name.
    structured:
        Parsed coordinates when the name follows the contest grammar,
        otherwise ``None`` (e.g. intermediate nodes of exotic decks).
    load_current:
        Total current drawn from this node by attached current sources.
    pad_voltage:
        Supply voltage if a voltage source pins this node, else ``None``.
    """

    index: int
    name: str
    structured: NodeName | None = None
    load_current: float = 0.0
    pad_voltage: float | None = None

    @property
    def is_pad(self) -> bool:
        return self.pad_voltage is not None

    @property
    def layer(self) -> int | None:
        return self.structured.layer if self.structured is not None else None


@dataclass(frozen=True, slots=True)
class PGWire:
    """A resistive connection between two PG nodes (wire segment or via)."""

    name: str
    node_a: int
    node_b: int
    resistance: float

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def other(self, node: int) -> int:
        """The endpoint opposite to *node*."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node} is not an endpoint of wire {self.name!r}")


class PowerGrid:
    """Node table + wires map for one PG design.

    Build one from a parsed SPICE deck with :meth:`from_netlist`.  Nodes are
    indexed densely; ground is *not* a node (elements to ground record only
    their PG-side endpoint).
    """

    def __init__(self) -> None:
        self._nodes: list[PGNode] = []
        self._index_of: dict[str, int] = {}
        self._wires: list[PGWire] = []
        self._adjacency: list[list[int]] = []
        # Columnar snapshots for the vectorised feature extractors;
        # rebuilt lazily after any node/wire append.
        self._node_arrays_cache: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._wire_arrays_cache: (
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ) = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "PowerGrid":
        """Build the node table and wires map from a parsed deck.

        Ground-referenced resistors are rejected (a static PG is floating
        from ground except through ideal sources); 0-ohm resistors are
        rejected as well — collapse shorts upstream.
        """
        grid = cls()
        for res in netlist.resistors:
            grid._add_resistor(res)
        for src in netlist.current_sources:
            grid._add_current_source(src)
        for pad in netlist.voltage_sources:
            grid._add_voltage_source(pad)
        return grid

    def _intern(self, name: str) -> int:
        if name == GROUND:
            raise ValueError("ground cannot be interned as a PG node")
        index = self._index_of.get(name)
        if index is not None:
            return index
        index = len(self._nodes)
        structured = parse_node_name(name) if is_structured_name(name) else None
        self._nodes.append(PGNode(index=index, name=name, structured=structured))
        self._index_of[name] = index
        self._adjacency.append([])
        self._node_arrays_cache = None
        return index

    def _add_resistor(self, res: Resistor) -> None:
        if res.is_short:
            raise ValueError(
                f"resistor {res.name!r} is a 0-ohm short; merge its nodes first"
            )
        if res.node_a == GROUND or res.node_b == GROUND:
            raise ValueError(
                f"resistor {res.name!r} touches ground; PG resistor networks "
                "connect to ground only through sources"
            )
        if res.node_a == res.node_b:
            raise ValueError(f"resistor {res.name!r} is a self-loop on {res.node_a!r}")
        a = self._intern(res.node_a)
        b = self._intern(res.node_b)
        wire_index = len(self._wires)
        self._wires.append(PGWire(res.name, a, b, res.resistance))
        self._adjacency[a].append(wire_index)
        self._adjacency[b].append(wire_index)
        self._wire_arrays_cache = None

    def _add_current_source(self, src: CurrentSource) -> None:
        if src.node_to != GROUND:
            raise ValueError(
                f"current source {src.name!r} must sink to ground, "
                f"got {src.node_to!r}"
            )
        index = self._intern(src.node_from)
        self._nodes[index].load_current += src.current

    def _add_voltage_source(self, pad: VoltageSource) -> None:
        if pad.node_neg != GROUND:
            raise ValueError(
                f"voltage source {pad.name!r} must reference ground, "
                f"got {pad.node_neg!r}"
            )
        index = self._intern(pad.node_pos)
        node = self._nodes[index]
        if node.pad_voltage is not None and node.pad_voltage != pad.voltage:
            raise ValueError(
                f"node {node.name!r} pinned to two voltages "
                f"({node.pad_voltage} and {pad.voltage})"
            )
        node.pad_voltage = pad.voltage

    # -- transport ---------------------------------------------------------
    #
    # Like :class:`~repro.spice.ast.Netlist`, a grid pickled naively is
    # dominated by tiny node/wire objects.  Serialise columnar — packed
    # name arrays plus per-node/per-wire value vectors — and rebuild the
    # object tables (including ``_index_of``, adjacency and the parsed
    # structured names, all pure functions of the columns) on the
    # receiving side.  ``pad_voltage=None`` is encoded as NaN, which no
    # real supply level can be.

    def __getstate__(self) -> dict:
        n = len(self._nodes)
        wire_a, wire_b, wire_r = self.wire_arrays()
        state = {
            "node_names": pack_strings([node.name for node in self._nodes]),
            "load_current": np.fromiter(
                (node.load_current for node in self._nodes), np.float64, n
            ),
            "pad_voltage": np.fromiter(
                (
                    np.nan if node.pad_voltage is None else node.pad_voltage
                    for node in self._nodes
                ),
                np.float64,
                n,
            ),
            "wire_names": pack_strings([wire.name for wire in self._wires]),
            "wire_a": wire_a,
            "wire_b": wire_b,
            "wire_r": wire_r,
        }
        extra = {
            key: value
            for key, value in self.__dict__.items()
            if key
            not in (
                "_nodes", "_index_of", "_wires", "_adjacency",
                "_node_arrays_cache", "_wire_arrays_cache",
            )
        }
        if extra:
            state["extra"] = extra
        return state

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        load = state["load_current"]
        pad = state["pad_voltage"]
        for i, name in enumerate(unpack_strings(state["node_names"])):
            structured = (
                parse_node_name(name) if is_structured_name(name) else None
            )
            self._nodes.append(
                PGNode(
                    index=i,
                    name=name,
                    structured=structured,
                    load_current=float(load[i]),
                    pad_voltage=(
                        None if np.isnan(pad[i]) else float(pad[i])
                    ),
                )
            )
            self._index_of[name] = i
            self._adjacency.append([])
        wire_a = state["wire_a"]
        wire_b = state["wire_b"]
        wire_r = state["wire_r"]
        for k, wire_name in enumerate(unpack_strings(state["wire_names"])):
            a = int(wire_a[k])
            b = int(wire_b[k])
            self._wires.append(PGWire(wire_name, a, b, float(wire_r[k])))
            self._adjacency[a].append(k)
            self._adjacency[b].append(k)
        # The shipped wire columns are exactly what wire_arrays() would
        # rebuild — keep them (possibly zero-copy shm views).
        self._wire_arrays_cache = (
            np.asarray(wire_a), np.asarray(wire_b), np.asarray(wire_r)
        )
        self.__dict__.update(state.get("extra", {}))

    # -- ECO mutation ------------------------------------------------------

    def pin_pad(self, node: int | str, voltage: float) -> None:
        """Pin a node to a supply voltage (add a pad in place)."""
        record = self.node(node)
        if record.pad_voltage is not None and record.pad_voltage != voltage:
            raise ValueError(
                f"node {record.name!r} already pinned to {record.pad_voltage}"
            )
        record.pad_voltage = voltage

    def unpin_pad(self, node: int | str) -> None:
        """Remove a pad pin, returning the node to the unknown set."""
        record = self.node(node)
        if record.pad_voltage is None:
            raise ValueError(f"node {record.name!r} is not a pad")
        record.pad_voltage = None

    def set_load(self, node: int | str, amps: float) -> None:
        """Set a node's attached load current (absolute, not additive)."""
        self.node(node).load_current = amps

    def set_wire_resistance(self, wire_index: int, resistance: float) -> None:
        """Replace one wire's resistance (ECO resize).

        Wires are immutable records, so the slot gets a fresh
        :class:`PGWire`; adjacency is positional and survives unchanged.
        """
        if resistance <= 0 or not np.isfinite(resistance):
            raise ValueError(f"resistance must be positive, got {resistance}")
        old = self._wires[wire_index]
        self._wires[wire_index] = PGWire(
            old.name, old.node_a, old.node_b, resistance
        )
        self._wire_arrays_cache = None

    def clone(self) -> "PowerGrid":
        """Independent copy: repairs may mutate nodes without aliasing.

        Wires are immutable (frozen dataclass) and shared; node records and
        adjacency lists are copied.
        """
        other = PowerGrid()
        other._nodes = [
            PGNode(
                index=n.index,
                name=n.name,
                structured=n.structured,
                load_current=n.load_current,
                pad_voltage=n.pad_voltage,
            )
            for n in self._nodes
        ]
        other._index_of = dict(self._index_of)
        other._wires = list(self._wires)
        other._adjacency = [list(a) for a in self._adjacency]
        # Positions/resistances are immutable, so the columnar snapshots
        # remain valid for the clone.
        other._node_arrays_cache = self._node_arrays_cache
        other._wire_arrays_cache = self._wire_arrays_cache
        return other

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_wires(self) -> int:
        return len(self._wires)

    @property
    def nodes(self) -> list[PGNode]:
        return self._nodes

    @property
    def wires(self) -> list[PGWire]:
        return self._wires

    def node(self, key: str | int) -> PGNode:
        """Node by name or dense index."""
        if isinstance(key, str):
            return self._nodes[self._index_of[key]]
        return self._nodes[key]

    def __contains__(self, name: str) -> bool:
        return name in self._index_of

    def index_of(self, name: str) -> int:
        return self._index_of[name]

    def wires_at(self, node: int) -> list[PGWire]:
        """All wires incident on a node index."""
        return [self._wires[i] for i in self._adjacency[node]]

    def neighbors(self, node: int) -> list[int]:
        """Indices of nodes directly connected to *node*."""
        return [self._wires[i].other(node) for i in self._adjacency[node]]

    def pads(self) -> list[PGNode]:
        """All voltage-pinned nodes."""
        return [n for n in self._nodes if n.is_pad]

    def loads(self) -> list[PGNode]:
        """All nodes with a nonzero attached current drain."""
        return [n for n in self._nodes if n.load_current != 0.0]

    def layers_present(self) -> list[int]:
        """Sorted metal-layer indices that have at least one structured node."""
        return sorted(
            {n.structured.layer for n in self._nodes if n.structured is not None}
        )

    def nodes_on_layer(self, layer: int) -> list[PGNode]:
        """Structured nodes on a given metal layer."""
        return [
            n
            for n in self._nodes
            if n.structured is not None and n.structured.layer == layer
        ]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def total_load_current(self) -> float:
        return sum(n.load_current for n in self._nodes)

    # -- columnar views ----------------------------------------------------

    def node_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(x, y, layer, structured_mask)`` per-node arrays.

        Unstructured nodes carry ``x = y = 0`` and ``layer = -1`` with
        ``structured_mask`` False.  The arrays are rebuilt lazily after a
        node append; callers must treat them as read-only.
        """
        cache = self._node_arrays_cache
        if cache is None:
            n = len(self._nodes)
            x = np.zeros(n, dtype=np.int64)
            y = np.zeros(n, dtype=np.int64)
            layer = np.full(n, -1, dtype=np.int64)
            mask = np.zeros(n, dtype=bool)
            for i, node in enumerate(self._nodes):
                s = node.structured
                if s is not None:
                    x[i] = s.x
                    y[i] = s.y
                    layer[i] = s.layer
                    mask[i] = True
            cache = (x, y, layer, mask)
            self._node_arrays_cache = cache
        return cache

    def wire_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(node_a, node_b, resistance)`` per-wire arrays."""
        cache = self._wire_arrays_cache
        if cache is None:
            node_a = np.fromiter(
                (w.node_a for w in self._wires), dtype=np.int64, count=len(self._wires)
            )
            node_b = np.fromiter(
                (w.node_b for w in self._wires), dtype=np.int64, count=len(self._wires)
            )
            resistance = np.fromiter(
                (w.resistance for w in self._wires),
                dtype=np.float64,
                count=len(self._wires),
            )
            cache = (node_a, node_b, resistance)
            self._wire_arrays_cache = cache
        return cache
