"""Circuit topology graph and connectivity diagnostics.

The circuit generator in the paper "constructs the circuit topology graph,
enabling the extraction of the conductance matrix G".  Here the graph view
supports the sanity checks a simulator must run before stamping: every node
must have a resistive path to a pad, otherwise the reduced system is
singular.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.grid.netlist import PowerGrid


def to_networkx(grid: PowerGrid) -> nx.Graph:
    """The PG as an undirected multigraph-free graph.

    Parallel resistors are combined (conductances summed) onto a single
    edge whose ``conductance`` attribute is the total.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(grid.num_nodes))
    for wire in grid.wires:
        if graph.has_edge(wire.node_a, wire.node_b):
            graph[wire.node_a][wire.node_b]["conductance"] += wire.conductance
        else:
            graph.add_edge(
                wire.node_a,
                wire.node_b,
                conductance=wire.conductance,
                resistance=wire.resistance,
            )
    for a, b, data in graph.edges(data=True):
        data["resistance"] = 1.0 / data["conductance"]
    return graph


def component_labels(grid: PowerGrid) -> np.ndarray:
    """Per-node component id, labelled in order of first appearance.

    The hot path of every connectivity check: a single compiled
    union-find over the columnar wire arrays instead of building a
    Python graph object per query.
    """
    n = grid.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    node_a, node_b, _ = grid.wire_arrays()
    adjacency = sp.csr_matrix(
        (np.ones(node_a.size), (node_a, node_b)), shape=(n, n)
    )
    _, labels = csgraph.connected_components(adjacency, directed=False)
    return labels.astype(np.int64)


def connected_components(grid: PowerGrid) -> list[set[int]]:
    """Connected components of the resistive network (node-index sets)."""
    labels = component_labels(grid)
    if labels.size == 0:
        return []
    components: list[set[int]] = [set() for _ in range(int(labels.max()) + 1)]
    for index, label in enumerate(labels.tolist()):
        components[label].add(index)
    return components


def floating_nodes(grid: PowerGrid) -> set[int]:
    """Nodes with no resistive path to any pad.

    A component without a pad has no DC operating point: its reduced
    conductance block is exactly singular.
    """
    labels = component_labels(grid)
    pad_indices = np.fromiter(
        (n.index for n in grid.pads()), dtype=np.int64
    )
    pad_labels = np.unique(labels[pad_indices]) if pad_indices.size else (
        np.empty(0, dtype=np.int64)
    )
    floating = ~np.isin(labels, pad_labels)
    return set(np.flatnonzero(floating).tolist())


def validate_connectivity(grid: PowerGrid) -> None:
    """Raise ``ValueError`` when the grid cannot be solved.

    Checks: at least one pad exists and every node reaches a pad.
    """
    if not grid.pads():
        raise ValueError("power grid has no voltage pads; Gx=I is singular")
    floating = floating_nodes(grid)
    if floating:
        sample = sorted(floating)[:5]
        names = [grid.node(i).name for i in sample]
        raise ValueError(
            f"{len(floating)} node(s) have no resistive path to a pad "
            f"(e.g. {names}); the reduced system is singular"
        )


def effective_pad_resistance(grid: PowerGrid, node: int) -> float:
    """Shortest-path resistance from *node* to the nearest pad.

    Dijkstra over wire resistances; used both as a diagnostic and by the
    shortest-path-resistance feature map.  Returns ``inf`` for floating
    nodes.
    """
    graph = to_networkx(grid)
    pad_indices = [n.index for n in grid.pads()]
    if not pad_indices:
        return float("inf")
    best = float("inf")
    lengths = nx.multi_source_dijkstra_path_length(
        graph, pad_indices, weight="resistance"
    )
    return lengths.get(node, best)
