"""Rasterising per-node quantities onto the pixel grid.

Every feature map and label in the pipeline is an image over the die;
this module owns the scatter from (node, value) pairs to pixels, with the
three reductions that occur in the paper's maps: worst-case (max), mean
and sum.
"""

from __future__ import annotations

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PGNode, PowerGrid


def rasterize(
    geometry: GridGeometry,
    nodes: list[PGNode],
    values: np.ndarray,
    reduce: str = "max",
    fill: float = 0.0,
) -> np.ndarray:
    """Scatter per-node *values* to an image.

    Parameters
    ----------
    geometry:
        Supplies the pixel mapping and output shape.
    nodes:
        Structured nodes to scatter; unstructured nodes are skipped.
    values:
        ``values[k]`` belongs to ``nodes[k]``.
    reduce:
        ``"max"`` (worst case within a pixel), ``"mean"`` or ``"sum"``.
    fill:
        Value for pixels containing no node.
    """
    if reduce not in ("max", "mean", "sum"):
        raise ValueError(f"unknown reduction {reduce!r}")
    if len(nodes) != len(values):
        raise ValueError(
            f"{len(nodes)} nodes but {len(values)} values"
        )
    shape = geometry.shape
    if reduce == "max":
        image = np.full(shape, -np.inf, dtype=float)
    else:
        image = np.zeros(shape, dtype=float)
    counts = np.zeros(shape, dtype=np.int64)

    for node, value in zip(nodes, values):
        if node.structured is None:
            continue
        row, col = geometry.node_pixel(node.structured)
        counts[row, col] += 1
        if reduce == "max":
            if value > image[row, col]:
                image[row, col] = value
        else:
            image[row, col] += value

    empty = counts == 0
    if reduce == "mean":
        occupied = ~empty
        image[occupied] /= counts[occupied]
    image[empty] = fill
    return image


def layer_values_image(
    geometry: GridGeometry,
    grid: PowerGrid,
    full_values: np.ndarray,
    layer: int,
    reduce: str = "max",
    fill: float = 0.0,
) -> np.ndarray:
    """Image of a per-grid-node vector restricted to one metal layer."""
    if full_values.shape != (grid.num_nodes,):
        raise ValueError(
            f"expected one value per grid node ({grid.num_nodes}), "
            f"got shape {full_values.shape}"
        )
    nodes = grid.nodes_on_layer(layer)
    values = np.array([full_values[n.index] for n in nodes], dtype=float)
    return rasterize(geometry, nodes, values, reduce=reduce, fill=fill)
