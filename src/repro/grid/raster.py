"""Rasterising per-node quantities onto the pixel grid.

Every feature map and label in the pipeline is an image over the die;
this module owns the scatter from (node, value) pairs to pixels, with the
three reductions that occur in the paper's maps: worst-case (max), mean
and sum.

The scatter core is fully vectorised: sums/means go through
``np.bincount`` (which accumulates per-bin in input order, so the result
is bitwise identical to the sequential loop it replaced) and max goes
through ``np.fmax.at`` (exact, and NaN values lose against any number,
matching the old ``value > current`` comparison).
"""

from __future__ import annotations

import numpy as np

from repro.grid.geometry import GridGeometry
from repro.grid.netlist import PGNode, PowerGrid

_REDUCTIONS = ("max", "mean", "sum")


def pixel_coords(
    geometry: GridGeometry, x_nm: np.ndarray, y_nm: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :meth:`GridGeometry.to_pixel`: (rows, cols) arrays."""
    n_rows, n_cols = geometry.shape
    cols = np.clip(x_nm // geometry.pixel_w_nm, 0, n_cols - 1)
    rows = np.clip(y_nm // geometry.pixel_h_nm, 0, n_rows - 1)
    return rows.astype(np.int64), cols.astype(np.int64)


def scatter_to_image(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    reduce: str = "max",
    fill: float = 0.0,
) -> np.ndarray:
    """Scatter ``values[k]`` to pixel ``(rows[k], cols[k])`` with a reduction."""
    if reduce not in _REDUCTIONS:
        raise ValueError(f"unknown reduction {reduce!r}")
    n_rows, n_cols = shape
    size = n_rows * n_cols
    flat = rows * n_cols + cols
    counts = np.bincount(flat, minlength=size)
    if reduce == "max":
        image = np.full(size, -np.inf, dtype=float)
        np.fmax.at(image, flat, values)
    else:
        image = np.bincount(flat, weights=values, minlength=size).astype(float)
    empty = counts == 0
    if reduce == "mean":
        occupied = ~empty
        image[occupied] /= counts[occupied]
    image[empty] = fill
    return image.reshape(shape)


def rasterize(
    geometry: GridGeometry,
    nodes: list[PGNode],
    values: np.ndarray,
    reduce: str = "max",
    fill: float = 0.0,
) -> np.ndarray:
    """Scatter per-node *values* to an image.

    Parameters
    ----------
    geometry:
        Supplies the pixel mapping and output shape.
    nodes:
        Structured nodes to scatter; unstructured nodes are skipped.
    values:
        ``values[k]`` belongs to ``nodes[k]``.
    reduce:
        ``"max"`` (worst case within a pixel), ``"mean"`` or ``"sum"``.
    fill:
        Value for pixels containing no node.
    """
    if reduce not in _REDUCTIONS:
        raise ValueError(f"unknown reduction {reduce!r}")
    if len(nodes) != len(values):
        raise ValueError(
            f"{len(nodes)} nodes but {len(values)} values"
        )
    coords = [
        (n.structured.x, n.structured.y, k)
        for k, n in enumerate(nodes)
        if n.structured is not None
    ]
    if coords:
        xs, ys, keep = (np.array(column, dtype=np.int64) for column in zip(*coords))
    else:
        xs = ys = keep = np.empty(0, dtype=np.int64)
    rows, cols = pixel_coords(geometry, xs, ys)
    return scatter_to_image(
        geometry.shape, rows, cols, np.asarray(values, dtype=float)[keep],
        reduce=reduce, fill=fill,
    )


def layer_values_image(
    geometry: GridGeometry,
    grid: PowerGrid,
    full_values: np.ndarray,
    layer: int,
    reduce: str = "max",
    fill: float = 0.0,
) -> np.ndarray:
    """Image of a per-grid-node vector restricted to one metal layer."""
    if full_values.shape != (grid.num_nodes,):
        raise ValueError(
            f"expected one value per grid node ({grid.num_nodes}), "
            f"got shape {full_values.shape}"
        )
    x, y, layers, structured = grid.node_arrays()
    selected = structured & (layers == layer)
    rows, cols = pixel_coords(geometry, x[selected], y[selected])
    return scatter_to_image(
        geometry.shape,
        rows,
        cols,
        np.asarray(full_values, dtype=float)[selected],
        reduce=reduce,
        fill=fill,
    )
