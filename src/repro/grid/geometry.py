"""Layer geometry and the LEF-style coordinate-to-pixel mapping.

Section III-C: "Based on the row *w* and height *l* from LEF, a design's
layer of size Wc x Lc translates to an image of W (= Wc // w) x L (= Lc // l)
pixels" — i.e. node (x_n, y_n) maps to pixel (x_n // w, y_n // l).

:class:`GridGeometry` owns that mapping plus the per-layer metadata needed
by the feature extractors (pitch, wire direction, sheet resistance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.nodes import NodeName


@dataclass(frozen=True, slots=True)
class LayerInfo:
    """Static metadata for one metal layer of the PG.

    Attributes
    ----------
    index:
        1-based metal layer index (1 = bottom / cell layer).
    pitch_nm:
        Stripe pitch in nanometres (distance between parallel PG stripes).
    direction:
        ``"h"`` for horizontal stripes, ``"v"`` for vertical.
    sheet_resistance:
        Resistance per segment unit used when synthesising designs; purely
        informational for parsed designs.
    """

    index: int
    pitch_nm: int
    direction: str
    sheet_resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.direction not in ("h", "v"):
            raise ValueError(f"layer direction must be 'h' or 'v', got {self.direction!r}")
        if self.pitch_nm <= 0:
            raise ValueError(f"layer pitch must be positive, got {self.pitch_nm}")


@dataclass(frozen=True)
class GridGeometry:
    """Die geometry and the coordinate → pixel mapping.

    Attributes
    ----------
    width_nm, height_nm:
        Die extents (Wc, Lc) in nanometres.
    pixel_w_nm, pixel_h_nm:
        The LEF row width *w* and height *l*; one pixel covers
        ``pixel_w_nm x pixel_h_nm``.
    layers:
        Per-layer metadata ordered bottom-up.
    """

    width_nm: int
    height_nm: int
    pixel_w_nm: int
    pixel_h_nm: int
    layers: tuple[LayerInfo, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.width_nm <= 0 or self.height_nm <= 0:
            raise ValueError("die extents must be positive")
        if self.pixel_w_nm <= 0 or self.pixel_h_nm <= 0:
            raise ValueError("pixel extents must be positive")

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape (rows, cols) = (height pixels, width pixels)."""
        return (self.height_nm // self.pixel_h_nm, self.width_nm // self.pixel_w_nm)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer(self, index: int) -> LayerInfo:
        """Layer metadata by 1-based metal index."""
        for info in self.layers:
            if info.index == index:
                return info
        raise KeyError(f"no layer with index {index}")

    def to_pixel(self, x_nm: int, y_nm: int) -> tuple[int, int]:
        """Map nanometre coordinates to an (row, col) pixel, clamped in-die.

        Row corresponds to y, column to x, matching image conventions used
        for the feature maps.
        """
        rows, cols = self.shape
        col = min(max(x_nm // self.pixel_w_nm, 0), cols - 1)
        row = min(max(y_nm // self.pixel_h_nm, 0), rows - 1)
        return (int(row), int(col))

    def node_pixel(self, node: NodeName) -> tuple[int, int]:
        """Pixel of a structured PG node."""
        return self.to_pixel(node.x, node.y)

    def pixel_center_nm(self, row: int, col: int) -> tuple[float, float]:
        """Nanometre coordinates of a pixel centre (x, y)."""
        x = (col + 0.5) * self.pixel_w_nm
        y = (row + 0.5) * self.pixel_h_nm
        return (x, y)

    def contains(self, x_nm: int, y_nm: int) -> bool:
        """Whether the nanometre point lies within the die."""
        return 0 <= x_nm < self.width_nm and 0 <= y_nm < self.height_nm


def default_layer_stack(num_layers: int, base_pitch_nm: int = 2000) -> tuple[LayerInfo, ...]:
    """A conventional PG stack: alternating directions, pitch doubling upward.

    Layer 1 is horizontal with the base pitch; each higher layer doubles the
    pitch and alternates direction, mirroring how real PDNs get sparser and
    thicker toward the top metal.
    """
    if num_layers < 1:
        raise ValueError("a PG needs at least one metal layer")
    layers = []
    for i in range(1, num_layers + 1):
        direction = "h" if i % 2 == 1 else "v"
        pitch = base_pitch_nm * (2 ** (i - 1))
        sheet = 1.0 / (2 ** (i - 1))
        layers.append(
            LayerInfo(index=i, pitch_nm=pitch, direction=direction, sheet_resistance=sheet)
        )
    return tuple(layers)


def infer_geometry(
    grid,
    pixel_nm: int = 1000,
    align_pixels: int = 8,
) -> GridGeometry:
    """Infer a :class:`GridGeometry` from a parsed :class:`PowerGrid`.

    Die extents come from the maximum structured-node coordinates, rounded
    up to a multiple of ``align_pixels`` pixels (so pooling U-Nets accept
    the image).  Per-layer pitch is estimated as the median gap between
    distinct perpendicular coordinates; direction is the axis with more
    distinct in-stripe positions.
    """
    import numpy as _np

    structured = [n.structured for n in grid.nodes if n.structured is not None]
    if not structured:
        raise ValueError("grid has no structured nodes; cannot infer geometry")
    max_x = max(node.x for node in structured)
    max_y = max(node.y for node in structured)
    step = pixel_nm * align_pixels
    width = ((max_x + pixel_nm) + step - 1) // step * step
    height = ((max_y + pixel_nm) + step - 1) // step * step

    layers = []
    for layer_index in sorted({node.layer for node in structured}):
        nodes = [n for n in structured if n.layer == layer_index]
        xs = sorted({n.x for n in nodes})
        ys = sorted({n.y for n in nodes})
        direction = "h" if len(xs) >= len(ys) else "v"
        stripe_coords = ys if direction == "h" else xs
        if len(stripe_coords) > 1:
            gaps = _np.diff(stripe_coords)
            pitch = int(_np.median(gaps))
        else:
            pitch = pixel_nm
        layers.append(
            LayerInfo(
                index=layer_index,
                pitch_nm=max(pitch, 1),
                direction=direction,
                sheet_resistance=1.0 / (2 ** (layer_index - 1)),
            )
        )
    return GridGeometry(
        width_nm=int(width),
        height_nm=int(height),
        pixel_w_nm=pixel_nm,
        pixel_h_nm=pixel_nm,
        layers=tuple(layers),
    )
