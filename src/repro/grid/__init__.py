"""Power-grid data model.

This package turns a parsed SPICE deck into the structures PowerRush-style
analysis needs (Section III-B of the paper):

- :mod:`repro.grid.geometry` — metal-layer geometry, the LEF-style mapping
  from nanometre coordinates to a fixed pixel grid.
- :mod:`repro.grid.netlist` — the node hash table + wires map
  (:class:`PowerGrid`) the paper's spice parser/circuit generator builds.
- :mod:`repro.grid.topology` — the circuit topology graph and connectivity
  diagnostics.
"""

from repro.grid.geometry import GridGeometry, LayerInfo
from repro.grid.netlist import PGNode, PGWire, PowerGrid
from repro.grid.topology import (
    connected_components,
    floating_nodes,
    to_networkx,
    validate_connectivity,
)

__all__ = [
    "GridGeometry",
    "LayerInfo",
    "PGNode",
    "PGWire",
    "PowerGrid",
    "connected_components",
    "floating_nodes",
    "to_networkx",
    "validate_connectivity",
]
