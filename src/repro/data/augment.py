"""Data augmentation and oversampling (Section III-E, IV-A).

"three operations are performed on each feature map: clockwise rotations
of 90, 180, and 270 degrees.  Features originating from the same PG after
these transformations are treated as new PG designs" — a fourfold dataset
increase.  The evaluation additionally oversamples: "fake designs are
doubled, and real ones are quintupled."
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DesignSample, IRDropDataset
from repro.features.maps import FeatureStack


def _rot90_cw(image: np.ndarray, quarter_turns: int) -> np.ndarray:
    """Clockwise rotation by ``quarter_turns`` * 90 degrees (2D trailing axes)."""
    return np.rot90(image, k=-quarter_turns, axes=(-2, -1)).copy()


def rotate_sample(sample: DesignSample, quarter_turns: int) -> DesignSample:
    """A new sample rotated clockwise by ``quarter_turns`` * 90 degrees."""
    if quarter_turns % 4 == 0:
        return sample
    turns = quarter_turns % 4
    rotated_features = FeatureStack(
        channels=list(sample.features.channels),
        data=_rot90_cw(sample.features.data, turns),
    )
    return DesignSample(
        name=f"{sample.name}_rot{90 * turns}",
        kind=sample.kind,
        features=rotated_features,
        label=_rot90_cw(sample.label, turns),
        rough_label=(
            _rot90_cw(sample.rough_label, turns)
            if sample.rough_label is not None
            else None
        ),
    )


def augment_dataset(dataset: IRDropDataset) -> IRDropDataset:
    """Fourfold rotation augmentation (original + 90/180/270 cw)."""
    augmented: list[DesignSample] = []
    for sample in dataset:
        augmented.append(sample)
        for turns in (1, 2, 3):
            augmented.append(rotate_sample(sample, turns))
    return IRDropDataset(augmented)


def oversample(
    dataset: IRDropDataset, fake_factor: int = 2, real_factor: int = 5
) -> IRDropDataset:
    """Replicate samples per family (contest setup: fake x2, real x5)."""
    if fake_factor < 1 or real_factor < 1:
        raise ValueError("oversampling factors must be >= 1")
    out: list[DesignSample] = []
    for sample in dataset:
        factor = fake_factor if sample.is_fake else real_factor
        out.extend([sample] * factor)
    return IRDropDataset(out)
