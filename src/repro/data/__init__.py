"""Datasets: synthetic PG benchmarks, augmentation, curriculum, I/O.

The ICCAD-2023 contest data (120 designs: ~100 BeGAN-generated "fake" and
20 tape-out-derived "real" designs) is not redistributable, so
:mod:`repro.data.synthetic` generates an equivalent suite: regular
blob-load "fake" designs and irregular "real" designs (macros, stripe
dropout, clustered pads, resistance jitter).  The remaining modules supply
the training-set machinery the paper describes: 4x rotation augmentation,
fake-x2 / real-x5 oversampling, and predefined curriculum learning.
"""

from repro.data.augment import augment_dataset, oversample, rotate_sample
from repro.data.curriculum import CurriculumScheduler, difficulty_of
from repro.data.dataset import DesignSample, IRDropDataset, build_sample
from repro.data.iccad import load_iccad_design, save_iccad_design
from repro.data.synthetic import (
    Design,
    DesignSpec,
    generate_benchmark_suite,
    generate_design,
    make_fake_spec,
    make_real_spec,
)

__all__ = [
    "CurriculumScheduler",
    "Design",
    "DesignSample",
    "DesignSpec",
    "IRDropDataset",
    "augment_dataset",
    "build_sample",
    "difficulty_of",
    "generate_benchmark_suite",
    "generate_design",
    "load_iccad_design",
    "make_fake_spec",
    "make_real_spec",
    "oversample",
    "rotate_sample",
    "save_iccad_design",
]
