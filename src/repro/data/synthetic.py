"""Synthetic power-grid benchmark generation.

Stand-in for the ICCAD-2023 contest dataset (BeGAN-generated "fake"
designs plus industrial "real" designs).  Two families are produced:

- **fake** — regular stripe grids, smooth Gaussian-blob current maps,
  symmetric pad arrays: the "easier" curriculum class;
- **real** — irregular grids (randomly dropped stripes, resistance jitter),
  current maps with rectangular macros and noise, clustered edge pads:
  the "harder" class that stresses generalisation.

The stripe model follows industrial PDNs: layer *k* runs parallel stripes
at pitch *p_k* (direction alternating per layer, pitch doubling upward);
nodes sit where a stripe crosses a stripe of an adjacent layer (via
landings) or, on the bottom layer, at every cell tap; vias join co-located
nodes of adjacent layers.  Pads pin top-layer nodes; loads drain from
bottom-layer taps according to the current image.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.grid.geometry import GridGeometry, LayerInfo
from repro.grid.netlist import PowerGrid
from repro.grid.topology import validate_connectivity
from repro.spice.ast import CurrentSource, Netlist, Resistor, VoltageSource
from repro.spice.nodes import format_node_name


@dataclass(frozen=True)
class DesignSpec:
    """Parameters of one synthetic design.

    Attributes
    ----------
    name, kind:
        Identifier and family (``"fake"`` or ``"real"``).
    pixels:
        Die edge length in pixels; one pixel is ``pixel_nm`` square.
    pixel_nm:
        Pixel (and bottom-layer tap) pitch in nanometres.
    num_layers:
        Metal layers in the stack (>= 2 so pads sit above loads).
    supply_voltage:
        Pad voltage in volts.
    total_current:
        Chip load in amperes, distributed by the current image.
    num_pads:
        Pad count (regular array for fake, clustered for real).
    resistance_per_um:
        Bottom-layer wire resistance per micrometre; upper layers scale by
        their ``sheet_resistance`` ratio.
    via_resistance:
        Nominal via resistance in ohms.
    stripe_dropout:
        Fraction of stripes removed per layer >= 2 (real designs only).
    resistance_jitter:
        Max relative perturbation of each resistor (real designs only).
    num_blobs, num_macros:
        Current-map texture controls.
    seed:
        RNG seed; everything about the design is deterministic in it.
    """

    name: str
    kind: str = "fake"
    pixels: int = 64
    pixel_nm: int = 1000
    num_layers: int = 4
    supply_voltage: float = 1.05
    total_current: float = 2.0
    num_pads: int = 4
    resistance_per_um: float = 0.4
    via_resistance: float = 0.05
    stripe_dropout: float = 0.0
    resistance_jitter: float = 0.0
    num_blobs: int = 4
    num_macros: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("fake", "real"):
            raise ValueError(f"kind must be 'fake' or 'real', got {self.kind!r}")
        if self.pixels < 8:
            raise ValueError("designs need at least 8x8 pixels")
        if self.num_layers < 2:
            raise ValueError("need >=2 metal layers (pads above loads)")
        if self.total_current <= 0:
            raise ValueError("total_current must be positive")
        if not 0.0 <= self.stripe_dropout < 0.8:
            raise ValueError("stripe_dropout must be in [0, 0.8)")


@dataclass
class Design:
    """A generated design: spec, geometry, netlist, grid and current image."""

    spec: DesignSpec
    geometry: GridGeometry
    netlist: Netlist
    grid: PowerGrid
    current_image: np.ndarray
    pad_pixels: list[tuple[int, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def is_fake(self) -> bool:
        return self.spec.kind == "fake"


def make_fake_spec(name: str, seed: int, **overrides) -> DesignSpec:
    """A regular, smooth-load "easy" design spec."""
    spec = DesignSpec(name=name, kind="fake", seed=seed, num_blobs=4, num_macros=0)
    return replace(spec, **overrides) if overrides else spec


def make_real_spec(name: str, seed: int, **overrides) -> DesignSpec:
    """An irregular "hard" design spec: macros, dropout, jitter, edge pads."""
    spec = DesignSpec(
        name=name,
        kind="real",
        seed=seed,
        num_blobs=3,
        num_macros=3,
        stripe_dropout=0.15,
        resistance_jitter=0.25,
        num_pads=4,
    )
    return replace(spec, **overrides) if overrides else spec


# -- current-map synthesis ----------------------------------------------------


def _gaussian_blob(
    shape: tuple[int, int], center: tuple[float, float], sigma: float
) -> np.ndarray:
    rows, cols = shape
    ys, xs = np.mgrid[0:rows, 0:cols]
    return np.exp(
        -((xs - center[1]) ** 2 + (ys - center[0]) ** 2) / (2.0 * sigma**2)
    )


def synthesize_current_image(spec: DesignSpec, rng: np.random.Generator) -> np.ndarray:
    """A non-negative current image summing to ``spec.total_current``."""
    shape = (spec.pixels, spec.pixels)
    image = np.full(shape, 0.15, dtype=float)  # uniform background activity
    for _ in range(spec.num_blobs):
        center = (rng.uniform(0, spec.pixels), rng.uniform(0, spec.pixels))
        sigma = rng.uniform(0.08, 0.22) * spec.pixels
        image += rng.uniform(0.5, 1.5) * _gaussian_blob(shape, center, sigma)
    for _ in range(spec.num_macros):
        h = int(rng.uniform(0.15, 0.35) * spec.pixels)
        w = int(rng.uniform(0.15, 0.35) * spec.pixels)
        r0 = rng.integers(0, spec.pixels - h)
        c0 = rng.integers(0, spec.pixels - w)
        image[r0 : r0 + h, c0 : c0 + w] += rng.uniform(1.5, 3.5)
    if spec.kind == "real":
        # high-frequency texture that BeGAN-style smooth maps lack
        image += 0.2 * np.abs(rng.standard_normal(shape))
    image = np.clip(image, 0.0, None)
    return image * (spec.total_current / image.sum())


# -- grid construction --------------------------------------------------------


def _layer_stack(spec: DesignSpec) -> tuple[LayerInfo, ...]:
    layers = []
    for i in range(1, spec.num_layers + 1):
        layers.append(
            LayerInfo(
                index=i,
                pitch_nm=spec.pixel_nm * (2 ** (i - 1)),
                direction="h" if i % 2 == 1 else "v",
                sheet_resistance=1.0 / (2 ** (i - 1)),
            )
        )
    return tuple(layers)


def _stripe_positions(
    pitch_nm: int, extent_nm: int, dropout: float, rng: np.random.Generator
) -> list[int]:
    """Stripe coordinates at *pitch*, with optional random dropout.

    At least two stripes always survive so the layer keeps spanning the
    die and the network stays connected.
    """
    positions = list(range(0, extent_nm, pitch_nm))
    if dropout <= 0.0 or len(positions) <= 2:
        return positions
    keep_mask = rng.random(len(positions)) >= dropout
    kept = [p for p, keep in zip(positions, keep_mask) if keep]
    if len(kept) < 2:
        kept = [positions[0], positions[-1]]
    return kept


def _jitter(value: float, jitter: float, rng: np.random.Generator) -> float:
    if jitter <= 0.0:
        return value
    return value * float(1.0 + rng.uniform(-jitter, jitter))


def _pad_positions(
    spec: DesignSpec,
    xs: list[int],
    ys: list[int],
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Top-layer pad coordinates.

    Fake designs spread pads evenly over the top-layer lattice; real
    designs cluster them along one die edge, creating the long supply
    paths (and IR gradients) industrial designs exhibit.
    """
    lattice = [(x, y) for x in xs for y in ys]
    count = min(spec.num_pads, len(lattice))
    if spec.kind == "fake":
        indices = np.linspace(0, len(lattice) - 1, count).round().astype(int)
        return [lattice[i] for i in indices]
    edge = rng.choice(["left", "right", "top", "bottom"])
    if edge == "left":
        key = lambda p: (p[0], p[1])
    elif edge == "right":
        key = lambda p: (-p[0], p[1])
    elif edge == "top":
        key = lambda p: (p[1], p[0])
    else:
        key = lambda p: (-p[1], p[0])
    ranked = sorted(lattice, key=key)
    cluster = ranked[: max(count * 3, count)]
    chosen = rng.choice(len(cluster), size=count, replace=False)
    return [cluster[i] for i in sorted(chosen)]


def _build_netlist(
    spec: DesignSpec,
    geometry: GridGeometry,
    current_image: np.ndarray,
    rng: np.random.Generator,
) -> tuple[Netlist, list[tuple[int, int]]]:
    extent = spec.pixels * spec.pixel_nm
    netlist = Netlist(title=f"{spec.name} ({spec.kind}) synthetic PG")

    # Stripe coordinates per layer: the coordinate perpendicular to the
    # layer's direction.  Layer 1 never drops stripes (cell rails are
    # always present); upper layers may, for "real" designs.
    stripes: dict[int, list[int]] = {}
    for info in geometry.layers:
        dropout = spec.stripe_dropout if info.index >= 2 else 0.0
        stripes[info.index] = _stripe_positions(info.pitch_nm, extent, dropout, rng)

    # Node cross positions on each stripe: where adjacent layers' stripes
    # cross it (via landings); layer 1 additionally gets a cell tap at
    # every pixel column.
    taps = list(range(0, extent, spec.pixel_nm))
    cross: dict[int, list[int]] = {}
    for info in geometry.layers:
        positions: set[int] = set()
        if info.index == 1:
            positions.update(taps)
        if info.index - 1 >= 1:
            positions.update(stripes[info.index - 1])
        if info.index + 1 <= spec.num_layers:
            positions.update(stripes[info.index + 1])
        cross[info.index] = sorted(positions)

    node_sets: dict[int, set[tuple[int, int]]] = {}
    resistor_id = 0

    def node_name(layer: int, x: int, y: int) -> str:
        return format_node_name(1, layer, x, y)

    # Wires along each stripe.
    for info in geometry.layers:
        rho = spec.resistance_per_um * info.sheet_resistance
        nodes: set[tuple[int, int]] = set()
        for stripe_pos in stripes[info.index]:
            line = cross[info.index]
            for a, b in zip(line, line[1:]):
                if info.direction == "h":
                    na, nb = (a, stripe_pos), (b, stripe_pos)
                else:
                    na, nb = (stripe_pos, a), (stripe_pos, b)
                length_um = (b - a) / 1000.0
                resistance = _jitter(
                    max(rho * length_um, 1e-4), spec.resistance_jitter, rng
                )
                resistor_id += 1
                netlist.resistors.append(
                    Resistor(
                        f"R{resistor_id}",
                        node_name(info.index, *na),
                        node_name(info.index, *nb),
                        resistance,
                    )
                )
                nodes.add(na)
                nodes.add(nb)
        node_sets[info.index] = nodes

    # Vias at crossings of adjacent layers' stripes.
    for lower, upper in zip(geometry.layers, geometry.layers[1:]):
        lower_dir = lower.direction
        for low_stripe in stripes[lower.index]:
            for up_stripe in stripes[upper.index]:
                if lower_dir == "h":
                    point = (up_stripe, low_stripe)  # (x, y)
                else:
                    point = (low_stripe, up_stripe)
                if (
                    point in node_sets[lower.index]
                    and point in node_sets[upper.index]
                ):
                    resistance = _jitter(
                        spec.via_resistance, spec.resistance_jitter, rng
                    )
                    resistor_id += 1
                    netlist.resistors.append(
                        Resistor(
                            f"R{resistor_id}",
                            node_name(lower.index, *point),
                            node_name(upper.index, *point),
                            resistance,
                        )
                    )

    # Loads: one tap per pixel on the bottom layer, drawing the pixel's
    # current.  Bottom-layer stripes are horizontal rows at every pixel
    # pitch, so (x, y) = pixel centres snapped onto the lattice.
    source_id = 0
    for row in range(spec.pixels):
        y = row * spec.pixel_nm
        for col in range(spec.pixels):
            current = float(current_image[row, col])
            if current <= 0.0:
                continue
            x = col * spec.pixel_nm
            if (x, y) not in node_sets[1]:
                continue
            source_id += 1
            netlist.current_sources.append(
                CurrentSource(f"I{source_id}", node_name(1, x, y), "0", current)
            )

    # Pads on the top layer.
    top = geometry.layers[-1]
    if top.direction == "h":
        ys_top = stripes[top.index]
        xs_top = cross[top.index]
    else:
        xs_top = stripes[top.index]
        ys_top = cross[top.index]
    candidates = [
        (x, y) for x in xs_top for y in ys_top if (x, y) in node_sets[top.index]
    ]
    if not candidates:
        raise RuntimeError("top layer has no via landings to place pads on")
    xs = sorted({p[0] for p in candidates})
    ys = sorted({p[1] for p in candidates})
    pads = _pad_positions(spec, xs, ys, rng)
    pad_pixels: list[tuple[int, int]] = []
    placed: set[tuple[int, int]] = set()
    for k, (x, y) in enumerate(pads, start=1):
        if (x, y) not in node_sets[top.index]:
            # snap to the nearest actual top-layer node
            x, y = min(
                node_sets[top.index],
                key=lambda p: (p[0] - x) ** 2 + (p[1] - y) ** 2,
            )
        if (x, y) in placed:
            continue
        placed.add((x, y))
        netlist.voltage_sources.append(
            VoltageSource(
                f"V{k}", node_name(top.index, x, y), "0", spec.supply_voltage
            )
        )
        pad_pixels.append(geometry.to_pixel(x, y))
    return netlist, pad_pixels


def generate_design(spec: DesignSpec) -> Design:
    """Generate one synthetic design, guaranteed connected and solvable."""
    rng = np.random.default_rng(spec.seed)
    extent = spec.pixels * spec.pixel_nm
    geometry = GridGeometry(
        width_nm=extent,
        height_nm=extent,
        pixel_w_nm=spec.pixel_nm,
        pixel_h_nm=spec.pixel_nm,
        layers=_layer_stack(spec),
    )
    current_image = synthesize_current_image(spec, rng)
    netlist, pad_pixels = _build_netlist(spec, geometry, current_image, rng)
    grid = PowerGrid.from_netlist(netlist)
    validate_connectivity(grid)
    return Design(
        spec=spec,
        geometry=geometry,
        netlist=netlist,
        grid=grid,
        current_image=current_image,
        pad_pixels=pad_pixels,
    )


def generate_benchmark_suite(
    num_fake: int,
    num_real: int,
    pixels: int = 64,
    seed: int = 0,
    **overrides,
) -> list[Design]:
    """A reproducible mixed suite, fakes first then reals.

    Per-design seeds derive from *seed* so the suite is stable under
    changes to the counts of the other family.
    """
    designs: list[Design] = []
    for i in range(num_fake):
        spec = make_fake_spec(
            f"fake_{i:03d}", seed=seed * 100_003 + i, pixels=pixels, **overrides
        )
        designs.append(generate_design(spec))
    for i in range(num_real):
        spec = make_real_spec(
            f"real_{i:03d}",
            seed=seed * 100_003 + 50_021 + i,
            pixels=pixels,
            **overrides,
        )
        designs.append(generate_design(spec))
    return designs
