"""Design → training-sample conversion and the dataset container.

A :class:`DesignSample` is one (feature stack, golden IR-drop label) pair.
Labels come from a fully converged solve (direct sparse factorisation);
the numerical feature channels come from a deliberately rough AMG-PCG
solve with few iterations, exactly as the fusion framework prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Design
from repro.features.fusion import FeatureConfig, assemble_feature_stack
from repro.features.maps import FeatureStack
from repro.grid.raster import layer_values_image
from repro.mna.stamper import build_reduced_system
from repro.solvers.direct import DirectSolver
from repro.solvers.powerrush import PowerRushSimulator


@dataclass
class DesignSample:
    """One supervised example.

    Attributes
    ----------
    name, kind:
        Provenance (design name; ``"fake"`` / ``"real"``).
    features:
        Input stack of shape ``(C, H, W)`` with channel names.
    label:
        Golden bottom-layer IR-drop image ``(H, W)`` in volts.
    rough_label:
        The rough numerical bottom-layer drop image (what the solver alone
        would report) — kept for the Fig. 7 comparison; may be ``None``
        when the numerical stage is ablated.
    """

    name: str
    kind: str
    features: FeatureStack
    label: np.ndarray
    rough_label: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.label = np.asarray(self.label, dtype=float)
        if self.label.shape != self.features.shape:
            raise ValueError(
                f"label shape {self.label.shape} != feature shape "
                f"{self.features.shape}"
            )

    @property
    def is_fake(self) -> bool:
        return self.kind == "fake"


def golden_ir_drop(design: Design) -> np.ndarray:
    """Golden bottom-layer IR-drop image via direct factorisation."""
    system = build_reduced_system(design.grid)
    result = DirectSolver().solve(system.matrix, system.rhs)
    voltages = system.scatter(result.x)
    drop = design.spec.supply_voltage - voltages
    return layer_values_image(design.geometry, design.grid, drop, layer=1)


def build_sample(
    design: Design,
    feature_config: FeatureConfig | None = None,
    solver_iterations: int = 2,
    solver_preset: str = "fast",
) -> DesignSample:
    """Build the (features, golden label) pair for one design.

    Parameters
    ----------
    feature_config:
        Feature-family switches; defaults to the full fusion stack.
    solver_iterations:
        AMG-PCG iteration cap for the rough numerical solution (the
        paper's sweet spot is 2).
    solver_preset:
        PowerRush preset for the rough stage (``"fast"`` matches the
        framework's cheap rough-iteration regime).
    """
    feature_config = feature_config or FeatureConfig()
    rough_voltages = None
    rough_label = None
    if feature_config.use_numerical:
        simulator = PowerRushSimulator(
            max_iterations=solver_iterations, preset=solver_preset
        )
        report = simulator.simulate_grid(
            design.grid, supply_voltage=design.spec.supply_voltage
        )
        rough_voltages = report.voltages
        rough_label = report.drop_image(design.geometry, layer=1)
    features = assemble_feature_stack(
        design.geometry,
        design.grid,
        feature_config,
        voltages=rough_voltages,
        supply_voltage=design.spec.supply_voltage,
    )
    return DesignSample(
        name=design.name,
        kind=design.kind,
        features=features,
        label=golden_ir_drop(design),
        rough_label=rough_label,
    )


@dataclass
class IRDropDataset:
    """An ordered collection of samples with train/test conveniences."""

    samples: list[DesignSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> DesignSample:
        return self.samples[index]

    def __iter__(self):
        return iter(self.samples)

    @property
    def channels(self) -> list[str]:
        """Feature channel names (validated identical across samples)."""
        if not self.samples:
            raise ValueError("empty dataset has no channels")
        first = self.samples[0].features.channels
        for sample in self.samples[1:]:
            if sample.features.channels != first:
                raise ValueError(
                    f"inconsistent channels: {sample.name} has "
                    f"{sample.features.channels}, expected {first}"
                )
        return first

    def split_by_kind(self) -> tuple["IRDropDataset", "IRDropDataset"]:
        """(fake subset, real subset)."""
        fakes = [s for s in self.samples if s.is_fake]
        reals = [s for s in self.samples if not s.is_fake]
        return IRDropDataset(fakes), IRDropDataset(reals)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stack into ``X (N, C, H, W)`` and ``Y (N, 1, H, W)`` arrays.

        Fills preallocated fp64 blocks row by row — one allocation per
        output instead of the stack-then-astype pattern whose cast
        duplicated the whole dataset at peak.
        """
        if not self.samples:
            raise ValueError("empty dataset")
        first = self.samples[0]
        x = np.empty(
            (len(self.samples), *first.features.data.shape), dtype=np.float64
        )
        y = np.empty(
            (len(self.samples), 1, *first.label.shape), dtype=np.float64
        )
        for k, sample in enumerate(self.samples):
            x[k] = sample.features.data
            y[k, 0] = sample.label
        return x, y

    @classmethod
    def from_designs(
        cls,
        designs: list[Design],
        feature_config: FeatureConfig | None = None,
        solver_iterations: int = 2,
        solver_preset: str = "fast",
        jobs: int = 1,
    ) -> "IRDropDataset":
        """Build samples for a list of designs.

        With ``jobs > 1`` the per-design feature extraction fans out over
        forked worker processes (results are returned in design order, so
        the dataset is identical to a serial build).  Any per-design
        failure aborts the build with the design's name in the error.
        """
        if jobs <= 1 or len(designs) <= 1:
            return cls(
                [
                    build_sample(
                        d, feature_config, solver_iterations, solver_preset
                    )
                    for d in designs
                ]
            )
        import functools

        from repro.core.batch import parallel_map

        worker = functools.partial(
            build_sample,
            feature_config=feature_config,
            solver_iterations=solver_iterations,
            solver_preset=solver_preset,
        )
        outcomes, _ = parallel_map(worker, designs, jobs)
        samples = []
        for design, (sample, error) in zip(designs, outcomes):
            if error is not None:
                raise RuntimeError(
                    f"building sample for design {design.name!r} failed: "
                    f"{error}"
                )
            samples.append(sample)
        return cls(samples)
