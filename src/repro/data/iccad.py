"""ICCAD-2023-contest-style on-disk design format.

The contest distributes each design as a directory holding the SPICE deck
plus CSV images (one value per 1um x 1um pixel): ``current_map.csv``,
``eff_dist_map.csv``, ``pdn_density.csv`` and the golden
``ir_drop_map.csv``.  These helpers write/read that layout so externally
produced contest data can be dropped in, and our synthetic data can be
exported for other tools.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.spice.ast import Netlist
from repro.spice.parser import parse_spice_file
from repro.spice.writer import write_spice

_IMAGE_FILES = {
    "current": "current_map.csv",
    "eff_dist": "eff_dist_map.csv",
    "pdn_density": "pdn_density.csv",
    "ir_drop": "ir_drop_map.csv",
}


def save_iccad_design(
    directory: str | os.PathLike[str],
    netlist: Netlist,
    images: dict[str, np.ndarray],
) -> None:
    """Write a design directory in the contest layout.

    Parameters
    ----------
    images:
        Any subset of ``current`` / ``eff_dist`` / ``pdn_density`` /
        ``ir_drop`` keyed by short name.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    write_spice(netlist, path / "netlist.sp")
    for key, image in images.items():
        if key not in _IMAGE_FILES:
            raise ValueError(
                f"unknown image key {key!r}; expected one of {sorted(_IMAGE_FILES)}"
            )
        np.savetxt(path / _IMAGE_FILES[key], np.asarray(image), delimiter=",")


def load_iccad_design(
    directory: str | os.PathLike[str],
) -> tuple[Netlist, dict[str, np.ndarray]]:
    """Read a contest-layout design directory.

    Returns the parsed netlist and whichever images are present.
    """
    path = Path(directory)
    deck = path / "netlist.sp"
    if not deck.exists():
        raise FileNotFoundError(f"no netlist.sp under {path}")
    netlist = parse_spice_file(deck)
    images: dict[str, np.ndarray] = {}
    for key, filename in _IMAGE_FILES.items():
        file_path = path / filename
        if file_path.exists():
            images[key] = np.loadtxt(file_path, delimiter=",", ndmin=2)
    return netlist, images
