"""Predefined curriculum learning (Section III-E, Fig. 5).

The predefined curriculum has two parts:

- a **difficulty measurer**: artificially generated (fake) designs are
  "easier", real-world designs are "harder";
- a **continuous training scheduler**: "the model adjusts the training
  data subset after each epoch" — easy samples are always visible, hard
  samples phase in linearly between two epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DesignSample, IRDropDataset

EASY = 0
HARD = 1


def difficulty_of(sample: DesignSample) -> int:
    """The predefined difficulty measurer: fake = easy, real = hard."""
    return EASY if sample.is_fake else HARD


@dataclass(frozen=True)
class CurriculumScheduler:
    """Continuous scheduler over a fixed dataset.

    Epoch *e* (0-based) of ``total_epochs`` exposes all easy samples plus
    the first ``ramp(e)`` fraction of hard samples, where ``ramp`` rises
    linearly from 0 at ``hard_start_epoch`` to 1 at ``hard_full_epoch``.
    With the defaults the model sees only fakes for the first fifth of
    training and the full mixture by three-fifths.

    Attributes
    ----------
    total_epochs:
        Planned epoch count (used only for the default ramp endpoints).
    hard_start_epoch, hard_full_epoch:
        Ramp endpoints; ``None`` derives them from ``total_epochs``
        (20 % and 60 %).
    """

    total_epochs: int
    hard_start_epoch: int | None = None
    hard_full_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        start, full = self._endpoints()
        if not 0 <= start <= full:
            raise ValueError(
                f"need 0 <= hard_start ({start}) <= hard_full ({full})"
            )

    def _endpoints(self) -> tuple[int, int]:
        start = (
            self.hard_start_epoch
            if self.hard_start_epoch is not None
            else max(0, round(0.2 * self.total_epochs))
        )
        full = (
            self.hard_full_epoch
            if self.hard_full_epoch is not None
            else max(start, round(0.6 * self.total_epochs))
        )
        return start, full

    def hard_fraction(self, epoch: int) -> float:
        """Fraction of hard samples visible at *epoch* (0-based)."""
        start, full = self._endpoints()
        if epoch < start:
            return 0.0
        if epoch >= full or full == start:
            return 1.0
        return (epoch - start) / (full - start)

    def subset_indices(self, dataset: IRDropDataset, epoch: int) -> list[int]:
        """Indices of the samples visible at *epoch*, easy-first order.

        Hard samples enter in a deterministic order (dataset order), so
        consecutive epochs see nested subsets — the "continuous" property.
        The subset is never empty: if the dataset has no easy samples the
        first hard sample is always admitted.
        """
        easy = [i for i, s in enumerate(dataset) if difficulty_of(s) == EASY]
        hard = [i for i, s in enumerate(dataset) if difficulty_of(s) == HARD]
        count = int(np.ceil(self.hard_fraction(epoch) * len(hard)))
        visible = easy + hard[:count]
        if not visible and hard:
            visible = hard[:1]
        return visible

    def subset(self, dataset: IRDropDataset, epoch: int) -> IRDropDataset:
        """The visible sub-dataset at *epoch*."""
        indices = self.subset_indices(dataset, epoch)
        return IRDropDataset([dataset[i] for i in indices])
