"""The ICCAD-2023 contest winner's recipe.

The winning entry used a U-Net with a deepened bottleneck and heavy
hotspot-oriented training; we reproduce it as a depth+1 plain U-Net whose
preferred loss is the hotspot-weighted MAE.  (The contest publishes
winners, not code, so this follows the public solution descriptions.)
"""

from __future__ import annotations

from repro.models.unet_blocks import FlexUNet, default_encoder


class ContestWinner(FlexUNet):
    """Deeper plain U-Net tuned for the contest metrics."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth + 1,
            encoder_factory=default_encoder,
            use_attention_gate=False,
            decoder_post_factory=None,
            seed=seed,
        )
