"""MAVIREC (Chhabria et al., DATE'21): 3D-U-Net-style predictor.

MAVIREC convolves over the metal-layer ("depth") dimension as well as
space.  Without a 3D runtime we realise the same computation as a
*depth-shared stem*: one 2D kernel applied identically to every input
channel (a 3D convolution with kernel depth 1 and shared spatial weights)
followed by a 1x1 depth-mixing convolution — then the usual U-Net body.
This keeps MAVIREC's distinguishing property (early weight sharing across
the layer stack) while staying in 2D kernels.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv2d_backward, conv2d_forward
from repro.nn.init import construction_rng, kaiming_normal
from repro.nn.layers import Conv2d, ReLU
from repro.nn.module import Module, Parameter
from repro.models.unet_blocks import FlexUNet


class DepthSharedConv(Module):
    """One 2D kernel applied independently to every input channel.

    Equivalent to a 3D convolution with depth-1 kernel shared over depth:
    input ``(N, C, H, W)`` → output ``(N, C, H, W)`` with a single
    ``(1, 1, k, k)`` weight.
    """

    def __init__(
        self, kernel: int = 3, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        self.kernel = (kernel, kernel)
        self.padding = ((kernel - 1) // 2, (kernel - 1) // 2)
        self.weight = Parameter(
            kaiming_normal((1, 1, kernel, kernel), kernel * kernel, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(1), name="bias")
        self._cols: np.ndarray | None = None
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        folded = x.reshape(n * c, 1, h, w)
        out, cols = conv2d_forward(
            folded, self.weight.compute, self.bias.compute, (1, 1), self.padding
        )
        self._cols = cols
        self._shape = (n, c, h, w)
        return out.reshape(n, c, h, w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        folded_grad = grad_output.reshape(n * c, 1, h, w)
        grad_input, grad_weight, grad_bias = conv2d_backward(
            folded_grad,
            self._cols,
            (n * c, 1, h, w),
            self.weight.compute,
            (1, 1),
            self.padding,
            with_bias=True,
        )
        self.weight.grad += grad_weight
        if grad_bias is None:
            raise RuntimeError(
                "conv2d_backward returned no bias gradient despite "
                "with_bias=True"
            )
        self.bias.grad += grad_bias
        return grad_input.reshape(n, c, h, w)


class MAVIREC(Module):
    """Depth-shared 3D-style stem + U-Net body + regression head."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem_spatial = DepthSharedConv(3, rng=rng)
        self.stem_act = ReLU()
        self.stem_mix = Conv2d(in_channels, in_channels, 1, padding=0, rng=rng)
        self.stem_mix_act = ReLU()
        self.body = FlexUNet(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            seed=seed + 1,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_act(self.stem_spatial(x))
        x = self.stem_mix_act(self.stem_mix(x))
        return self.body(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.body.backward(grad_output)
        grad = self.stem_mix.backward(self.stem_mix_act.backward(grad))
        return self.stem_spatial.backward(self.stem_act.backward(grad))
