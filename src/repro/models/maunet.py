"""MAUnet (Wang et al., DAC'24): multiscale attention U-Net.

MAUnet's distinguishing pieces are (i) multiscale encoder blocks that run
3x3 and 5x5 kernels in parallel, (ii) residual connections around the
blocks, and (iii) channel attention in the decoder.  It is the strongest
pure-ML baseline in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import construction_rng
from repro.nn.attention import ChannelAttention
from repro.nn.containers import Sequential
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.module import Module
from repro.models.unet_blocks import FlexUNet


class MultiScaleBlock(Module):
    """Parallel 3x3 / 5x5 convolutions with a residual 1x1 shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = construction_rng(rng)
        half = out_channels // 2
        rest = out_channels - half
        self.branch3 = Sequential(
            Conv2d(in_channels, half, 3, rng=rng), BatchNorm2d(half), ReLU()
        )
        self.branch5 = Sequential(
            Conv2d(in_channels, rest, 5, rng=rng), BatchNorm2d(rest), ReLU()
        )
        self.shortcut = Conv2d(in_channels, out_channels, 1, padding=0, rng=rng)
        self._half = half

    def forward(self, x: np.ndarray) -> np.ndarray:
        merged = np.concatenate([self.branch3(x), self.branch5(x)], axis=1)
        return merged + self.shortcut(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.shortcut.backward(grad_output)
        grad = grad + self.branch3.backward(grad_output[:, : self._half])
        grad = grad + self.branch5.backward(grad_output[:, self._half :])
        return grad


def _multiscale_encoder(
    scale: int, in_channels: int, out_channels: int, rng: np.random.Generator
) -> Module:
    return MultiScaleBlock(in_channels, out_channels, rng=rng)


class MAUnet(FlexUNet):
    """Multiscale encoder + channel attention decoder U-Net."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            encoder_factory=_multiscale_encoder,
            use_attention_gate=False,
            decoder_post_factory=lambda channels, rng: ChannelAttention(
                channels, rng=rng
            ),
            seed=seed,
        )
