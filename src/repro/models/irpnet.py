"""IRPnet (Meng et al., DATE'24): pyramid features + Kirchhoff loss.

IRPnet "utilizes a pyramid model to capture global features and introduces
a loss function with Kirchhoff's law constraints".  The pyramid here is an
FPN-style head on a shared encoder: every scale's features are projected
to a common width, upsampled to full resolution and summed before the
regression head.  Its preferred training loss is
:class:`~repro.nn.losses.KirchhoffLoss`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU, UpsampleNearest
from repro.nn.containers import Sequential
from repro.nn.module import Module
from repro.models.unet_blocks import ConvBlock


class IRPnet(Module):
    """Feature-pyramid IR-drop predictor."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        rng = np.random.default_rng(seed)
        self.depth = depth
        widths = [base_channels * (2**i) for i in range(depth + 1)]

        self.encoders: list[Module] = []
        self.pools: list[Module] = []
        current = in_channels
        for scale in range(depth + 1):
            self.encoders.append(ConvBlock(current, widths[scale], rng=rng))
            if scale < depth:
                self.pools.append(MaxPool2d(2))
            current = widths[scale]

        pyramid_width = base_channels
        self.laterals: list[Module] = [
            Conv2d(widths[scale], pyramid_width, 1, padding=0, rng=rng)
            for scale in range(depth + 1)
        ]
        self.upsamplers: list[Module] = [
            UpsampleNearest(2**scale) for scale in range(depth + 1)
        ]
        final = Conv2d(pyramid_width, 1, 1, padding=0, rng=rng)
        final.weight.data[:] = 0.0  # zero start, as in the U-Net heads
        if final.bias is not None:
            final.bias.data[:] = 0.0
        self.head = Sequential(
            Conv2d(pyramid_width, pyramid_width, 3, rng=rng),
            BatchNorm2d(pyramid_width),
            ReLU(),
            final,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        h, w = x.shape[2:]
        factor = 2**self.depth
        if h % factor or w % factor:
            raise ValueError(
                f"input {h}x{w} must be divisible by 2**depth = {factor}"
            )
        fused = None
        for scale in range(self.depth + 1):
            x = self.encoders[scale](x)
            contribution = self.upsamplers[scale](self.laterals[scale](x))
            fused = contribution if fused is None else fused + contribution
            if scale < self.depth:
                x = self.pools[scale](x)
        return self.head(fused)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_fused = self.head.backward(grad_output)
        grad_deeper = None
        for scale in reversed(range(self.depth + 1)):
            grad_enc_out = self.laterals[scale].backward(
                self.upsamplers[scale].backward(grad_fused)
            )
            if scale < self.depth:
                if grad_deeper is None:
                    raise RuntimeError("backward called before forward")
                grad_enc_out = grad_enc_out + self.pools[scale].backward(grad_deeper)
            grad_deeper = self.encoders[scale].backward(grad_enc_out)
        if grad_deeper is None:
            raise RuntimeError("backward called before forward")
        return grad_deeper
