"""IR-drop prediction models: IR-Fusion and the six baselines of Table I.

Every model maps a ``(N, C, H, W)`` feature stack to a ``(N, 1, H, W)``
IR-drop image and shares the constructor signature
``Model(in_channels, base_channels=8, seed=0)``, so the evaluation harness
can swap them freely.  :mod:`repro.models.registry` provides name-based
construction and each model's preferred training loss.
"""

from repro.models.contest_winner import ContestWinner
from repro.models.ir_fusion_net import IRFusionNet
from repro.models.iredge import IREDGe
from repro.models.irpnet import IRPnet
from repro.models.maunet import MAUnet
from repro.models.mavirec import MAVIREC
from repro.models.pgau import PGAU
from repro.models.registry import MODEL_REGISTRY, create_model, preferred_loss
from repro.models.unet_blocks import ConvBlock, FlexUNet, UpBlock

__all__ = [
    "ContestWinner",
    "ConvBlock",
    "FlexUNet",
    "IREDGe",
    "IRFusionNet",
    "IRPnet",
    "MAUnet",
    "MAVIREC",
    "MODEL_REGISTRY",
    "PGAU",
    "UpBlock",
    "create_model",
    "preferred_loss",
]
