"""IREDGe (Chhabria et al., ASPDAC'21): plain encoder-decoder.

The EDGe network is a vanilla U-Net that turns power/current images into a
static IR-drop image — no attention, no multiscale blocks.  It is the
earliest (and simplest) of the Table I baselines.
"""

from __future__ import annotations

from repro.models.unet_blocks import FlexUNet, default_encoder


class IREDGe(FlexUNet):
    """Vanilla encoder-decoder (U-Net) IR-drop predictor."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            encoder_factory=default_encoder,
            use_attention_gate=False,
            decoder_post_factory=None,
            seed=seed,
        )
