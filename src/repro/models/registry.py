"""Name-based model construction and preferred losses.

The evaluation harness iterates Table I rows by name; each entry knows how
to build the model and which training loss the original method prescribes
(MAE by default, Kirchhoff-constrained for IRPnet, hotspot-weighted for
PGAU and the contest winner).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.contest_winner import ContestWinner
from repro.models.ir_fusion_net import IRFusionNet
from repro.models.iredge import IREDGe
from repro.models.irpnet import IRPnet
from repro.models.maunet import MAUnet
from repro.models.mavirec import MAVIREC
from repro.models.pgau import PGAU
from repro.nn.losses import KirchhoffLoss, MAELoss, WeightedHotspotLoss, _Loss
from repro.nn.module import Module

MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "iredge": IREDGe,
    "mavirec": MAVIREC,
    "irpnet": IRPnet,
    "pgau": PGAU,
    "maunet": MAUnet,
    "contest_winner": ContestWinner,
    "ir_fusion": IRFusionNet,
}

# Paper-facing display names for tables.
DISPLAY_NAMES: dict[str, str] = {
    "iredge": "IREDGe",
    "mavirec": "MAVIREC",
    "irpnet": "IRPnet",
    "pgau": "PGAU",
    "maunet": "MAUnet",
    "contest_winner": "Contest Winner",
    "ir_fusion": "IR-Fusion (Ours)",
}


def create_model(
    name: str,
    in_channels: int,
    base_channels: int = 8,
    depth: int = 3,
    seed: int = 0,
    **kwargs,
) -> Module:
    """Instantiate a registered model by name."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory(
        in_channels=in_channels,
        base_channels=base_channels,
        depth=depth,
        seed=seed,
        **kwargs,
    )


def preferred_loss(name: str, current_map: np.ndarray | None = None) -> _Loss:
    """The training loss the original method prescribes.

    Parameters
    ----------
    current_map:
        Full-resolution current image for IRPnet's Kirchhoff constraint
        (optional; without it IRPnet falls back to plain MAE).
    """
    if name not in MODEL_REGISTRY:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(MODEL_REGISTRY)}"
        )
    if name == "irpnet":
        return KirchhoffLoss(current_map=current_map, weight=0.05)
    if name in ("pgau", "contest_winner"):
        return WeightedHotspotLoss()
    if name == "ir_fusion":
        return WeightedHotspotLoss(hotspot_weight=6.0)
    return MAELoss()
