"""The Inception Attention U-Net at the heart of IR-Fusion (Fig. 4).

Encoder: Inception-A → Inception-B → Inception-C across the three scales
("this systematic ordering ... minimizes information loss during
downsampling").  Skips pass through attention gates; every decoder stage
is followed by a CBAM block ("to focus on various scales and directions in
subsequent decoder stages"); a 1x1 regression head emits the IR-drop map.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import CBAM
from repro.nn.containers import Sequential
from repro.nn.inception import InceptionA, InceptionB, InceptionC
from repro.nn.layers import BatchNorm2d, Identity
from repro.nn.module import Module
from repro.models.unet_blocks import FlexUNet


def _inception_encoder(
    scale: int, in_channels: int, out_channels: int, rng: np.random.Generator
) -> Module:
    """Inception-A/B/C by scale, with a BN to stabilise the concat output."""
    blocks = {0: InceptionA, 1: InceptionB, 2: InceptionC}
    block_cls = blocks.get(scale, InceptionC)
    return Sequential(
        block_cls(in_channels, out_channels, rng=rng),
        BatchNorm2d(out_channels),
    )


class IRFusionNet(FlexUNet):
    """Inception Attention U-Net.

    Parameters
    ----------
    in_channels:
        Width of the hierarchical numerical-structural feature stack.
    base_channels:
        First-scale width (paper-scale models use 32+; the benchmarks run
        reduced widths for CPU feasibility).
    use_inception:
        Ablation switch ("w/o Inception"): plain double-conv encoders.
    use_cbam:
        Ablation switch ("w/o CBAM"): identity decoder post-blocks.
    """

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
        use_inception: bool = True,
        use_cbam: bool = True,
    ) -> None:
        from repro.models.unet_blocks import default_encoder

        encoder = _inception_encoder if use_inception else default_encoder
        post = (
            (lambda channels, rng: CBAM(channels, rng=rng))
            if use_cbam
            else (lambda channels, rng: Identity())
        )
        super().__init__(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            encoder_factory=encoder,
            use_attention_gate=True,
            decoder_post_factory=post,
            seed=seed,
        )
        self.use_inception = use_inception
        self.use_cbam = use_cbam
