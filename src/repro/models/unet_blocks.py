"""Shared U-Net machinery.

:class:`FlexUNet` is a configurable encoder-decoder skeleton: the models
of Table I differ only in the encoder block family, the skip treatment
(plain vs attention gate) and the decoder post-block (none / CBAM /
channel attention), so they are all thin configurations of this class.
Forward/backward of the skip topology is handled once, here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.init import construction_rng
from repro.nn.attention import AttentionGate
from repro.nn.containers import Sequential
from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU, UpsampleNearest
from repro.nn.module import Module


class ConvBlock(Sequential):
    """The classic U-Net double conv: (conv3 → BN → ReLU) x 2."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = construction_rng(rng)
        super().__init__(
            Conv2d(in_channels, out_channels, 3, rng=rng),
            BatchNorm2d(out_channels),
            ReLU(),
            Conv2d(out_channels, out_channels, 3, rng=rng),
            BatchNorm2d(out_channels),
            ReLU(),
        )


class UpBlock(Sequential):
    """Decoder upsampling: nearest x2 followed by a 3x3 conv."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = construction_rng(rng)
        super().__init__(
            UpsampleNearest(2),
            Conv2d(in_channels, out_channels, 3, rng=rng),
            BatchNorm2d(out_channels),
            ReLU(),
        )


EncoderFactory = Callable[[int, int, int, np.random.Generator], Module]
PostFactory = Callable[[int, np.random.Generator], Module]


def default_encoder(
    scale: int, in_channels: int, out_channels: int, rng: np.random.Generator
) -> Module:
    """Plain double-conv encoder block (scale index unused)."""
    return ConvBlock(in_channels, out_channels, rng=rng)


class FlexUNet(Module):
    """Configurable U-Net.

    Parameters
    ----------
    in_channels:
        Input feature channels.
    base_channels:
        Width of the first scale; scale *i* uses ``base * 2**i``.
    depth:
        Number of down/upsampling stages (input H, W must be divisible by
        ``2**depth``).
    encoder_factory:
        Builds the encoder block for each scale,
        ``(scale, in, out, rng) -> Module``.
    use_attention_gate:
        Filter each skip with an :class:`AttentionGate` driven by the
        decoder signal.
    decoder_post_factory:
        Optional per-scale block appended after each decoder stage
        (e.g. CBAM), ``(channels, rng) -> Module``.
    out_channels:
        Output channels of the regression head (1 for IR drop).
    seed:
        Weight-init seed; construction order fixes all weights.
    """

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        encoder_factory: EncoderFactory = default_encoder,
        use_attention_gate: bool = False,
        decoder_post_factory: PostFactory | None = None,
        out_channels: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        rng = np.random.default_rng(seed)
        self.depth = depth
        widths = [base_channels * (2**i) for i in range(depth)]
        bottleneck_width = base_channels * (2**depth)

        self.encoders: list[Module] = []
        self.pools: list[Module] = []
        current = in_channels
        for scale, width in enumerate(widths):
            self.encoders.append(encoder_factory(scale, current, width, rng))
            self.pools.append(MaxPool2d(2))
            current = width
        self.bottleneck = ConvBlock(current, bottleneck_width, rng=rng)

        self.ups: list[Module] = []
        self.gates: list[Module | None] = []
        self.decoders: list[Module] = []
        self.posts: list[Module | None] = []
        current = bottleneck_width
        for scale in reversed(range(depth)):
            width = widths[scale]
            self.ups.append(UpBlock(current, width, rng=rng))
            self.gates.append(
                AttentionGate(width, width, rng=rng) if use_attention_gate else None
            )
            self.decoders.append(ConvBlock(2 * width, width, rng=rng))
            self.posts.append(
                decoder_post_factory(width, rng) if decoder_post_factory else None
            )
            current = width
        self.head = Conv2d(current, out_channels, 1, padding=0, rng=rng)
        # Zero-initialised head: the untrained network predicts exactly 0,
        # so under residual (fusion) learning the starting point *is* the
        # rough numerical solution and training can only refine it.
        self.head.weight.data[:] = 0.0
        if self.head.bias is not None:
            self.head.bias.data[:] = 0.0
        self._skip_widths: list[int] = widths

    # -- forward ---------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        h, w = x.shape[2:]
        factor = 2**self.depth
        if h % factor or w % factor:
            raise ValueError(
                f"input {h}x{w} must be divisible by 2**depth = {factor}"
            )
        skips: list[np.ndarray] = []
        for encoder, pool in zip(self.encoders, self.pools):
            x = encoder(x)
            skips.append(x)
            x = pool(x)
        x = self.bottleneck(x)
        for stage, (up, gate, decoder, post) in enumerate(
            zip(self.ups, self.gates, self.decoders, self.posts)
        ):
            scale = self.depth - 1 - stage
            x = up(x)
            skip = skips[scale]
            if gate is not None:
                skip = gate(skip, x)
            x = decoder(np.concatenate([skip, x], axis=1))
            if post is not None:
                x = post(x)
        return self.head(x)

    # -- backward ----------------------------------------------------------------

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        skip_grads: dict[int, np.ndarray] = {}
        for stage in reversed(range(self.depth)):
            scale = self.depth - 1 - stage
            up = self.ups[stage]
            gate = self.gates[stage]
            decoder = self.decoders[stage]
            post = self.posts[stage]
            if post is not None:
                grad = post.backward(grad)
            grad_cat = decoder.backward(grad)
            width = self._skip_widths[scale]
            grad_skip = grad_cat[:, :width]
            grad_up = grad_cat[:, width:]
            if gate is not None:
                grad_skip, grad_gate_signal = gate.backward(grad_skip)
                grad_up = grad_up + grad_gate_signal
            skip_grads[scale] = grad_skip
            grad = up.backward(grad_up)
        grad = self.bottleneck.backward(grad)
        for scale in reversed(range(self.depth)):
            grad = self.pools[scale].backward(grad)
            grad = grad + skip_grads[scale]
            grad = self.encoders[scale].backward(grad)
        return grad
