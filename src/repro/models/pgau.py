"""PGAU (Guo et al., GLSVLSI'24): attention U-Net + label smoothing.

PGAU is the authors' previous model and IR-Fusion's architectural
ancestor: a U-Net with attention gates on the skip connections, trained
with label-distribution smoothing that emphasises hotspot labels.  The
smoothing is realised by the :class:`~repro.nn.losses.WeightedHotspotLoss`
preferred loss.
"""

from __future__ import annotations

from repro.models.unet_blocks import FlexUNet, default_encoder


class PGAU(FlexUNet):
    """Attention U-Net (gated skips, plain conv encoders)."""

    def __init__(
        self,
        in_channels: int,
        base_channels: int = 8,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(
            in_channels=in_channels,
            base_channels=base_channels,
            depth=depth,
            encoder_factory=default_encoder,
            use_attention_gate=True,
            decoder_post_factory=None,
            seed=seed,
        )
