"""Training loop, learning-rate schedules and contest metrics."""

from repro.train.metrics import (
    Metrics,
    f1_hotspot,
    mae,
    max_ir_drop_error,
    evaluate_prediction,
)
from repro.train.schedule import ConstantLR, CosineLR, StepLR
from repro.train.trainer import TrainConfig, Trainer, TrainHistory

__all__ = [
    "ConstantLR",
    "CosineLR",
    "Metrics",
    "StepLR",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "evaluate_prediction",
    "f1_hotspot",
    "mae",
    "max_ir_drop_error",
]
