"""Contest evaluation metrics (Section IV-A).

- **MAE**: mean absolute error between predicted and golden IR-drop maps.
- **F1**: hotspot classification score.  "IR drop values exceeding 90 % of
  the maximum ground truth are classified as positive"; the same absolute
  threshold is applied to the prediction.
- **MIRDE**: maximum-IR-drop error — the prediction error in the region
  where the golden drop peaks (the signoff-critical worst case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mae(prediction: np.ndarray, golden: np.ndarray) -> float:
    """Mean absolute error (same units as the inputs)."""
    prediction = np.asarray(prediction, dtype=float)
    golden = np.asarray(golden, dtype=float)
    if prediction.shape != golden.shape:
        raise ValueError(f"shape mismatch {prediction.shape} vs {golden.shape}")
    return float(np.mean(np.abs(prediction - golden)))


def hotspot_mask(golden: np.ndarray, threshold: float = 0.9) -> np.ndarray:
    """Boolean mask of golden hotspots (> threshold x golden max)."""
    peak = float(np.max(golden))
    return np.asarray(golden) > threshold * peak


def f1_hotspot(
    prediction: np.ndarray, golden: np.ndarray, threshold: float = 0.9
) -> float:
    """Hotspot F1 with the contest thresholding rule.

    Both maps are thresholded at ``threshold x max(golden)``.  If the
    golden map has no positives (flat map) the score is defined as 1.0
    when the prediction also has none, else 0.0.
    """
    prediction = np.asarray(prediction, dtype=float)
    golden = np.asarray(golden, dtype=float)
    if prediction.shape != golden.shape:
        raise ValueError(f"shape mismatch {prediction.shape} vs {golden.shape}")
    cut = threshold * float(np.max(golden))
    actual = golden > cut
    predicted = prediction > cut
    tp = int(np.sum(actual & predicted))
    fp = int(np.sum(~actual & predicted))
    fn = int(np.sum(actual & ~predicted))
    if tp == 0:
        return 1.0 if (fp == 0 and fn == 0) else 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)


def max_ir_drop_error(prediction: np.ndarray, golden: np.ndarray) -> float:
    """MIRDE: absolute error at the golden worst-drop location."""
    prediction = np.asarray(prediction, dtype=float)
    golden = np.asarray(golden, dtype=float)
    if prediction.shape != golden.shape:
        raise ValueError(f"shape mismatch {prediction.shape} vs {golden.shape}")
    peak_index = np.unravel_index(int(np.argmax(golden)), golden.shape)
    return float(abs(prediction[peak_index] - golden[peak_index]))


@dataclass(frozen=True)
class Metrics:
    """Per-design (or averaged) metric bundle.

    ``mae`` and ``mirde`` are in volts; ``runtime_seconds`` measures the
    end-to-end inference path for the design(s).
    """

    mae: float
    f1: float
    mirde: float
    runtime_seconds: float = 0.0

    def scaled(self, factor: float = 1e4) -> "Metrics":
        """Metrics with voltage errors multiplied (paper unit: 1e-4 V)."""
        return Metrics(
            mae=self.mae * factor,
            f1=self.f1,
            mirde=self.mirde * factor,
            runtime_seconds=self.runtime_seconds,
        )

    @staticmethod
    def average(items: list["Metrics"]) -> "Metrics":
        """Arithmetic mean over designs (runtime summed is not meaningful,
        so it is averaged too, matching per-design reporting)."""
        if not items:
            raise ValueError("cannot average an empty metric list")
        return Metrics(
            mae=float(np.mean([m.mae for m in items])),
            f1=float(np.mean([m.f1 for m in items])),
            mirde=float(np.mean([m.mirde for m in items])),
            runtime_seconds=float(np.mean([m.runtime_seconds for m in items])),
        )


def evaluate_prediction(
    prediction: np.ndarray,
    golden: np.ndarray,
    runtime_seconds: float = 0.0,
    threshold: float = 0.9,
) -> Metrics:
    """All three accuracy metrics for one design."""
    return Metrics(
        mae=mae(prediction, golden),
        f1=f1_hotspot(prediction, golden, threshold=threshold),
        mirde=max_ir_drop_error(prediction, golden),
        runtime_seconds=runtime_seconds,
    )
