"""Mini-batch trainer with optional curriculum scheduling.

Labels are scaled (volts → ``label_scale`` units, default mV x 10) before
entering the network so losses and gradients are well conditioned;
predictions are scaled back transparently in :meth:`Trainer.predict`.

The training loop is fault-tolerant: periodic checkpoints capture model +
optimiser + RNG state for bit-exact resume (:meth:`Trainer.fit` with
``resume_from``), and a non-finite epoch loss triggers NaN recovery —
reload the last good state, halve the learning rate, continue — instead
of silently corrupting the weights.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.curriculum import CurriculumScheduler
from repro.data.dataset import DesignSample, IRDropDataset
from repro.nn.containers import fuse_conv_relu
from repro.nn.layers import BatchNorm2d
from repro.nn.losses import MAELoss, _Loss
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.obs import counter_add, span
from repro.train.schedule import ConstantLR, shard_batch

#: Shard count the data-parallel engine uses when ``grad_shards`` is 0
#: and ``jobs`` > 1.  A fixed constant (never derived from ``jobs``) so
#: auto-sharded runs at different worker counts share one decomposition
#: and therefore one parameter trajectory.  Two shards keeps each shard
#: large enough for efficient kernels while still letting every worker
#: pull shard items from the publication window's many batches.
DEFAULT_GRAD_SHARDS = 2


def _available_cores() -> int:
    """CPU cores this process may actually run on."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

#: Loss-scale floor: repeated overflows halve the scale but never push it
#: into a denormal spiral.
MIN_LOSS_SCALE = 1.0 / 65536.0

#: Monotonic label for per-epoch shared-memory scopes, so overlapping
#: epochs (nested trainers, tests) never collide on segment names.
_EPOCH_SCOPE_SEQ = itertools.count(1)


class _ShardWorker:
    """Per-shard forward+backward step, shippable to any worker kind.

    A plain picklable object (module-level class, array/module state
    only) instead of a closure, so the spawn pool can pickle it; forked
    workers still receive it by reference copy-on-write.  One pickle
    payload carries the whole object graph, so the aliasing between
    ``model``'s parameters and ``parameters`` (the optimizer's view,
    same order) survives the round-trip and ``zero_grad``/``backward``
    keep mutating the same arrays inside the worker.

    Only the returned payload crosses back per shard: ``(mean loss,
    shard size, flat gradient of the shard-mean loss, flat BatchNorm
    batch statistics or None)``.

    Shared-memory variant (:mod:`repro.core.shm`): when built with
    ``x_desc``/``y_desc`` the epoch data ships as ~100-byte descriptors
    resolved lazily in the worker, and when an item arrives as
    ``(shard, slot)`` — *slot* a writable :class:`~repro.core.shm.ShmArray`
    row preallocated by the parent — the flat gradient is written
    straight into the slot and the returned payload carries ``None`` in
    its place.  The bytes in the slot are exactly the bytes the inline
    path would have pickled, so the reduction downstream is unchanged.
    """

    def __init__(
        self,
        model,
        loss,
        parameters,
        bn_layers,
        x,
        y,
        scale,
        mixed,
        x_desc=None,
        y_desc=None,
    ) -> None:
        self.model = model
        self.loss = loss
        self.parameters = parameters
        self.bn_layers = bn_layers
        self.x = x
        self.y = y
        self.scale = scale
        self.mixed = mixed
        self.x_desc = x_desc
        self.y_desc = y_desc

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # The pool's shm transport resolves shipped arrays read-only.
        # The forward/backward pass only ever *reads* weights, so
        # zero-copy views are fine there, but gradients accumulate in
        # place — give each parameter a fresh writable buffer (every
        # step starts with zero_grad, so the old values are dead).
        for parameter in self.parameters:
            if not parameter.grad.flags.writeable:
                parameter.grad = np.zeros_like(parameter.data)

    def _data(self) -> tuple[np.ndarray, np.ndarray]:
        if self.x is None:
            self.x = self.x_desc.resolve()
            self.y = self.y_desc.resolve()
        return self.x, self.y

    def __call__(self, item):
        if isinstance(item, tuple):
            shard, slot = item
        else:
            shard, slot = item, None
        x, y = self._data()
        prediction = self.model(x[shard])
        loss_value = self.loss.forward(prediction, y[shard])
        for parameter in self.parameters:
            parameter.zero_grad()
        grad_in = self.loss.backward()
        if self.scale != 1.0:
            grad_in = grad_in * self.scale
        self.model.backward(grad_in)
        flat = np.concatenate(
            [parameter.grad.ravel() for parameter in self.parameters]
        )
        if self.mixed:
            flat = flat.astype(np.float32)
        stats = None
        if self.bn_layers:
            stats = np.concatenate(
                [np.concatenate(bn.batch_stats) for bn in self.bn_layers]
            )
        if slot is not None:
            slot.resolve(writable=True)[:] = flat
            flat = None
        return float(loss_value), int(len(shard)), flat, stats


def _iter_modules(module: Module) -> list[Module]:
    """*module* and every descendant, in deterministic tree-walk order."""
    found = [module]
    for child in module.children():
        found.extend(_iter_modules(child))
    return found


@dataclass(frozen=True)
class TrainConfig:
    """Trainer knobs.

    Attributes
    ----------
    epochs, batch_size, lr:
        Standard loop controls (Adam optimiser).
    label_scale:
        Multiplier applied to labels (and inverted on prediction); IR
        drops are ~1e-3 V, so 1e3 conditions the regression to ~1.
    grad_clip:
        Global gradient-norm clip (0 disables).
    use_curriculum:
        Use the fake-easy/real-hard continuous scheduler.
    residual:
        Fusion-style residual learning: the network regresses the
        *correction* to the rough numerical solution and predictions are
        ``rough + correction`` ("the model can begin training from a point
        that is much closer to the target label", Section IV-B).  Applied
        only when every sample carries a rough numerical solution; pure-ML
        baselines (no numerical stage) fall back to direct regression
        automatically.
    shuffle_seed:
        Seed for per-epoch batch shuffling.
    early_stop_patience:
        When > 0 and a validation set is passed to :meth:`Trainer.fit`,
        stop after this many epochs without validation-MAE improvement and
        restore the best weights seen.
    checkpoint_every:
        Save a resumable checkpoint every N epochs (0 disables); requires
        ``checkpoint_path``.
    checkpoint_path:
        Where periodic checkpoints are written (single rotating file).
    nan_recovery:
        On a non-finite epoch loss: reload the last good model/optimiser
        state, scale the learning rate by ``recovery_lr_factor`` and keep
        training.  Off ⇒ the NaN epoch is recorded and training proceeds
        with whatever weights the epoch produced (legacy behaviour).
    max_recoveries:
        Abort training (``history.aborted = "nan_loss"``) after this many
        recoveries — the run is unsalvageable, don't spin forever.
    recovery_lr_factor:
        Learning-rate multiplier applied at each NaN recovery.
    jobs:
        Worker processes for the data-parallel gradient engine.  With
        the default ``jobs=1`` and ``grad_shards=0`` the trainer runs
        the classic in-process loop (bitwise-identical to earlier
        releases); any other setting engages the sharded engine.
    precision:
        ``"fp64"`` (default) computes everything in float64.
        ``"mixed"`` runs forward/backward kernels in float32 while the
        optimiser keeps float64 master weights (see
        ``docs/performance.md`` for the full contract).
    grad_shards:
        Mini-batch shard count for the data-parallel engine.  0 = auto:
        the classic whole-batch loop at ``jobs=1``, a fixed
        ``DEFAULT_GRAD_SHARDS`` decomposition at ``jobs>1``.  Any
        explicit value >= 1 forces the sharded engine even at
        ``jobs=1``; because the decomposition and the fixed-order tree
        reduction depend only on this value (never on ``jobs``), runs
        with the same ``grad_shards`` produce bitwise-identical fp64
        parameter trajectories at any worker count.
    sync_every:
        Parameter-publication cadence of the sharded engine, in
        optimizer steps.  Workers always evaluate gradients at the
        parameters published at the start of their window: 0 (default)
        publishes once per epoch (one fork per epoch, maximum
        throughput, gradients up to one epoch stale), ``k`` republishes
        every ``k`` steps, and 1 is fully synchronous data parallelism.
        The optimizer itself always steps once per batch in the parent,
        in batch order, whatever the window size.
    loss_scale:
        Static starting loss scale for mixed precision (0 = auto: 1.0
        in fp64, 256.0 in mixed).  In mixed mode a guard skips the
        optimizer step and halves the scale whenever scaled gradients
        overflow to non-finite values, so overflows never reach the
        master weights; a NaN recovery resets the scale.
    """

    epochs: int = 10
    batch_size: int = 4
    lr: float = 2e-3
    label_scale: float = 20.0
    grad_clip: float = 5.0
    use_curriculum: bool = False
    residual: bool = True
    shuffle_seed: int = 0
    early_stop_patience: int = 0
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    nan_recovery: bool = True
    max_recoveries: int = 3
    recovery_lr_factor: float = 0.5
    jobs: int = 1
    precision: str = "fp64"
    grad_shards: int = 0
    sync_every: int = 0
    loss_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.precision not in ("fp64", "mixed"):
            raise ValueError(
                f"precision must be 'fp64' or 'mixed', got {self.precision!r}"
            )
        if self.grad_shards < 0:
            raise ValueError("grad_shards must be >= 0 (0 = auto)")
        if self.sync_every < 0:
            raise ValueError("sync_every must be >= 0 (0 = once per epoch)")
        if self.loss_scale < 0:
            raise ValueError("loss_scale must be >= 0 (0 = auto)")


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_sizes: list[int] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    validation_mae: list[float] = field(default_factory=list)
    stopped_early: bool = False
    recoveries: list[int] = field(default_factory=list)
    resumed_from: int | None = None
    aborted: str | None = None
    overflow_steps: int = 0

    @property
    def final_loss(self) -> float:
        """Last *finite* epoch loss (NaN epochs are recovery artefacts)."""
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        for loss in reversed(self.epoch_losses):
            if np.isfinite(loss):
                return loss
        return self.epoch_losses[-1]

    @property
    def best_validation_mae(self) -> float:
        if not self.validation_mae:
            raise ValueError("no validation metrics recorded")
        finite = [m for m in self.validation_mae if np.isfinite(m)]
        return min(finite) if finite else float("nan")

    def to_meta(self) -> dict:
        return {
            "epoch_losses": [float(v) for v in self.epoch_losses],
            "epoch_sizes": list(self.epoch_sizes),
            "learning_rates": [float(v) for v in self.learning_rates],
            "validation_mae": [float(v) for v in self.validation_mae],
            "stopped_early": self.stopped_early,
            "recoveries": list(self.recoveries),
            "resumed_from": self.resumed_from,
            "aborted": self.aborted,
            "overflow_steps": int(self.overflow_steps),
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "TrainHistory":
        return cls(
            epoch_losses=[float(v) for v in meta.get("epoch_losses", [])],
            epoch_sizes=list(meta.get("epoch_sizes", [])),
            learning_rates=[float(v) for v in meta.get("learning_rates", [])],
            validation_mae=[float(v) for v in meta.get("validation_mae", [])],
            stopped_early=bool(meta.get("stopped_early", False)),
            recoveries=list(meta.get("recoveries", [])),
            resumed_from=meta.get("resumed_from"),
            aborted=meta.get("aborted"),
            overflow_steps=int(meta.get("overflow_steps", 0)),
        )


class Trainer:
    """Fits a model to an :class:`IRDropDataset`.

    Parameters
    ----------
    fault_hook:
        Test-only hook ``(epoch, loss) -> loss`` applied to each epoch's
        mean loss before health checks — the fault-injection harness uses
        it to exercise NaN-loss recovery deterministically.
    fuse:
        Apply the conv+bias+ReLU fusion pass to the model before
        training (default).  Fusion shares the original Parameter
        objects and preserves state-dict paths, so checkpoints and
        optimizer slots are unaffected; outputs are numerically
        unchanged.
    """

    def __init__(
        self,
        model: Module,
        loss: _Loss | None = None,
        config: TrainConfig | None = None,
        lr_schedule=None,
        fault_hook: Callable[[int, float], float] | None = None,
        fuse: bool = True,
    ) -> None:
        self.model = model
        self.fused_pairs = fuse_conv_relu(model) if fuse else 0
        self.loss = loss or MAELoss()
        self.config = config or TrainConfig()
        self.lr_schedule = lr_schedule or ConstantLR(self.config.lr)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.fault_hook = fault_hook
        self.compute_dtype = (
            np.float32 if self.config.precision == "mixed" else np.float64
        )
        self.model.set_compute_dtype(self.compute_dtype)
        # Parameter list cached once (model structure is frozen after the
        # fusion pass above): zero_grad / clip / flatten all walk this
        # list, which is the same tree order model.parameters() returns.
        self._parameters = self.optimizer.parameters
        self._bn_layers = [
            m for m in _iter_modules(model) if isinstance(m, BatchNorm2d)
        ]
        self._initial_loss_scale = self.config.loss_scale or (
            256.0 if self.config.precision == "mixed" else 1.0
        )
        self._loss_scale = self._initial_loss_scale
        self._overflow_steps = 0

    # -- checkpointing ---------------------------------------------------------

    def _save_checkpoint(
        self,
        path: str | os.PathLike[str],
        epoch: int,
        rng: np.random.Generator,
        history: TrainHistory,
        lr_scale: float,
    ) -> None:
        arrays = {
            f"model/{key}": value for key, value in self.model.state_dict().items()
        }
        arrays.update(
            {
                f"optim/{key}": value
                for key, value in self.optimizer.state_dict().items()
            }
        )
        meta = {
            "epoch": epoch,
            "lr_scale": lr_scale,
            "loss_scale": self._loss_scale,
            "rng_state": rng.bit_generator.state,
            "history": history.to_meta(),
            "config": {
                "epochs": self.config.epochs,
                "batch_size": self.config.batch_size,
                "shuffle_seed": self.config.shuffle_seed,
            },
        }
        save_checkpoint(path, arrays, meta)

    def _restore_checkpoint(
        self,
        path: str | os.PathLike[str],
        rng: np.random.Generator,
    ) -> tuple[int, float, TrainHistory]:
        """Load a checkpoint; returns (next epoch, lr_scale, history)."""
        arrays, meta = load_checkpoint(path)
        model_state = {
            key[len("model/"):]: value
            for key, value in arrays.items()
            if key.startswith("model/")
        }
        optim_state = {
            key[len("optim/"):]: value
            for key, value in arrays.items()
            if key.startswith("optim/")
        }
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optim_state)
        rng.bit_generator.state = meta["rng_state"]
        history = TrainHistory.from_meta(meta.get("history", {}))
        history.resumed_from = int(meta["epoch"])
        self._loss_scale = float(
            meta.get("loss_scale", self._initial_loss_scale)
        )
        self._overflow_steps = history.overflow_steps
        return int(meta["epoch"]) + 1, float(meta.get("lr_scale", 1.0)), history

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        dataset: IRDropDataset,
        validation: IRDropDataset | None = None,
        resume_from: str | os.PathLike[str] | None = None,
    ) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns the loss history.

        With a *validation* set, validation MAE is recorded per epoch and
        (when ``early_stop_patience`` > 0) training stops once it
        stagnates, restoring the best weights seen.

        With *resume_from*, model/optimiser/RNG state are restored from a
        checkpoint written by a previous run and training continues from
        the next epoch, reproducing the uninterrupted run bit-exactly.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        cfg = self.config
        rng = np.random.default_rng(cfg.shuffle_seed)
        start_epoch = 0
        lr_scale = 1.0
        history = TrainHistory()
        if resume_from is not None:
            start_epoch, lr_scale, history = self._restore_checkpoint(
                resume_from, rng
            )
        scheduler = (
            CurriculumScheduler(total_epochs=cfg.epochs)
            if cfg.use_curriculum
            else None
        )
        best_mae = float("inf")
        best_state: dict | None = None
        stale_epochs = 0
        finite_maes = [m for m in history.validation_mae if np.isfinite(m)]
        if finite_maes:
            best_mae = min(finite_maes)
        last_good: tuple[dict, dict] | None = None
        if cfg.nan_recovery:
            last_good = (self.model.state_dict(), self.optimizer.state_dict())
        self.model.train()
        for epoch in range(start_epoch, cfg.epochs):
            subset = (
                scheduler.subset(dataset, epoch) if scheduler else dataset
            )
            lr = float(self.lr_schedule(epoch)) * lr_scale
            self.optimizer.lr = lr
            with span("train", epoch=epoch, samples=len(subset)):
                epoch_loss = self._run_epoch(subset, rng)
            self._release_workspaces()
            if self.fault_hook is not None:
                epoch_loss = self.fault_hook(epoch, epoch_loss)
            history.epoch_losses.append(epoch_loss)
            history.epoch_sizes.append(len(subset))
            history.learning_rates.append(lr)
            history.overflow_steps = self._overflow_steps
            if not np.isfinite(epoch_loss):
                history.recoveries.append(epoch)
                if not cfg.nan_recovery:
                    continue
                if len(history.recoveries) > cfg.max_recoveries:
                    history.aborted = "nan_loss"
                    break
                # Reload the last healthy weights and damp the step size;
                # the sick epoch is recorded but never poisons the model.
                # The mixed-precision loss scale restarts from its initial
                # value alongside the reloaded state.
                model_state, optim_state = last_good
                self.model.load_state_dict(model_state)
                self.optimizer.load_state_dict(optim_state)
                lr_scale *= cfg.recovery_lr_factor
                self._loss_scale = self._initial_loss_scale
                continue
            if cfg.nan_recovery:
                last_good = (self.model.state_dict(), self.optimizer.state_dict())
            if validation is not None and len(validation) > 0:
                mae = self._validation_mae(validation)
                history.validation_mae.append(mae)
                if np.isfinite(mae) and mae < best_mae - 1e-12:
                    best_mae = mae
                    stale_epochs = 0
                    if cfg.early_stop_patience > 0:
                        best_state = self.model.state_dict()
                else:
                    stale_epochs += 1
                    if (
                        cfg.early_stop_patience > 0
                        and stale_epochs >= cfg.early_stop_patience
                    ):
                        history.stopped_early = True
                        break
            if (
                cfg.checkpoint_every > 0
                and cfg.checkpoint_path is not None
                and (epoch + 1) % cfg.checkpoint_every == 0
            ):
                self._save_checkpoint(
                    cfg.checkpoint_path, epoch, rng, history, lr_scale
                )
        # Early stopping means later epochs regressed; always hand back the
        # best validation weights, not just when the *final* epoch is worse.
        if best_state is not None and (
            history.stopped_early
            or (
                history.validation_mae
                and not (history.validation_mae[-1] <= best_mae)
            )
        ):
            self.model.load_state_dict(best_state)
        self._release_workspaces()
        return history

    def _release_workspaces(self) -> None:
        """Drop every conv scratch arena (reallocated lazily on demand).

        Buffer contents never survive a call meaningfully — interiors are
        overwritten every use and borders re-zeroed on allocation — so
        releasing between epochs is numerically invisible; it just stops
        long curriculum runs (and the trained model afterwards) from
        pinning peak-size scratch for their whole lifetime.
        """
        for workspace in self.model.workspaces():
            workspace.clear()

    def _validation_mae(self, validation: IRDropDataset) -> float:
        predictions = self.predict(validation)
        errors = [
            float(np.abs(p - s.label).mean())
            for p, s in zip(predictions, validation)
        ]
        return float(np.mean(errors))

    def _uses_residual(self, samples: list[DesignSample]) -> bool:
        return self.config.residual and all(
            s.rough_label is not None for s in samples
        )

    def _effective_shards(self) -> int:
        """Shard count per mini-batch; 0 selects the classic loop."""
        if self.config.grad_shards > 0:
            return self.config.grad_shards
        if self.config.jobs > 1:
            return DEFAULT_GRAD_SHARDS
        return 0

    def _run_epoch(self, dataset: IRDropDataset, rng: np.random.Generator) -> float:
        x, y = dataset.as_arrays()
        if self._uses_residual(dataset.samples):
            # In place, row by row: same elementwise fp ops as the old
            # stack-and-subtract, without materialising a second
            # dataset-sized rough block.
            for k, sample in enumerate(dataset.samples):
                y[k, 0] -= sample.rough_label
        y *= self.config.label_scale
        if self.compute_dtype != np.float64:
            x = x.astype(self.compute_dtype)
            y = y.astype(self.compute_dtype)
        order = rng.permutation(len(dataset))
        batches = [
            order[start : start + self.config.batch_size]
            for start in range(0, len(order), self.config.batch_size)
        ]
        num_shards = self._effective_shards()
        if num_shards == 0:
            return self._run_batches_inprocess(x, y, batches)
        return self._run_batches_sharded(x, y, batches, num_shards)

    def _run_batches_inprocess(
        self, x: np.ndarray, y: np.ndarray, batches: list[np.ndarray]
    ) -> float:
        """The classic serial loop (bitwise-stable fp64 reference path)."""
        mixed = self.compute_dtype != np.float64
        total_loss = 0.0
        total_samples = 0
        for batch in batches:
            prediction = self.model(x[batch])
            loss_value = self.loss.forward(prediction, y[batch])
            for parameter in self._parameters:
                parameter.zero_grad()
            grad_in = self.loss.backward()
            scale = self._loss_scale
            if scale != 1.0:
                grad_in = grad_in * scale
            self.model.backward(grad_in)
            if scale != 1.0:
                inv_scale = 1.0 / scale
                for parameter in self._parameters:
                    parameter.grad *= inv_scale
            if not mixed or self._grads_finite():
                if self.config.grad_clip > 0:
                    clip_grad_norm(self._parameters, self.config.grad_clip)
                self.optimizer.step()
            else:
                self._on_overflow()
            # Weight by sample count so a short trailing batch doesn't
            # distort the reported epoch loss.
            total_loss += loss_value * len(batch)
            total_samples += len(batch)
        return total_loss / max(total_samples, 1)

    def _grads_finite(self) -> bool:
        return all(
            np.isfinite(parameter.grad).all() for parameter in self._parameters
        )

    def _on_overflow(self) -> None:
        """Mixed-precision guard: skip the step, back the loss scale off."""
        self._loss_scale = max(self._loss_scale * 0.5, MIN_LOSS_SCALE)
        self._overflow_steps += 1
        counter_add("train.overflow_steps")

    def _make_shard_worker(
        self,
        x: np.ndarray | None,
        y: np.ndarray | None,
        scale: float,
        x_desc=None,
        y_desc=None,
    ) -> _ShardWorker:
        """Build the per-shard forward+backward worker processes run."""
        return _ShardWorker(
            model=self.model,
            loss=self.loss,
            parameters=self._parameters,
            bn_layers=self._bn_layers,
            x=x,
            y=y,
            scale=scale,
            mixed=self.compute_dtype != np.float64,
            x_desc=x_desc,
            y_desc=y_desc,
        )

    def _run_batches_sharded(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batches: list[np.ndarray],
        num_shards: int,
    ) -> float:
        """Data-parallel engine: per-batch shards, fixed-order reduction.

        Staleness/sync contract: within one publication window
        (``sync_every`` steps, or the whole epoch when 0) every shard
        gradient is evaluated at the parameters current when the window
        started — workers receive that snapshot once per window (fork
        copy-on-write or one spawn-pool pickle) and never observe the
        parent's optimizer steps.  The parent then consumes the window's
        results strictly in batch order: reduce shards (fixed pairwise
        tree), clip, step, fold BatchNorm statistics.  The summed
        gradient is a pure function of the shard decomposition, so fp64
        runs are bitwise identical at any ``jobs`` for a fixed
        ``grad_shards``.
        """
        # Imported here: repro.core pulls config, which needs TrainConfig
        # from this module at import time.
        from repro.core import shm as _shm
        from repro.core.batch import parallel_map, tree_reduce

        cfg = self.config
        mixed = self.compute_dtype != np.float64
        window = cfg.sync_every if cfg.sync_every > 0 else len(batches)
        # ``jobs`` is an upper bound: shard results are jobs-invariant
        # by construction, so the engine never spawns more workers than
        # schedulable cores — on a saturated or single-core host that
        # collapses to the in-process path, trading useless fork/IPC
        # for speed without changing a single bit of the trajectory.
        workers = min(cfg.jobs, _available_cores())
        # Zero-copy plane: the epoch's x/y ship once as descriptors and
        # gradient shards come back through preallocated slots; the slot
        # bytes equal the inline payload's bytes, so the trajectory is
        # bitwise identical either way.  Single-worker runs stay inline
        # — there is nothing to transport.
        use_shm = workers > 1 and _shm.available() and _shm.shm_threshold() > 0
        scope = x_desc = y_desc = None
        grad_size = sum(p.data.size for p in self._parameters)
        if use_shm:
            scope = _shm.ARENA.scope(f"tr{next(_EPOCH_SCOPE_SEQ):x}")
        for bn in self._bn_layers:
            bn.update_running = False
        total_loss = 0.0
        total_samples = 0
        try:
            # Shares happen inside the try: if sharing y raises, the
            # finally still releases the scope holding x's segment.
            if use_shm:
                x_desc = _shm.ARENA.share(x, scope)
                y_desc = _shm.ARENA.share(y, scope)
            for window_start in range(0, len(batches), window):
                window_batches = batches[window_start : window_start + window]
                shard_lists = [
                    shard_batch(batch, num_shards) for batch in window_batches
                ]
                items = [s for shards in shard_lists for s in shards]
                scale = self._loss_scale
                block_view = None
                if use_shm:
                    block = _shm.ARENA.allocate(
                        (len(items), grad_size),
                        np.float32 if mixed else np.float64,
                        scope,
                    )
                    items = [
                        (shard, _shm.subarray(block, k))
                        for k, shard in enumerate(items)
                    ]
                    worker = self._make_shard_worker(
                        None, None, scale, x_desc=x_desc, y_desc=y_desc
                    )
                else:
                    worker = self._make_shard_worker(x, y, scale)
                outcomes, _ = parallel_map(worker, items, workers)
                if use_shm:
                    block_view = block.resolve()
                position = 0
                for shards in shard_lists:
                    payloads = []
                    for _ in shards:
                        value, error = outcomes[position]
                        if error is not None:
                            raise RuntimeError(
                                f"sharded training worker failed: {error}"
                            )
                        if value[2] is None and block_view is not None:
                            value = (
                                value[0],
                                value[1],
                                block_view[position],
                                value[3],
                            )
                        position += 1
                        payloads.append(value)
                    batch_samples = sum(p[1] for p in payloads)
                    weights = [p[1] / batch_samples for p in payloads]
                    if len(payloads) == 1:
                        flat = payloads[0][2]
                    else:
                        flat = tree_reduce(
                            [p[2] * w for p, w in zip(payloads, weights)]
                        )
                    grad = flat.astype(np.float64, copy=False)
                    if scale != 1.0:
                        grad = grad / scale
                    offset = 0
                    for parameter in self._parameters:
                        size = parameter.data.size
                        parameter.grad[...] = grad[
                            offset : offset + size
                        ].reshape(parameter.data.shape)
                        offset += size
                    if self._bn_layers and payloads[0][3] is not None:
                        if len(payloads) == 1:
                            stats = payloads[0][3]
                        else:
                            stats = tree_reduce(
                                [p[3] * w for p, w in zip(payloads, weights)]
                            )
                        self._apply_bn_stats(stats)
                    if not mixed or bool(np.isfinite(grad).all()):
                        if cfg.grad_clip > 0:
                            clip_grad_norm(self._parameters, cfg.grad_clip)
                        self.optimizer.step()
                    else:
                        self._on_overflow()
                    total_loss += sum(
                        p[0] * p[1] for p in payloads
                    )
                    total_samples += batch_samples
        finally:
            for bn in self._bn_layers:
                bn.update_running = True
            if scope is not None:
                _shm.ARENA.release_scope(scope)
        return total_loss / max(total_samples, 1)

    def _apply_bn_stats(self, stats: np.ndarray) -> None:
        """Fold shard-reduced batch statistics into the running buffers.

        The reduced vector holds the sample-weighted average of per-shard
        means and variances (ghost-batch-norm style: the between-shard
        mean spread is not added back), applied with each layer's own
        momentum exactly as an unsharded forward would.
        """
        stats = stats.astype(np.float64, copy=False)
        offset = 0
        for bn in self._bn_layers:
            channels = bn.running_mean.size
            mean = stats[offset : offset + channels]
            var = stats[offset + channels : offset + 2 * channels]
            offset += 2 * channels
            bn.running_mean = (
                (1 - bn.momentum) * bn.running_mean + bn.momentum * mean
            )
            bn.running_var = (
                (1 - bn.momentum) * bn.running_var + bn.momentum * var
            )

    # -- inference ---------------------------------------------------------------

    def predict(self, samples: list[DesignSample] | IRDropDataset) -> np.ndarray:
        """Predict IR-drop maps (volts), shape ``(N, H, W)``."""
        items = list(samples)
        if not items:
            raise ValueError("nothing to predict")
        x = np.stack([s.features.data for s in items]).astype(
            self.compute_dtype, copy=False
        )
        self.model.eval()
        out = self.model(x)
        self.model.train()
        prediction = out[:, 0] / self.config.label_scale
        if self._uses_residual(items):
            prediction = prediction + np.stack([s.rough_label for s in items])
        return prediction
