"""Mini-batch trainer with optional curriculum scheduling.

Labels are scaled (volts → ``label_scale`` units, default mV x 10) before
entering the network so losses and gradients are well conditioned;
predictions are scaled back transparently in :meth:`Trainer.predict`.

The training loop is fault-tolerant: periodic checkpoints capture model +
optimiser + RNG state for bit-exact resume (:meth:`Trainer.fit` with
``resume_from``), and a non-finite epoch loss triggers NaN recovery —
reload the last good state, halve the learning rate, continue — instead
of silently corrupting the weights.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.curriculum import CurriculumScheduler
from repro.data.dataset import DesignSample, IRDropDataset
from repro.nn.containers import fuse_conv_relu
from repro.nn.losses import MAELoss, _Loss
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.train.schedule import ConstantLR


@dataclass(frozen=True)
class TrainConfig:
    """Trainer knobs.

    Attributes
    ----------
    epochs, batch_size, lr:
        Standard loop controls (Adam optimiser).
    label_scale:
        Multiplier applied to labels (and inverted on prediction); IR
        drops are ~1e-3 V, so 1e3 conditions the regression to ~1.
    grad_clip:
        Global gradient-norm clip (0 disables).
    use_curriculum:
        Use the fake-easy/real-hard continuous scheduler.
    residual:
        Fusion-style residual learning: the network regresses the
        *correction* to the rough numerical solution and predictions are
        ``rough + correction`` ("the model can begin training from a point
        that is much closer to the target label", Section IV-B).  Applied
        only when every sample carries a rough numerical solution; pure-ML
        baselines (no numerical stage) fall back to direct regression
        automatically.
    shuffle_seed:
        Seed for per-epoch batch shuffling.
    early_stop_patience:
        When > 0 and a validation set is passed to :meth:`Trainer.fit`,
        stop after this many epochs without validation-MAE improvement and
        restore the best weights seen.
    checkpoint_every:
        Save a resumable checkpoint every N epochs (0 disables); requires
        ``checkpoint_path``.
    checkpoint_path:
        Where periodic checkpoints are written (single rotating file).
    nan_recovery:
        On a non-finite epoch loss: reload the last good model/optimiser
        state, scale the learning rate by ``recovery_lr_factor`` and keep
        training.  Off ⇒ the NaN epoch is recorded and training proceeds
        with whatever weights the epoch produced (legacy behaviour).
    max_recoveries:
        Abort training (``history.aborted = "nan_loss"``) after this many
        recoveries — the run is unsalvageable, don't spin forever.
    recovery_lr_factor:
        Learning-rate multiplier applied at each NaN recovery.
    """

    epochs: int = 10
    batch_size: int = 4
    lr: float = 2e-3
    label_scale: float = 20.0
    grad_clip: float = 5.0
    use_curriculum: bool = False
    residual: bool = True
    shuffle_seed: int = 0
    early_stop_patience: int = 0
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    nan_recovery: bool = True
    max_recoveries: int = 3
    recovery_lr_factor: float = 0.5


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_sizes: list[int] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    validation_mae: list[float] = field(default_factory=list)
    stopped_early: bool = False
    recoveries: list[int] = field(default_factory=list)
    resumed_from: int | None = None
    aborted: str | None = None

    @property
    def final_loss(self) -> float:
        """Last *finite* epoch loss (NaN epochs are recovery artefacts)."""
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        for loss in reversed(self.epoch_losses):
            if np.isfinite(loss):
                return loss
        return self.epoch_losses[-1]

    @property
    def best_validation_mae(self) -> float:
        if not self.validation_mae:
            raise ValueError("no validation metrics recorded")
        finite = [m for m in self.validation_mae if np.isfinite(m)]
        return min(finite) if finite else float("nan")

    def to_meta(self) -> dict:
        return {
            "epoch_losses": [float(v) for v in self.epoch_losses],
            "epoch_sizes": list(self.epoch_sizes),
            "learning_rates": [float(v) for v in self.learning_rates],
            "validation_mae": [float(v) for v in self.validation_mae],
            "stopped_early": self.stopped_early,
            "recoveries": list(self.recoveries),
            "resumed_from": self.resumed_from,
            "aborted": self.aborted,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "TrainHistory":
        return cls(
            epoch_losses=[float(v) for v in meta.get("epoch_losses", [])],
            epoch_sizes=list(meta.get("epoch_sizes", [])),
            learning_rates=[float(v) for v in meta.get("learning_rates", [])],
            validation_mae=[float(v) for v in meta.get("validation_mae", [])],
            stopped_early=bool(meta.get("stopped_early", False)),
            recoveries=list(meta.get("recoveries", [])),
            resumed_from=meta.get("resumed_from"),
            aborted=meta.get("aborted"),
        )


class Trainer:
    """Fits a model to an :class:`IRDropDataset`.

    Parameters
    ----------
    fault_hook:
        Test-only hook ``(epoch, loss) -> loss`` applied to each epoch's
        mean loss before health checks — the fault-injection harness uses
        it to exercise NaN-loss recovery deterministically.
    fuse:
        Apply the conv+bias+ReLU fusion pass to the model before
        training (default).  Fusion shares the original Parameter
        objects and preserves state-dict paths, so checkpoints and
        optimizer slots are unaffected; outputs are numerically
        unchanged.
    """

    def __init__(
        self,
        model: Module,
        loss: _Loss | None = None,
        config: TrainConfig | None = None,
        lr_schedule=None,
        fault_hook: Callable[[int, float], float] | None = None,
        fuse: bool = True,
    ) -> None:
        self.model = model
        self.fused_pairs = fuse_conv_relu(model) if fuse else 0
        self.loss = loss or MAELoss()
        self.config = config or TrainConfig()
        self.lr_schedule = lr_schedule or ConstantLR(self.config.lr)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.fault_hook = fault_hook

    # -- checkpointing ---------------------------------------------------------

    def _save_checkpoint(
        self,
        path: str | os.PathLike[str],
        epoch: int,
        rng: np.random.Generator,
        history: TrainHistory,
        lr_scale: float,
    ) -> None:
        arrays = {
            f"model/{key}": value for key, value in self.model.state_dict().items()
        }
        arrays.update(
            {
                f"optim/{key}": value
                for key, value in self.optimizer.state_dict().items()
            }
        )
        meta = {
            "epoch": epoch,
            "lr_scale": lr_scale,
            "rng_state": rng.bit_generator.state,
            "history": history.to_meta(),
            "config": {
                "epochs": self.config.epochs,
                "batch_size": self.config.batch_size,
                "shuffle_seed": self.config.shuffle_seed,
            },
        }
        save_checkpoint(path, arrays, meta)

    def _restore_checkpoint(
        self,
        path: str | os.PathLike[str],
        rng: np.random.Generator,
    ) -> tuple[int, float, TrainHistory]:
        """Load a checkpoint; returns (next epoch, lr_scale, history)."""
        arrays, meta = load_checkpoint(path)
        model_state = {
            key[len("model/"):]: value
            for key, value in arrays.items()
            if key.startswith("model/")
        }
        optim_state = {
            key[len("optim/"):]: value
            for key, value in arrays.items()
            if key.startswith("optim/")
        }
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optim_state)
        rng.bit_generator.state = meta["rng_state"]
        history = TrainHistory.from_meta(meta.get("history", {}))
        history.resumed_from = int(meta["epoch"])
        return int(meta["epoch"]) + 1, float(meta.get("lr_scale", 1.0)), history

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        dataset: IRDropDataset,
        validation: IRDropDataset | None = None,
        resume_from: str | os.PathLike[str] | None = None,
    ) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns the loss history.

        With a *validation* set, validation MAE is recorded per epoch and
        (when ``early_stop_patience`` > 0) training stops once it
        stagnates, restoring the best weights seen.

        With *resume_from*, model/optimiser/RNG state are restored from a
        checkpoint written by a previous run and training continues from
        the next epoch, reproducing the uninterrupted run bit-exactly.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        cfg = self.config
        rng = np.random.default_rng(cfg.shuffle_seed)
        start_epoch = 0
        lr_scale = 1.0
        history = TrainHistory()
        if resume_from is not None:
            start_epoch, lr_scale, history = self._restore_checkpoint(
                resume_from, rng
            )
        scheduler = (
            CurriculumScheduler(total_epochs=cfg.epochs)
            if cfg.use_curriculum
            else None
        )
        best_mae = float("inf")
        best_state: dict | None = None
        stale_epochs = 0
        finite_maes = [m for m in history.validation_mae if np.isfinite(m)]
        if finite_maes:
            best_mae = min(finite_maes)
        last_good: tuple[dict, dict] | None = None
        if cfg.nan_recovery:
            last_good = (self.model.state_dict(), self.optimizer.state_dict())
        self.model.train()
        for epoch in range(start_epoch, cfg.epochs):
            subset = (
                scheduler.subset(dataset, epoch) if scheduler else dataset
            )
            lr = float(self.lr_schedule(epoch)) * lr_scale
            self.optimizer.lr = lr
            epoch_loss = self._run_epoch(subset, rng)
            if self.fault_hook is not None:
                epoch_loss = self.fault_hook(epoch, epoch_loss)
            history.epoch_losses.append(epoch_loss)
            history.epoch_sizes.append(len(subset))
            history.learning_rates.append(lr)
            if not np.isfinite(epoch_loss):
                history.recoveries.append(epoch)
                if not cfg.nan_recovery:
                    continue
                if len(history.recoveries) > cfg.max_recoveries:
                    history.aborted = "nan_loss"
                    break
                # Reload the last healthy weights and damp the step size;
                # the sick epoch is recorded but never poisons the model.
                model_state, optim_state = last_good
                self.model.load_state_dict(model_state)
                self.optimizer.load_state_dict(optim_state)
                lr_scale *= cfg.recovery_lr_factor
                continue
            if cfg.nan_recovery:
                last_good = (self.model.state_dict(), self.optimizer.state_dict())
            if validation is not None and len(validation) > 0:
                mae = self._validation_mae(validation)
                history.validation_mae.append(mae)
                if np.isfinite(mae) and mae < best_mae - 1e-12:
                    best_mae = mae
                    stale_epochs = 0
                    if cfg.early_stop_patience > 0:
                        best_state = self.model.state_dict()
                else:
                    stale_epochs += 1
                    if (
                        cfg.early_stop_patience > 0
                        and stale_epochs >= cfg.early_stop_patience
                    ):
                        history.stopped_early = True
                        break
            if (
                cfg.checkpoint_every > 0
                and cfg.checkpoint_path is not None
                and (epoch + 1) % cfg.checkpoint_every == 0
            ):
                self._save_checkpoint(
                    cfg.checkpoint_path, epoch, rng, history, lr_scale
                )
        # Early stopping means later epochs regressed; always hand back the
        # best validation weights, not just when the *final* epoch is worse.
        if best_state is not None and (
            history.stopped_early
            or (
                history.validation_mae
                and not (history.validation_mae[-1] <= best_mae)
            )
        ):
            self.model.load_state_dict(best_state)
        return history

    def _validation_mae(self, validation: IRDropDataset) -> float:
        predictions = self.predict(validation)
        errors = [
            float(np.abs(p - s.label).mean())
            for p, s in zip(predictions, validation)
        ]
        return float(np.mean(errors))

    def _uses_residual(self, samples: list[DesignSample]) -> bool:
        return self.config.residual and all(
            s.rough_label is not None for s in samples
        )

    def _run_epoch(self, dataset: IRDropDataset, rng: np.random.Generator) -> float:
        x, y = dataset.as_arrays()
        if self._uses_residual(dataset.samples):
            rough = np.stack(
                [s.rough_label[None, :, :] for s in dataset.samples]
            )
            y = y - rough
        y = y * self.config.label_scale
        order = rng.permutation(len(dataset))
        total_loss = 0.0
        batches = 0
        for start in range(0, len(order), self.config.batch_size):
            batch = order[start : start + self.config.batch_size]
            prediction = self.model(x[batch])
            loss_value = self.loss.forward(prediction, y[batch])
            self.model.zero_grad()
            self.model.backward(self.loss.backward())
            if self.config.grad_clip > 0:
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            total_loss += loss_value
            batches += 1
        return total_loss / max(batches, 1)

    # -- inference ---------------------------------------------------------------

    def predict(self, samples: list[DesignSample] | IRDropDataset) -> np.ndarray:
        """Predict IR-drop maps (volts), shape ``(N, H, W)``."""
        items = list(samples)
        if not items:
            raise ValueError("nothing to predict")
        x = np.stack([s.features.data for s in items])
        self.model.eval()
        out = self.model(x)
        self.model.train()
        prediction = out[:, 0] / self.config.label_scale
        if self._uses_residual(items):
            prediction = prediction + np.stack([s.rough_label for s in items])
        return prediction
