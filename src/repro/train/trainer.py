"""Mini-batch trainer with optional curriculum scheduling.

Labels are scaled (volts → ``label_scale`` units, default mV x 10) before
entering the network so losses and gradients are well conditioned;
predictions are scaled back transparently in :meth:`Trainer.predict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.curriculum import CurriculumScheduler
from repro.data.dataset import DesignSample, IRDropDataset
from repro.nn.losses import MAELoss, _Loss
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.train.schedule import ConstantLR


@dataclass(frozen=True)
class TrainConfig:
    """Trainer knobs.

    Attributes
    ----------
    epochs, batch_size, lr:
        Standard loop controls (Adam optimiser).
    label_scale:
        Multiplier applied to labels (and inverted on prediction); IR
        drops are ~1e-3 V, so 1e3 conditions the regression to ~1.
    grad_clip:
        Global gradient-norm clip (0 disables).
    use_curriculum:
        Use the fake-easy/real-hard continuous scheduler.
    residual:
        Fusion-style residual learning: the network regresses the
        *correction* to the rough numerical solution and predictions are
        ``rough + correction`` ("the model can begin training from a point
        that is much closer to the target label", Section IV-B).  Applied
        only when every sample carries a rough numerical solution; pure-ML
        baselines (no numerical stage) fall back to direct regression
        automatically.
    shuffle_seed:
        Seed for per-epoch batch shuffling.
    early_stop_patience:
        When > 0 and a validation set is passed to :meth:`Trainer.fit`,
        stop after this many epochs without validation-MAE improvement and
        restore the best weights seen.
    """

    epochs: int = 10
    batch_size: int = 4
    lr: float = 2e-3
    label_scale: float = 20.0
    grad_clip: float = 5.0
    use_curriculum: bool = False
    residual: bool = True
    shuffle_seed: int = 0
    early_stop_patience: int = 0


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_sizes: list[int] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    validation_mae: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def best_validation_mae(self) -> float:
        if not self.validation_mae:
            raise ValueError("no validation metrics recorded")
        return min(self.validation_mae)


class Trainer:
    """Fits a model to an :class:`IRDropDataset`."""

    def __init__(
        self,
        model: Module,
        loss: _Loss | None = None,
        config: TrainConfig | None = None,
        lr_schedule=None,
    ) -> None:
        self.model = model
        self.loss = loss or MAELoss()
        self.config = config or TrainConfig()
        self.lr_schedule = lr_schedule or ConstantLR(self.config.lr)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        dataset: IRDropDataset,
        validation: IRDropDataset | None = None,
    ) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns the loss history.

        With a *validation* set, validation MAE is recorded per epoch and
        (when ``early_stop_patience`` > 0) training stops once it
        stagnates, restoring the best weights seen.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        rng = np.random.default_rng(self.config.shuffle_seed)
        scheduler = (
            CurriculumScheduler(total_epochs=self.config.epochs)
            if self.config.use_curriculum
            else None
        )
        history = TrainHistory()
        best_mae = float("inf")
        best_state: dict | None = None
        stale_epochs = 0
        self.model.train()
        for epoch in range(self.config.epochs):
            subset = (
                scheduler.subset(dataset, epoch) if scheduler else dataset
            )
            lr = float(self.lr_schedule(epoch))
            self.optimizer.lr = lr
            epoch_loss = self._run_epoch(subset, rng)
            history.epoch_losses.append(epoch_loss)
            history.epoch_sizes.append(len(subset))
            history.learning_rates.append(lr)
            if validation is not None and len(validation) > 0:
                mae = self._validation_mae(validation)
                history.validation_mae.append(mae)
                if mae < best_mae - 1e-12:
                    best_mae = mae
                    stale_epochs = 0
                    if self.config.early_stop_patience > 0:
                        best_state = self.model.state_dict()
                else:
                    stale_epochs += 1
                    if (
                        self.config.early_stop_patience > 0
                        and stale_epochs >= self.config.early_stop_patience
                    ):
                        history.stopped_early = True
                        break
        if best_state is not None and history.validation_mae and (
            history.validation_mae[-1] > best_mae
        ):
            self.model.load_state_dict(best_state)
        return history

    def _validation_mae(self, validation: IRDropDataset) -> float:
        predictions = self.predict(validation)
        errors = [
            float(np.abs(p - s.label).mean())
            for p, s in zip(predictions, validation)
        ]
        return float(np.mean(errors))

    def _uses_residual(self, samples: list[DesignSample]) -> bool:
        return self.config.residual and all(
            s.rough_label is not None for s in samples
        )

    def _run_epoch(self, dataset: IRDropDataset, rng: np.random.Generator) -> float:
        x, y = dataset.as_arrays()
        if self._uses_residual(dataset.samples):
            rough = np.stack(
                [s.rough_label[None, :, :] for s in dataset.samples]
            )
            y = y - rough
        y = y * self.config.label_scale
        order = rng.permutation(len(dataset))
        total_loss = 0.0
        batches = 0
        for start in range(0, len(order), self.config.batch_size):
            batch = order[start : start + self.config.batch_size]
            prediction = self.model(x[batch])
            loss_value = self.loss.forward(prediction, y[batch])
            self.model.zero_grad()
            self.model.backward(self.loss.backward())
            if self.config.grad_clip > 0:
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            total_loss += loss_value
            batches += 1
        return total_loss / max(batches, 1)

    # -- inference ---------------------------------------------------------------

    def predict(self, samples: list[DesignSample] | IRDropDataset) -> np.ndarray:
        """Predict IR-drop maps (volts), shape ``(N, H, W)``."""
        items = list(samples)
        if not items:
            raise ValueError("nothing to predict")
        x = np.stack([s.features.data for s in items])
        self.model.eval()
        out = self.model(x)
        self.model.train()
        prediction = out[:, 0] / self.config.label_scale
        if self._uses_residual(items):
            prediction = prediction + np.stack([s.rough_label for s in items])
        return prediction
