"""Learning-rate schedules.

Each schedule is a callable ``epoch -> lr``; the trainer assigns the
returned value to the optimiser before every epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConstantLR:
    """Fixed learning rate."""

    lr: float

    def __call__(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepLR:
    """Multiply by ``gamma`` every ``step_size`` epochs."""

    lr: float
    step_size: int = 10
    gamma: float = 0.5

    def __call__(self, epoch: int) -> float:
        if self.step_size < 1:
            raise ValueError("step_size must be >= 1")
        return self.lr * (self.gamma ** (epoch // self.step_size))


def shard_batch(batch: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Split one mini-batch's sample indices into contiguous shards.

    Operates on the already-shuffled epoch order, *after* curriculum
    subsetting and fake/real oversampling have produced the epoch's
    sample sequence — so every shard inherits whatever easy/hard mixture
    the batch carries without any stratification logic here.

    The decomposition depends only on the batch length and
    ``num_shards`` (``np.array_split`` semantics, empty shards dropped),
    never on worker count or completion order: this is what makes a
    sharded gradient a pure function of ``(seed, grad_shards)`` and
    therefore reproducible at any ``jobs`` setting.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    batch = np.asarray(batch)
    return [s for s in np.array_split(batch, num_shards) if len(s)]


@dataclass(frozen=True)
class CosineLR:
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_epochs``."""

    lr: float
    total_epochs: int
    min_lr: float = 0.0

    def __call__(self, epoch: int) -> float:
        if self.total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
