"""Learning-rate schedules.

Each schedule is a callable ``epoch -> lr``; the trainer assigns the
returned value to the optimiser before every epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ConstantLR:
    """Fixed learning rate."""

    lr: float

    def __call__(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepLR:
    """Multiply by ``gamma`` every ``step_size`` epochs."""

    lr: float
    step_size: int = 10
    gamma: float = 0.5

    def __call__(self, epoch: int) -> float:
        if self.step_size < 1:
            raise ValueError("step_size must be >= 1")
        return self.lr * (self.gamma ** (epoch // self.step_size))


@dataclass(frozen=True)
class CosineLR:
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_epochs``."""

    lr: float
    total_epochs: int
    min_lr: float = 0.0

    def __call__(self, epoch: int) -> float:
        if self.total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
