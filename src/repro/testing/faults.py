"""Deterministic fault-injection harness.

Every degradation path in the runtime — NaN residuals, diverging
iterations, singular matrices, NaN losses — must be exercisable on
schedule so tests can assert the *exact* fallback/recovery behaviour.
A :class:`FaultPlan` is an explicit, deterministic schedule (no RNG, no
globals): it is handed to the component under test and records every
injection it performs, so a test can assert both that the fault fired and
that the runtime absorbed it.

Usage::

    plan = FaultPlan(nan_residual={"amg_pcg": 2})
    guard_options = GuardrailOptions(fault_hook=plan.residual_hook)
    # ... run the cascade; AMG-PCG sees NaN at iteration 2, falls back.
    assert plan.injections == [("amg_pcg", "nan_residual", 2)]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp


@dataclass
class FaultPlan:
    """Schedule of faults to inject, keyed by component and step.

    Attributes
    ----------
    nan_residual:
        ``{solver_name: iteration}`` — replace the residual norm that the
        guard observes with NaN at the given iteration of that solver.
    divergence:
        ``{solver_name: iteration}`` — from that iteration on, multiply
        the observed residual by an exploding factor so the divergence
        detector trips.
    fail_stage:
        Solver stage names that should raise an injected ``RuntimeError``
        as soon as they observe a residual (simulates a crashing stage,
        e.g. a preconditioner setup bug).
    nan_loss_epochs:
        Training epochs whose mean loss is replaced with NaN (exercises
        NaN-loss recovery in the trainer).
    injections:
        Log of ``(component, kind, step)`` for every fault actually fired.
    """

    nan_residual: dict[str, int] = field(default_factory=dict)
    divergence: dict[str, int] = field(default_factory=dict)
    fail_stage: frozenset[str] | set[str] = field(default_factory=frozenset)
    nan_loss_epochs: frozenset[int] | set[int] = field(default_factory=frozenset)
    injections: list[tuple[str, str, int]] = field(default_factory=list)

    # -- solver-side hooks --------------------------------------------------

    def residual_hook(self, solver: str, iteration: int, value: float) -> float:
        """`GuardrailOptions.fault_hook`-compatible residual corrupter."""
        if solver in self.fail_stage:
            self.injections.append((solver, "stage_error", iteration))
            raise RuntimeError(f"injected failure in stage {solver!r}")
        at = self.nan_residual.get(solver)
        if at is not None and iteration >= at:
            self.injections.append((solver, "nan_residual", iteration))
            return float("nan")
        at = self.divergence.get(solver)
        if at is not None and iteration >= at:
            self.injections.append((solver, "divergence", iteration))
            # Absolute floor: even a nearly-converged residual must read as
            # exploding, or fast solvers would dodge the injection.
            return max(value, 1.0) * 10.0 ** (4 + 2 * (iteration - at))
        return value

    # -- trainer-side hooks -------------------------------------------------

    def loss_hook(self, epoch: int, value: float) -> float:
        """Replace the epoch loss with NaN on scheduled epochs."""
        if epoch in self.nan_loss_epochs:
            self.injections.append(("trainer", "nan_loss", epoch))
            return float("nan")
        return value

    # -- bookkeeping --------------------------------------------------------

    def fired(self, kind: str) -> int:
        """How many injections of *kind* have fired so far."""
        return sum(1 for _, k, _ in self.injections if k == kind)


def corrupt_matrix(matrix: sp.spmatrix, row: int = 0) -> sp.csr_matrix:
    """Copy of *matrix* with NaN poisoning one diagonal entry.

    Any mat-vec touching the row propagates NaN into the residual, which
    the guard must catch on the first observation.
    """
    poisoned = sp.csr_matrix(matrix, copy=True).tolil()
    poisoned[row, row] = float("nan")
    return poisoned.tocsr()


def make_singular(matrix: sp.spmatrix, row: int = 0) -> sp.csr_matrix:
    """Copy of *matrix* with one row/column zeroed (exactly singular)."""
    singular = sp.csr_matrix(matrix, copy=True).tolil()
    singular[row, :] = 0.0
    singular[:, row] = 0.0
    return singular.tocsr()


def zero_row_rhs(rhs: np.ndarray, row: int = 0) -> np.ndarray:
    """RHS companion to :func:`make_singular` (keeps the system consistent)."""
    out = np.asarray(rhs, dtype=float).copy()
    out[row] = 0.0
    return out
