"""Deterministic fault-injection harness.

Every degradation path in the runtime — NaN residuals, diverging
iterations, singular matrices, NaN losses — must be exercisable on
schedule so tests can assert the *exact* fallback/recovery behaviour.
A :class:`FaultPlan` is an explicit, deterministic schedule (no RNG, no
globals): it is handed to the component under test and records every
injection it performs, so a test can assert both that the fault fired and
that the runtime absorbed it.

Usage::

    plan = FaultPlan(nan_residual={"amg_pcg": 2})
    guard_options = GuardrailOptions(fault_hook=plan.residual_hook)
    # ... run the cascade; AMG-PCG sees NaN at iteration 2, falls back.
    assert plan.injections == [("amg_pcg", "nan_residual", 2)]

:class:`WorkerFaultPlan` is the process-level counterpart for the
:mod:`repro.core.pool` runtime: it rides into pool workers (pickled with
the job payload) and kills, hangs, slows or transiently fails chosen
items *inside* the worker, so supervision paths — respawn, timeout,
retry, quarantine — are deterministically testable.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp


@dataclass
class FaultPlan:
    """Schedule of faults to inject, keyed by component and step.

    Attributes
    ----------
    nan_residual:
        ``{solver_name: iteration}`` — replace the residual norm that the
        guard observes with NaN at the given iteration of that solver.
    divergence:
        ``{solver_name: iteration}`` — from that iteration on, multiply
        the observed residual by an exploding factor so the divergence
        detector trips.
    fail_stage:
        Solver stage names that should raise an injected ``RuntimeError``
        as soon as they observe a residual (simulates a crashing stage,
        e.g. a preconditioner setup bug).
    nan_loss_epochs:
        Training epochs whose mean loss is replaced with NaN (exercises
        NaN-loss recovery in the trainer).
    injections:
        Log of ``(component, kind, step)`` for every fault actually fired.
    """

    nan_residual: dict[str, int] = field(default_factory=dict)
    divergence: dict[str, int] = field(default_factory=dict)
    fail_stage: frozenset[str] | set[str] = field(default_factory=frozenset)
    nan_loss_epochs: frozenset[int] | set[int] = field(default_factory=frozenset)
    injections: list[tuple[str, str, int]] = field(default_factory=list)

    # -- solver-side hooks --------------------------------------------------

    def residual_hook(self, solver: str, iteration: int, value: float) -> float:
        """`GuardrailOptions.fault_hook`-compatible residual corrupter."""
        if solver in self.fail_stage:
            self.injections.append((solver, "stage_error", iteration))
            raise RuntimeError(f"injected failure in stage {solver!r}")
        at = self.nan_residual.get(solver)
        if at is not None and iteration >= at:
            self.injections.append((solver, "nan_residual", iteration))
            return float("nan")
        at = self.divergence.get(solver)
        if at is not None and iteration >= at:
            self.injections.append((solver, "divergence", iteration))
            # Absolute floor: even a nearly-converged residual must read as
            # exploding, or fast solvers would dodge the injection.
            return max(value, 1.0) * 10.0 ** (4 + 2 * (iteration - at))
        return value

    # -- trainer-side hooks -------------------------------------------------

    def loss_hook(self, epoch: int, value: float) -> float:
        """Replace the epoch loss with NaN on scheduled epochs."""
        if epoch in self.nan_loss_epochs:
            self.injections.append(("trainer", "nan_loss", epoch))
            return float("nan")
        return value

    # -- bookkeeping --------------------------------------------------------

    def fired(self, kind: str) -> int:
        """How many injections of *kind* have fired so far."""
        return sum(1 for _, k, _ in self.injections if k == kind)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker-level chaos for the :mod:`repro.core.pool`.

    All schedules are keyed by the item's submission *index*; attempts
    are 1-based, and every fault except ``slow`` fires on matching
    attempts only (so ``flaky`` with ``attempts={1}`` is "flaky once":
    the retry succeeds).

    Attributes
    ----------
    kill:
        ``{index: attempts}`` — SIGKILL the worker process while it runs
        the item on those attempts (``None`` = every attempt, which
        drives the item to quarantine).
    hang:
        ``{index: attempts}`` — sleep ``hang_seconds`` inside the item,
        far past any sane task timeout (exercises timeout-kill).
    slow:
        ``{index: seconds}`` — sleep that many seconds on every attempt
        (a slow-but-healthy item; must *not* be killed under a generous
        timeout).
    flaky:
        ``{index: attempts}`` — raise a retryable
        :class:`~repro.core.pool.TransientTaskError` on those attempts.
    hang_seconds:
        Sleep used by ``hang`` entries (default 3600 — the supervisor
        must kill the worker long before it wakes).
    """

    kill: dict[int, frozenset[int] | None] = field(default_factory=dict)
    hang: dict[int, frozenset[int] | None] = field(default_factory=dict)
    slow: dict[int, float] = field(default_factory=dict)
    flaky: dict[int, frozenset[int] | None] = field(default_factory=dict)
    hang_seconds: float = 3600.0

    @staticmethod
    def _matches(attempts: frozenset[int] | None, attempt: int) -> bool:
        return attempts is None or attempt in attempts

    def apply(self, index: int, attempt: int) -> str | None:
        """Fire the scheduled fault for (*index*, *attempt*), if any.

        Runs inside the pool worker just before the item's function.
        Returns the name of a survivable injected fault (``"slow"``,
        ``"hang"`` if it ever returns) so the pool can record it; raises
        for ``flaky``; never returns for a fired ``kill``.
        """
        if index in self.kill and self._matches(self.kill[index], attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        if index in self.flaky and self._matches(self.flaky[index], attempt):
            from repro.core.pool import TransientTaskError  # lazy: no cycle

            raise TransientTaskError(
                f"injected flaky failure (item {index}, attempt {attempt})"
            )
        if index in self.hang and self._matches(self.hang[index], attempt):
            time.sleep(self.hang_seconds)
            return "hang"
        if index in self.slow:
            time.sleep(self.slow[index])
            return "slow"
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "WorkerFaultPlan":
        """Parse a compact chaos spec (the ``REPRO_CHAOS`` format).

        Comma-separated entries, one fault each::

            kill@2        SIGKILL the worker on item 2, every attempt
            kill@2x1      ... on attempt 1 only (the retry survives)
            hang@5        hang item 5 (every attempt)
            flaky@0x1     transient failure on item 0's first attempt
            slow@3:0.5    item 3 sleeps 0.5 s per attempt

        ``WorkerFaultPlan.from_spec("kill@1x1,flaky@3x1")`` is the shape
        CI's chaos-smoke job injects.
        """
        kill: dict[int, frozenset[int] | None] = {}
        hang: dict[int, frozenset[int] | None] = {}
        slow: dict[int, float] = {}
        flaky: dict[int, frozenset[int] | None] = {}
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
            except ValueError:
                raise ValueError(
                    f"bad chaos entry {entry!r}: expected kind@index"
                ) from None
            kind = kind.strip()
            if kind == "slow":
                index_text, _, seconds_text = rest.partition(":")
                slow[int(index_text)] = float(seconds_text or 1.0)
                continue
            index_text, _, attempt_text = rest.partition("x")
            index = int(index_text)
            attempts = (
                frozenset(int(a) for a in attempt_text.split("+"))
                if attempt_text
                else None
            )
            if kind == "kill":
                kill[index] = attempts
            elif kind == "hang":
                hang[index] = attempts
            elif kind == "flaky":
                flaky[index] = attempts
            else:
                raise ValueError(
                    f"unknown chaos fault {kind!r} in entry {entry!r}"
                )
        return cls(kill=kill, hang=hang, slow=slow, flaky=flaky)


def corrupt_matrix(matrix: sp.spmatrix, row: int = 0) -> sp.csr_matrix:
    """Copy of *matrix* with NaN poisoning one diagonal entry.

    Any mat-vec touching the row propagates NaN into the residual, which
    the guard must catch on the first observation.
    """
    poisoned = sp.csr_matrix(matrix, copy=True).tolil()
    poisoned[row, row] = float("nan")
    return poisoned.tocsr()


def make_singular(matrix: sp.spmatrix, row: int = 0) -> sp.csr_matrix:
    """Copy of *matrix* with one row/column zeroed (exactly singular)."""
    singular = sp.csr_matrix(matrix, copy=True).tolil()
    singular[row, :] = 0.0
    singular[:, row] = 0.0
    return singular.tocsr()


def zero_row_rhs(rhs: np.ndarray, row: int = 0) -> np.ndarray:
    """RHS companion to :func:`make_singular` (keeps the system consistent)."""
    out = np.asarray(rhs, dtype=float).copy()
    out[row] = 0.0
    return out
