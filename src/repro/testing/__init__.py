"""Deterministic fault injection for exercising degradation paths."""

from repro.testing.faults import FaultPlan, corrupt_matrix, make_singular

__all__ = ["FaultPlan", "corrupt_matrix", "make_singular"]
