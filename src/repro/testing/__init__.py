"""Deterministic fault injection for exercising degradation paths."""

from repro.testing.faults import (
    FaultPlan,
    WorkerFaultPlan,
    corrupt_matrix,
    make_singular,
)

__all__ = ["FaultPlan", "WorkerFaultPlan", "corrupt_matrix", "make_singular"]
