"""Power-grid optimisation utilities built on the analysis substrate."""

from repro.opt.pad_placement import PadPlacementResult, greedy_pad_placement

__all__ = ["PadPlacementResult", "greedy_pad_placement"]
