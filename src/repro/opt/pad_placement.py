"""Greedy power-pad placement.

A classic use of a fast IR-drop engine: given a PG whose worst drop
violates budget, where should extra pads go?  The greedy loop evaluates
each candidate top-layer node by *actually re-solving the grid* with a pad
added there (the AMG solver is fast enough to brute-force modest candidate
sets) and commits the pad that minimises the worst drop, repeating until
the budget is met or the pad budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.ast import Netlist, VoltageSource


@dataclass
class PadPlacementResult:
    """Outcome of the greedy placement.

    Attributes
    ----------
    added_pads:
        Node names that received a new pad, in commit order.
    worst_drop_history:
        Worst drop before any addition and after each commit.
    final_netlist:
        The netlist with the new voltage sources appended.
    met_budget:
        Whether the final worst drop is within the requested budget.
    """

    added_pads: list[str]
    worst_drop_history: list[float]
    final_netlist: Netlist
    met_budget: bool

    @property
    def improvement(self) -> float:
        """Absolute worst-drop reduction achieved (volts)."""
        return self.worst_drop_history[0] - self.worst_drop_history[-1]


def _with_extra_pads(
    netlist: Netlist, pads: list[str], voltage: float
) -> Netlist:
    out = Netlist(
        title=netlist.title,
        resistors=list(netlist.resistors),
        current_sources=list(netlist.current_sources),
        voltage_sources=list(netlist.voltage_sources),
    )
    for k, node in enumerate(pads, start=1):
        out.voltage_sources.append(
            VoltageSource(f"Vopt{k}", node, "0", voltage)
        )
    return out


def greedy_pad_placement(
    netlist: Netlist,
    budget_volts: float,
    max_new_pads: int = 3,
    max_candidates: int = 24,
    simulator: PowerRushSimulator | None = None,
) -> PadPlacementResult:
    """Add pads greedily until the worst drop meets *budget_volts*.

    Parameters
    ----------
    netlist:
        The design to fix (must already contain at least one pad).
    budget_volts:
        Target worst-case drop.
    max_new_pads:
        Pad budget.
    max_candidates:
        Candidate pool size per round: the top-layer nodes with the
        largest current drop (the most starved regions).
    simulator:
        Solver to use (default: converged quality AMG-PCG).
    """
    if budget_volts <= 0:
        raise ValueError("budget_volts must be positive")
    if max_new_pads < 1:
        raise ValueError("max_new_pads must be >= 1")
    simulator = simulator or PowerRushSimulator(tol=1e-10)

    added: list[str] = []
    current = netlist
    report = simulator.simulate_netlist(current)
    history = [report.worst_drop()]

    for _ in range(max_new_pads):
        if history[-1] <= budget_volts:
            break
        grid = report.grid
        top_layer = max(grid.layers_present())
        candidates = [
            node
            for node in grid.nodes_on_layer(top_layer)
            if not node.is_pad
        ]
        candidates.sort(key=lambda n: report.ir_drop[n.index], reverse=True)
        candidates = candidates[:max_candidates]
        if not candidates:
            break

        best_name: str | None = None
        best_worst = history[-1]
        best_report = None
        for candidate in candidates:
            trial = _with_extra_pads(
                current, added + [candidate.name], report.supply_voltage
            )
            trial_report = simulator.simulate_netlist(trial)
            worst = trial_report.worst_drop()
            if worst < best_worst:
                best_worst = worst
                best_name = candidate.name
                best_report = trial_report
        if best_name is None:
            break  # no candidate improves; stop early
        added.append(best_name)
        history.append(best_worst)
        report = best_report
        current = _with_extra_pads(netlist, added, report.supply_voltage)

    final = _with_extra_pads(netlist, added, report.supply_voltage)
    return PadPlacementResult(
        added_pads=added,
        worst_drop_history=history,
        final_netlist=final,
        met_budget=history[-1] <= budget_volts,
    )
