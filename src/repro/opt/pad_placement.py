"""Greedy power-pad placement.

A classic use of a fast IR-drop engine: given a PG whose worst drop
violates budget, where should extra pads go?  The greedy loop evaluates
each candidate top-layer node with a pad added there and commits the pad
that minimises the worst drop, repeating until the budget is met or the
pad budget is exhausted.

Two evaluation engines:

- ``method="incremental"`` (default) drives the sweep over
  :class:`~repro.solvers.incremental.IncrementalEngine`: each candidate
  is a rank-2 Sherman–Morrison–Woodbury update previewed against the
  cached AMG hierarchy with a warm-started polish, and the committed pad
  is one more low-rank term.  One stamping + one hierarchy build serve
  the entire sweep, and the per-node correction columns are cached
  across rounds.
- ``method="legacy"`` re-simulates each trial netlist from scratch with
  a :class:`~repro.solvers.powerrush.PowerRushSimulator` (parse →
  stamp → AMG setup → solve per candidate).  Kept as the reference
  implementation and benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.netlist import PGNode, PowerGrid
from repro.obs import counter_add, span
from repro.solvers.base import SolverOptions
from repro.solvers.incremental import AddPad, IncrementalEngine, IncrementalOptions
from repro.solvers.powerrush import PowerRushSimulator
from repro.spice.ast import Netlist, VoltageSource


@dataclass
class PadPlacementResult:
    """Outcome of the greedy placement.

    Attributes
    ----------
    added_pads:
        Node names that received a new pad, in commit order.
    worst_drop_history:
        Worst drop before any addition and after each commit.
    final_netlist:
        The netlist with the new voltage sources appended.
    met_budget:
        Whether the final worst drop is within the requested budget.
    """

    added_pads: list[str]
    worst_drop_history: list[float]
    final_netlist: Netlist
    met_budget: bool

    @property
    def improvement(self) -> float:
        """Absolute worst-drop reduction achieved (volts)."""
        return self.worst_drop_history[0] - self.worst_drop_history[-1]


def _with_extra_pads(
    netlist: Netlist, pads: list[str], voltage: float
) -> Netlist:
    out = Netlist(
        title=netlist.title,
        resistors=list(netlist.resistors),
        current_sources=list(netlist.current_sources),
        voltage_sources=list(netlist.voltage_sources),
    )
    for k, node in enumerate(pads, start=1):
        out.voltage_sources.append(
            VoltageSource(f"Vopt{k}", node, "0", voltage)
        )
    return out


def _top_layer_candidates(
    grid: PowerGrid, drops, max_candidates: int, exclude: set[str]
) -> list[PGNode]:
    """The most starved non-pad top-layer nodes, worst drop first."""
    top_layer = max(grid.layers_present())
    candidates = [
        node
        for node in grid.nodes_on_layer(top_layer)
        if not node.is_pad and node.name not in exclude
    ]
    candidates.sort(key=lambda n: drops[n.index], reverse=True)
    return candidates[:max_candidates]


def greedy_pad_placement(
    netlist: Netlist,
    budget_volts: float,
    max_new_pads: int = 3,
    max_candidates: int = 24,
    simulator: PowerRushSimulator | None = None,
    method: str = "incremental",
) -> PadPlacementResult:
    """Add pads greedily until the worst drop meets *budget_volts*.

    Parameters
    ----------
    netlist:
        The design to fix (must already contain at least one pad).
    budget_volts:
        Target worst-case drop.
    max_new_pads:
        Pad budget.
    max_candidates:
        Candidate pool size per round: the top-layer nodes with the
        largest current drop (the most starved regions).
    simulator:
        Solver for the legacy path (default: converged quality AMG-PCG);
        the incremental path borrows only its tolerance.
    method:
        ``"incremental"`` (default) or ``"legacy"``; see module docs.
    """
    if budget_volts <= 0:
        raise ValueError("budget_volts must be positive")
    if max_new_pads < 1:
        raise ValueError("max_new_pads must be >= 1")
    if method not in ("incremental", "legacy"):
        raise ValueError(
            f"unknown method {method!r}; choose 'incremental' or 'legacy'"
        )
    if method == "incremental":
        return _greedy_incremental(
            netlist, budget_volts, max_new_pads, max_candidates, simulator
        )
    return _greedy_legacy(
        netlist, budget_volts, max_new_pads, max_candidates, simulator
    )


def _greedy_incremental(
    netlist: Netlist,
    budget_volts: float,
    max_new_pads: int,
    max_candidates: int,
    simulator: PowerRushSimulator | None,
) -> PadPlacementResult:
    """One stamping + one AMG setup; candidates are low-rank previews.

    On the engine's direct tier (modest systems) candidate previews are
    exact triangular solves.  On the iterative fallback tier previews
    only *rank* pad sites, so they run at a relaxed tolerance
    (``rank_tol``) with equally relaxed cached correction columns —
    fewer preconditioned iterations per candidate than a full solve.
    Committed solves polish on the patched matrix at the tight
    tolerance either way, so the reported drop history is
    solver-accurate.
    """
    tol = simulator.options.tol if simulator is not None else 1e-10
    rank_tol = max(tol, 1e-6)
    grid = PowerGrid.from_netlist(netlist)
    supply_voltage = netlist.supply_voltage()
    engine = IncrementalEngine(
        grid,
        supply_voltage,
        options=SolverOptions(tol=tol, record_history=False),
        incremental=IncrementalOptions(column_tol=rank_tol),
    )

    added: list[str] = []
    with span("pad_placement", method="incremental"):
        step = engine.solve()
        history = [float(step.drops.max())]
        for _ in range(max_new_pads):
            if history[-1] <= budget_volts:
                break
            candidates = _top_layer_candidates(
                engine.grid, step.drops, max_candidates, set(added)
            )
            if not candidates:
                break

            best_name: str | None = None
            best_worst = history[-1]
            for candidate in candidates:
                trial = engine.preview(AddPad(candidate.name), tol=rank_tol)
                counter_add("pad_placement.candidates")
                worst = float(trial.drops.max())
                if worst < best_worst:
                    best_worst = worst
                    best_name = candidate.name
            if best_name is None:
                break  # no candidate improves; stop early
            engine.apply(AddPad(best_name))
            step = engine.solve()
            added.append(best_name)
            history.append(float(step.drops.max()))

    final = _with_extra_pads(netlist, added, supply_voltage)
    return PadPlacementResult(
        added_pads=added,
        worst_drop_history=history,
        final_netlist=final,
        met_budget=history[-1] <= budget_volts,
    )


def _greedy_legacy(
    netlist: Netlist,
    budget_volts: float,
    max_new_pads: int,
    max_candidates: int,
    simulator: PowerRushSimulator | None,
) -> PadPlacementResult:
    """Reference implementation: full re-simulation per candidate."""
    simulator = simulator or PowerRushSimulator(tol=1e-10)

    added: list[str] = []
    report = simulator.simulate_netlist(netlist)
    history = [report.worst_drop()]
    supply_voltage = report.supply_voltage
    # One mutable working netlist for the whole sweep: trials append a
    # candidate source and pop it after simulation instead of rebuilding
    # the element lists per candidate.
    working = _with_extra_pads(netlist, [], supply_voltage)

    with span("pad_placement", method="legacy"):
        for _ in range(max_new_pads):
            if history[-1] <= budget_volts:
                break
            candidates = _top_layer_candidates(
                report.grid, report.ir_drop, max_candidates, set(added)
            )
            if not candidates:
                break

            best_name: str | None = None
            best_worst = history[-1]
            best_report = None
            for candidate in candidates:
                working.voltage_sources.append(
                    VoltageSource("Vtrial", candidate.name, "0", supply_voltage)
                )
                try:
                    trial_report = simulator.simulate_netlist(working)
                finally:
                    working.voltage_sources.pop()
                counter_add("pad_placement.candidates")
                worst = trial_report.worst_drop()
                if worst < best_worst:
                    best_worst = worst
                    best_name = candidate.name
                    best_report = trial_report
            if best_name is None:
                break  # no candidate improves; stop early
            added.append(best_name)
            history.append(best_worst)
            report = best_report
            working.voltage_sources.append(
                VoltageSource(f"Vopt{len(added)}", best_name, "0", supply_voltage)
            )

    final = _with_extra_pads(netlist, added, supply_voltage)
    return PadPlacementResult(
        added_pads=added,
        worst_drop_history=history,
        final_netlist=final,
        met_budget=history[-1] <= budget_volts,
    )
