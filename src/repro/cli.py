"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``simulate``
    Pure numerical analysis of a SPICE deck (PowerRush flow); prints the
    worst drop, solver statistics and optionally a signoff verdict.
``generate``
    Emit a synthetic benchmark design (SPICE deck + ICCAD-style images)
    into a directory.
``train``
    Train an IR-Fusion pipeline on a generated suite and save the model;
    ``--jobs N`` shards each mini-batch across gradient workers and
    ``--precision mixed`` switches the kernels to the fp32 compute path
    (fp64 master weights, see ``docs/performance.md``).
``analyze``
    Fused analysis of one or more decks with a previously trained model
    checkpoint; ``--jobs N`` fans multiple decks across the supervised
    worker pool, and ``--task-timeout``/``--retries``/``--deadline``
    bound each deck and the whole run (hung or crashing decks are
    retried, then quarantined — see ``docs/robustness.md``).
``serve``
    Start the persistent analysis-as-a-service daemon (warm model
    registry, cross-request AMG cache, bounded queue, graceful SIGTERM
    drain — see ``docs/serving.md``).  All arguments are forwarded to
    ``python -m repro.serve``; run ``repro serve --help`` for the list.

Every command prints plain text and returns a conventional exit status,
so the tool scripts cleanly:

====  =========================================================
code  meaning
====  =========================================================
0     success
1     signoff violation, or an unexpected internal error
2     bad input (unreadable file, parse error, unusable netlist)
3     solver failure after every fallback stage was exhausted
====  =========================================================

Errors print a one-line message to stderr; pass ``--debug`` for the full
traceback.  ``simulate``/``analyze`` also print a ``diagnostics:`` block
recording validation issues, repairs and solver fallbacks.

Observability: ``analyze`` and ``train`` accept ``--trace PATH`` to run
under a :mod:`repro.obs` tracer and write the JSONL span trace (validate
it with ``python -m repro.obs --validate PATH``); ``--debug`` on any
command additionally prints the span summary tree and counters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.obs import span as _span

#: Exit codes (see module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_BAD_INPUT = 2
EXIT_SOLVER_FAILURE = 3


def _print_diagnostics(diagnostics) -> None:
    for line in diagnostics.summary_lines():
        print(line)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.eval.signoff import check_ir_drop
    from repro.grid.geometry import infer_geometry
    from repro.solvers.powerrush import PowerRushSimulator

    simulator = PowerRushSimulator(
        max_iterations=args.iterations, tol=args.tol, preset=args.preset
    )
    report = simulator.simulate_file(args.deck)
    print(f"nodes={report.grid.num_nodes} wires={report.grid.num_wires} "
          f"pads={len(report.grid.pads())}")
    print(f"iterations={report.solve.iterations} "
          f"converged={report.solve.converged} "
          f"residual={report.solve.final_residual:.3e}")
    print(f"worst_drop_mV={report.worst_drop() * 1e3:.4f}")
    _print_diagnostics(report.diagnostics)
    if args.limit_mv is not None:
        geometry = infer_geometry(report.grid)
        verdict = check_ir_drop(
            report.drop_image(geometry), args.limit_mv / 1e3
        )
        print(verdict.summary())
        return 0 if verdict.passed else 1
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.dataset import golden_ir_drop
    from repro.data.iccad import save_iccad_design
    from repro.data.synthetic import generate_design, make_fake_spec, make_real_spec
    from repro.features.current import load_current_map
    from repro.features.density import pdn_density_map
    from repro.features.distance import effective_distance_map

    maker = make_fake_spec if args.kind == "fake" else make_real_spec
    design = generate_design(
        maker(args.name, seed=args.seed, pixels=args.pixels)
    )
    images = {
        "current": load_current_map(design.geometry, design.grid),
        "eff_dist": effective_distance_map(design.geometry, design.grid),
        "pdn_density": pdn_density_map(design.geometry, design.grid),
    }
    if args.golden:
        images["ir_drop"] = golden_ir_drop(design)
    save_iccad_design(args.out, design.netlist, images)
    print(f"wrote {args.kind} design {args.name!r} "
          f"({design.grid.num_nodes} nodes) to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    with _span("imports"):
        from repro.core.config import FusionConfig
        from repro.core.pipeline import IRFusionPipeline
        from repro.train.trainer import TrainConfig

    config = FusionConfig(
        pixels=args.pixels,
        num_fake=args.fake,
        num_real_train=args.real,
        num_real_test=1,
        data_seed=args.seed,
        base_channels=args.channels,
        train=TrainConfig(epochs=args.epochs, batch_size=8,
                          use_curriculum=True,
                          jobs=args.jobs, precision=args.precision),
        jobs=args.jobs,
        sanitize=args.sanitize,
    )
    pipeline = IRFusionPipeline(config)
    history = pipeline.train()
    pipeline.save_model(args.out)
    train_raw, _ = pipeline.build_datasets()
    meta = {
        "in_channels": len(train_raw.channels),
        "config": {
            "pixels": config.pixels,
            "base_channels": config.base_channels,
            "depth": config.depth,
            "solver_iterations": config.solver_iterations,
        },
        "final_loss": history.final_loss,
    }
    Path(str(args.out) + ".json").write_text(json.dumps(meta, indent=2))
    print(f"trained {config.train.epochs} epochs "
          f"(final loss {history.final_loss:.4f}); saved to {args.out}")
    return 0


def _batch_error_code(error: str) -> int:
    """Map a captured per-deck error string onto the CLI exit codes."""
    kind = error.split(":", 1)[0]
    if kind == "SolverFailure":
        return EXIT_SOLVER_FAILURE
    if kind in (
        "SpiceParseError",
        "NetlistValidationError",
        "FileNotFoundError",
        "IsADirectoryError",
        "PermissionError",
        "KeyError",
        "ValueError",
    ):
        return EXIT_BAD_INPUT
    return EXIT_FAILURE


def _cmd_analyze(args: argparse.Namespace) -> int:
    with _span("imports"):
        from repro.core.pipeline import IRFusionPipeline

    pipeline = IRFusionPipeline.from_model_file(
        args.model, jobs=max(1, args.jobs), sanitize=args.sanitize
    )
    config = pipeline.config

    if len(args.deck) == 1:
        if args.deadline is not None:
            # Same cooperative budget the batch path hands each worker:
            # the solver cascade short-circuits stages that cannot
            # finish before it expires.
            from repro.obs import deadline_scope

            with deadline_scope(args.deadline):
                result = pipeline.analyze_file(args.deck[0])
        else:
            result = pipeline.analyze_file(args.deck[0])
        print(
            f"worst_predicted_drop_mV={result.worst_predicted_drop() * 1e3:.4f}"
        )
        print(f"solver_ms={result.solver_seconds * 1e3:.1f} "
              f"features_ms={result.feature_seconds * 1e3:.1f} "
              f"model_ms={result.model_seconds * 1e3:.1f}")
        _print_diagnostics(result.diagnostics)
        if args.save_map:
            np.savetxt(args.save_map, result.predicted_drop, delimiter=",")
            print(f"wrote drop map to {args.save_map}")
        if args.limit_mv is not None:
            verdict = result.signoff(args.limit_mv / 1e3)
            print(verdict.summary())
            return 0 if verdict.passed else 1
        return 0

    # Batch mode: fan the decks across worker processes, keep going past
    # per-deck failures, and exit with the most severe per-deck code.
    if args.save_map:
        raise ValueError("--save-map needs a single deck")
    from repro.core.batch import BatchAnalyzer

    analyzer = BatchAnalyzer(
        pipeline,
        jobs=config.jobs,
        task_timeout=args.task_timeout,
        retries=args.retries,
        deadline=args.deadline,
    )
    report = analyzer.analyze_files(args.deck)
    status = EXIT_OK
    for item in report.items:
        if not item.ok:
            print(f"{item.name}: error: {item.error}", file=sys.stderr)
            status = max(status, _batch_error_code(item.error))
            continue
        result = item.result
        line = (
            f"{item.name}: "
            f"worst_predicted_drop_mV={result.worst_predicted_drop() * 1e3:.4f} "
            f"total_ms={result.total_seconds * 1e3:.1f}"
        )
        if args.limit_mv is not None:
            verdict = result.signoff(args.limit_mv / 1e3)
            line += f" signoff={'pass' if verdict.passed else 'FAIL'}"
            if not verdict.passed:
                status = max(status, EXIT_FAILURE)
        print(line)
    for line in report.summary_lines():
        print(line)
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serve stack pulls the whole pipeline chain,
    # which `repro --help` and the other subcommands must not pay for.
    from repro.serve.__main__ import main as serve_main

    return serve_main(args.serve_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IR-Fusion static IR-drop analysis toolkit",
    )
    parser.add_argument("--debug", action="store_true",
                        help="print full tracebacks instead of one-line errors")
    parser.add_argument("--backend", choices=("numpy", "numba"), default=None,
                        help="compute-kernel tier for dense/sparse hot loops "
                             "(default: REPRO_BACKEND env var, else numpy)")
    parser.add_argument("--shm-threshold", default=None, metavar="BYTES",
                        help="minimum ndarray size for the zero-copy "
                             "shared-memory pool transport; 0 or 'off' forces "
                             "inline pickling (default: REPRO_SHM_THRESHOLD "
                             "env var, else 64 KiB)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="numerical (PowerRush) analysis")
    simulate.add_argument("deck", help="SPICE deck path")
    simulate.add_argument("--iterations", type=int, default=1000)
    simulate.add_argument("--tol", type=float, default=1e-10)
    simulate.add_argument("--preset", choices=("quality", "fast"),
                          default="quality")
    simulate.add_argument("--limit-mv", type=float, default=None,
                          help="signoff budget in millivolts")
    simulate.set_defaults(func=_cmd_simulate)

    generate = sub.add_parser("generate", help="emit a synthetic design")
    generate.add_argument("out", help="output directory")
    generate.add_argument("--kind", choices=("fake", "real"), default="fake")
    generate.add_argument("--name", default="design")
    generate.add_argument("--pixels", type=int, default=32)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--golden", action="store_true",
                          help="include the golden IR-drop image")
    generate.set_defaults(func=_cmd_generate)

    train = sub.add_parser("train", help="train and checkpoint IR-Fusion")
    train.add_argument("out", help="model checkpoint path (.npz)")
    train.add_argument("--pixels", type=int, default=32)
    train.add_argument("--fake", type=int, default=8)
    train.add_argument("--real", type=int, default=3)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--channels", type=int, default=6)
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--jobs", type=int, default=1,
                       help="worker processes for feature extraction and "
                            "the data-parallel gradient engine")
    train.add_argument("--precision", choices=("fp64", "mixed"),
                       default="fp64",
                       help="training compute precision: fp64 (bitwise "
                            "legacy path) or mixed (fp32 kernels over "
                            "fp64 master weights)")
    train.add_argument("--sanitize", action="store_true",
                       help="trap NaN/Inf at the originating op during "
                            "training (numerics sanitizer)")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="write a JSONL span trace of the run")
    train.set_defaults(func=_cmd_train)

    analyze = sub.add_parser("analyze", help="fused analysis with a checkpoint")
    analyze.add_argument("model", help="checkpoint path from 'train'")
    analyze.add_argument("deck", nargs="+", help="SPICE deck path(s)")
    analyze.add_argument("--jobs", type=int, default=1,
                         help="worker processes when analysing several decks")
    analyze.add_argument("--limit-mv", type=float, default=None)
    analyze.add_argument("--save-map", default=None,
                         help="write the predicted map as CSV")
    analyze.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-deck budget in batch mode: a hung deck "
                              "is killed, retried, then quarantined")
    analyze.add_argument("--retries", type=int, default=None, metavar="N",
                         help="extra attempts per deck after a worker "
                              "crash, timeout or transient failure "
                              "(default: pool default)")
    analyze.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="whole-run budget: batch items still "
                              "unfinished are quarantined; a single deck "
                              "short-circuits solver fallbacks that "
                              "cannot finish in time")
    analyze.add_argument("--sanitize", action="store_true",
                         help="record NaN/Inf/denormal findings per stage "
                              "in the run diagnostics")
    analyze.add_argument("--trace", default=None, metavar="PATH",
                         help="write a JSONL span trace of the run")
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser(
        "serve",
        help="start the analysis daemon (run `repro serve --help` for flags)",
        add_help=False,
    )
    serve.add_argument("serve_args", nargs=argparse.REMAINDER,
                       help="arguments forwarded to python -m repro.serve")
    serve.set_defaults(func=_cmd_serve)
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, under a tracer when asked to.

    ``--trace PATH`` (analyze/train) and ``--debug`` (any command) both
    install a :mod:`repro.obs` tracer for the command's whole extent, so
    every library span — parse, validate, amg_setup, pcg, features,
    inference, per-epoch train — lands in one tree.  The trace file is
    written (and the summary printed) only when the command completes;
    an exception propagates to :func:`main`'s error mapping untouched.
    """
    trace_path = getattr(args, "trace", None)
    if trace_path is None and not args.debug:
        return args.func(args)
    from repro.obs import metrics_snapshot, summary_lines, trace, write_trace

    with trace(args.command) as tracer:
        status = args.func(args)
    metrics = metrics_snapshot()
    if trace_path is not None:
        write_trace(trace_path, tracer.root, metrics)
        print(f"wrote trace to {trace_path}")
    if args.debug:
        for line in summary_lines(tracer.root, metrics):
            print(line)
    return status


def _serve_split(argv: list[str]) -> int | None:
    """Index just past the ``serve`` subcommand token, or ``None``.

    Scans over the global flags only, so a deck that happens to be
    named ``serve`` in another subcommand's positionals never matches.
    """
    value_flags = {"--backend", "--shm-threshold"}
    i = 0
    while i < len(argv):
        token = argv[i]
        if token == "serve":
            return i + 1
        if token in value_flags:
            i += 2
        elif token.startswith("-"):
            i += 1
        else:
            return None  # first positional is a different subcommand
    return None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # argparse.REMAINDER refuses a first token that looks like an option
    # (bpo-17050), which is exactly what `repro serve --model-dir ...`
    # sends — split the forwarded flags off before the parser sees them.
    split = _serve_split(argv)
    if split is not None:
        args = build_parser().parse_args(argv[:split])
        args.serve_args = argv[split:]
    else:
        args = build_parser().parse_args(argv)
    # Imported here so `repro --help` stays instant.
    from repro.analysis.racecheck import install_from_env as _install_racecheck
    from repro.core.kernels import BackendUnavailableError, set_backend
    from repro.solvers.guard import SolverFailure
    from repro.spice.parser import SpiceParseError
    from repro.spice.validate import NetlistValidationError

    _install_racecheck()
    try:
        if args.backend is not None:
            set_backend(args.backend)
        if args.shm_threshold is not None:
            # Validate eagerly so a typo fails the run instead of being
            # silently swallowed by the lenient env-var parser.
            from repro.core import shm as _shm

            if args.shm_threshold.lower() not in ("off", "none", "disabled"):
                if int(args.shm_threshold) < 0:
                    raise ValueError("--shm-threshold must be >= 0")
            os.environ[_shm.THRESHOLD_ENV] = args.shm_threshold
        return _dispatch(args)
    except BackendUnavailableError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except SolverFailure as exc:
        if args.debug:
            raise
        print(f"error: solver failure: {exc}", file=sys.stderr)
        return EXIT_SOLVER_FAILURE
    except (
        SpiceParseError,
        NetlistValidationError,
        FileNotFoundError,
        IsADirectoryError,
        PermissionError,
        json.JSONDecodeError,
        KeyError,
        ValueError,
    ) as exc:
        if args.debug:
            raise
        print(f"error: bad input: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except Exception as exc:  # noqa: BLE001 — last-resort: no raw tracebacks
        if args.debug:
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())
