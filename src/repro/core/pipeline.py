"""The end-to-end IR-Fusion pipeline (Fig. 2).

``spice deck → PowerGrid → rough AMG-PCG solution → hierarchical
numerical-structural features → Inception Attention U-Net → IR-drop map``

:class:`IRFusionPipeline` owns dataset generation, training-set
preparation (augmentation, oversampling, curriculum) and inference on new
designs, all driven by one :class:`~repro.core.config.FusionConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FusionConfig
from repro.obs import span
from repro.data.augment import augment_dataset, oversample
from repro.diagnostics import RunDiagnostics
from repro.data.dataset import DesignSample, IRDropDataset
from repro.data.synthetic import Design, generate_benchmark_suite
from repro.features.fusion import assemble_feature_stack
from repro.features.maps import FeatureStack
from repro.grid.geometry import GridGeometry, infer_geometry
from repro.grid.netlist import PowerGrid
from repro.models.registry import create_model, preferred_loss
from repro.nn.module import Module
from repro.nn.serialize import load_state, save_state
from repro.solvers.powerrush import PowerRushSimulator, SimulationReport
from repro.spice.parser import parse_spice, parse_spice_file
from repro.train.trainer import Trainer, TrainHistory


@dataclass
class AnalysisResult:
    """Output of analysing one design end-to-end.

    Attributes
    ----------
    predicted_drop:
        The ML-refined bottom-layer IR-drop image (volts).
    rough_drop:
        The numerical rough solution's bottom-layer image (volts), i.e.
        what the solver alone reports at the configured iteration budget;
        ``None`` when the numerical stage is ablated.
    report:
        The rough solver's full :class:`SimulationReport` (``None`` when
        ablated).
    features:
        The assembled input stack.
    solver_seconds, feature_seconds, model_seconds:
        Wall-clock breakdown of the three pipeline stages — the durations
        of the ``solve``/``features``/``inference`` spans the run emitted
        (see :mod:`repro.obs`), so they agree with any exported trace.
    diagnostics:
        Validation issues, repairs and solver fallbacks recorded while
        producing this result (an empty record when nominal; shares the
        report's record when the numerical stage ran).
    """

    predicted_drop: np.ndarray
    rough_drop: np.ndarray | None
    report: SimulationReport | None
    features: FeatureStack
    solver_seconds: float
    feature_seconds: float
    model_seconds: float
    diagnostics: RunDiagnostics = field(default_factory=RunDiagnostics)

    @property
    def total_seconds(self) -> float:
        return self.solver_seconds + self.feature_seconds + self.model_seconds

    def worst_predicted_drop(self) -> float:
        return float(self.predicted_drop.max())

    def signoff(self, limit: float):
        """Run the signoff check on the predicted map.

        Returns a :class:`repro.eval.signoff.SignoffReport`.
        """
        from repro.eval.signoff import check_ir_drop

        return check_ir_drop(self.predicted_drop, limit)


class IRFusionPipeline:
    """Train-and-analyze orchestrator for one configuration."""

    def __init__(self, config: FusionConfig | None = None) -> None:
        self.config = config or FusionConfig()
        if self.config.backend is not None:
            # Fail fast (numba requested but absent) before any work runs.
            from repro.core.kernels import set_backend

            set_backend(self.config.backend)
        self._designs: tuple[list[Design], list[Design]] | None = None
        self._datasets: tuple[IRDropDataset, IRDropDataset] | None = None
        self.model: Module | None = None
        self.trainer: Trainer | None = None
        self._trained_channels: int | None = None

    # -- dataset ----------------------------------------------------------------

    def generate_designs(self) -> tuple[list[Design], list[Design]]:
        """(train designs, held-out real test designs), cached."""
        if self._designs is None:
            cfg = self.config
            suite = generate_benchmark_suite(
                num_fake=cfg.num_fake,
                num_real=cfg.num_real_train + cfg.num_real_test,
                pixels=cfg.pixels,
                seed=cfg.data_seed,
            )
            fakes = [d for d in suite if d.is_fake]
            reals = [d for d in suite if not d.is_fake]
            train = fakes + reals[: cfg.num_real_train]
            test = reals[cfg.num_real_train :]
            self._designs = (train, test)
        return self._designs

    def build_datasets(self) -> tuple[IRDropDataset, IRDropDataset]:
        """(raw train set, test set) of samples, cached."""
        if self._datasets is None:
            train_designs, test_designs = self.generate_designs()
            cfg = self.config
            budgets = cfg.solver_iteration_mix or (cfg.solver_iterations,)
            train_samples = []
            for budget in budgets:
                train_samples.extend(
                    IRDropDataset.from_designs(
                        train_designs, cfg.features, budget, cfg.solver_preset,
                        jobs=cfg.jobs,
                    ).samples
                )
            train = IRDropDataset(train_samples)
            test = IRDropDataset.from_designs(
                test_designs, cfg.features, cfg.solver_iterations,
                cfg.solver_preset, jobs=cfg.jobs,
            )
            self._datasets = (train, test)
        return self._datasets

    def prepare_training_set(self, train: IRDropDataset) -> IRDropDataset:
        """Apply rotation augmentation and family oversampling."""
        cfg = self.config
        prepared = augment_dataset(train) if cfg.augment else train
        if cfg.oversample_fake > 1 or cfg.oversample_real > 1:
            prepared = oversample(
                prepared, cfg.oversample_fake, cfg.oversample_real
            )
        return prepared

    # -- training ----------------------------------------------------------------

    def build_model(self, in_channels: int) -> Module:
        cfg = self.config
        with span("model_build", model=cfg.model_name):
            model = create_model(
                cfg.model_name,
                in_channels=in_channels,
                base_channels=cfg.base_channels,
                depth=cfg.depth,
                seed=cfg.model_seed,
                **cfg.model_kwargs,
            )
            # Static graph check: catches channel/shape wiring mistakes at
            # build time, before any kernel runs.  strict=False tolerates
            # custom modules registered without a shape handler.
            from repro.analysis.shapes import verify_model

            verify_model(
                model,
                in_channels,
                (cfg.pixels, cfg.pixels),
                strict=False,
                name=cfg.model_name,
            )
        return model

    def train(self) -> TrainHistory:
        """Build datasets and fit the configured model."""
        train_raw, _ = self.build_datasets()
        prepared = self.prepare_training_set(train_raw)
        self.model = self.build_model(in_channels=len(prepared.channels))
        self._trained_channels = len(prepared.channels)
        loss = preferred_loss(self.config.model_name)
        self.trainer = Trainer(self.model, loss=loss, config=self.config.train)
        if self.config.sanitize:
            # Trap NaN/Inf at the producing op instead of three layers
            # later in the loss.
            from repro.analysis.sanitizer import SanitizerSession

            with SanitizerSession(self.model, on_finding="raise"):
                return self.trainer.fit(prepared)
        return self.trainer.fit(prepared)

    # -- inference ----------------------------------------------------------------

    def _require_trainer(self) -> Trainer:
        if self.trainer is None:
            raise RuntimeError("pipeline is untrained; call train() first")
        return self.trainer

    def predict_sample(self, sample: DesignSample) -> np.ndarray:
        """IR-drop map (volts) for a prebuilt sample."""
        return self._require_trainer().predict([sample])[0]

    def analyze_file(self, path) -> AnalysisResult:
        """Analyse a SPICE deck from disk."""
        with span("parse", source=str(path)):
            netlist = parse_spice_file(path)
        return self.analyze_netlist(netlist)

    def analyze_text(self, text: str) -> AnalysisResult:
        """Analyse a SPICE deck held in a string."""
        with span("parse", source="<text>"):
            netlist = parse_spice(text)
        return self.analyze_netlist(netlist)

    def analyze_netlist(self, netlist) -> AnalysisResult:
        """Analyse a parsed deck (geometry inferred from node names)."""
        grid = PowerGrid.from_netlist(netlist)
        geometry = infer_geometry(grid, align_pixels=2**self.config.depth)
        return self.analyze_grid(
            grid, geometry, supply_voltage=netlist.supply_voltage()
        )

    def analyze_design(self, design: Design) -> AnalysisResult:
        """Analyse a generated synthetic design."""
        return self.analyze_grid(
            design.grid, design.geometry, design.spec.supply_voltage
        )

    def analyze_grid(
        self,
        grid: PowerGrid,
        geometry: GridGeometry,
        supply_voltage: float,
    ) -> AnalysisResult:
        """The full fusion flow on an arbitrary power grid.

        Every stage runs under a :mod:`repro.obs` span (``analyze`` →
        ``solve``/``features``/``inference``); the legacy ``*_seconds``
        fields are those spans' durations, so a traced run and the
        summary numbers can never disagree.
        """
        trainer = self._require_trainer()
        cfg = self.config

        report: SimulationReport | None = None
        rough_drop = None
        voltages = None
        solver_seconds = 0.0
        diagnostics = RunDiagnostics()
        with span("analyze") as analyze_span:
            if cfg.features.use_numerical:
                with span(
                    "solve", iterations=cfg.solver_iterations
                ) as solve_span:
                    simulator = PowerRushSimulator(
                        max_iterations=cfg.solver_iterations,
                        preset=cfg.solver_preset,
                    )
                    report = simulator.simulate_grid(
                        grid, supply_voltage=supply_voltage
                    )
                solver_seconds = solve_span.duration
                voltages = report.voltages
                rough_drop = report.drop_image(geometry, layer=1)
                diagnostics = report.diagnostics
                # The repaired grid (e.g. ground-tied islands) is what the
                # features must describe, or raster/solver views disagree.
                grid = report.grid

            sanitize = cfg.sanitize
            if sanitize:
                from repro.analysis.sanitizer import check_array

                if voltages is not None:
                    diagnostics.numerics.extend(
                        check_array(voltages, "solver.voltages")
                    )
                if rough_drop is not None:
                    diagnostics.numerics.extend(
                        check_array(rough_drop, "solver.rough_drop")
                    )

            with span("features") as feature_span:
                features = assemble_feature_stack(
                    geometry,
                    grid,
                    cfg.features,
                    voltages=voltages,
                    supply_voltage=supply_voltage,
                )
            feature_seconds = feature_span.duration

            if sanitize:
                for name, channel in zip(features.channels, features.data):
                    diagnostics.numerics.extend(
                        check_array(channel, f"features.{name}")
                    )

            if (
                self._trained_channels is not None
                and features.num_channels != self._trained_channels
            ):
                raise ValueError(
                    f"design produces {features.num_channels} feature "
                    f"channels but the model was trained on "
                    f"{self._trained_channels}; the metal-layer count must "
                    "match the training designs"
                )

            with span("inference") as model_span:
                # Route through the trainer so residual (fusion) prediction
                # logic is applied exactly as during evaluation.
                probe = DesignSample(
                    name="analysis",
                    kind="real",
                    features=features,
                    label=np.zeros(features.shape),
                    rough_label=rough_drop,
                )
                if sanitize:
                    from repro.analysis.sanitizer import SanitizerSession

                    with SanitizerSession(
                        trainer.model, on_finding="record"
                    ) as session:
                        predicted = trainer.predict([probe])[0]
                    diagnostics.numerics.extend(session.findings)
                    diagnostics.numerics.extend(
                        check_array(predicted, "prediction")
                    )
                else:
                    predicted = trainer.predict([probe])[0]
            model_seconds = model_span.duration

        diagnostics.trace = analyze_span.to_dict()
        return AnalysisResult(
            predicted_drop=predicted,
            rough_drop=rough_drop,
            report=report,
            features=features,
            solver_seconds=solver_seconds,
            feature_seconds=feature_seconds,
            model_seconds=model_seconds,
            diagnostics=diagnostics,
        )

    # -- persistence ----------------------------------------------------------------

    @classmethod
    def from_model_file(cls, path, **config_overrides) -> "IRFusionPipeline":
        """A ready-to-analyze pipeline from a ``train`` checkpoint pair.

        *path* is the ``.npz`` weights archive; its ``<path>.json`` meta
        sidecar (written by ``repro train``) supplies the architecture
        and solver config via :meth:`FusionConfig.from_model_meta`.
        *config_overrides* adjust execution knobs (``jobs``,
        ``sanitize``, ``backend``, ...) without touching the recorded
        architecture.  This is the single load path shared by the CLI
        ``analyze`` command and the serving daemon's model registry.
        """
        import json

        with open(str(path) + ".json", "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        config = FusionConfig.from_model_meta(meta, **config_overrides)
        pipeline = cls(config)
        try:
            in_channels = int(meta["in_channels"])
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"model meta {str(path) + '.json'!r} is missing "
                "'in_channels'; was it written by `repro train`?"
            ) from exc
        pipeline.load_model(path, in_channels=in_channels)
        return pipeline

    def save_model(self, path) -> None:
        """Checkpoint the trained model's weights."""
        if self.model is None:
            raise RuntimeError("no model to save; call train() first")
        save_state(self.model, path)

    def load_model(self, path, in_channels: int) -> None:
        """Restore a checkpoint into a freshly built model."""
        with span("model_load", source=str(path)):
            self.model = self.build_model(in_channels=in_channels)
            load_state(self.model, path)
        self._finish_model_load(in_channels)

    def load_model_state(self, state, in_channels: int) -> None:
        """Restore an in-memory state dict into a freshly built model.

        Same contract as :meth:`load_model` but without touching disk —
        the path pool workers use to rebuild a shipped pipeline from
        shared-memory weight views.
        """
        self.model = self.build_model(in_channels=in_channels)
        self.model.load_state_dict(state)
        self._finish_model_load(in_channels)

    def _finish_model_load(self, in_channels: int) -> None:
        self._trained_channels = in_channels
        loss = preferred_loss(self.config.model_name)
        self.trainer = Trainer(self.model, loss=loss, config=self.config.train)
