"""The single configuration object for the whole IR-Fusion flow.

One :class:`FusionConfig` fixes the dataset, the solver budget, the
feature families, the model size and the training regime, so experiments
(and their ablations) differ in exactly one declared knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.features.fusion import FeatureConfig
from repro.train.trainer import TrainConfig


@dataclass(frozen=True)
class FusionConfig:
    """Everything the pipeline needs.

    Dataset
    -------
    pixels:
        Die edge in pixels (paper: 256; benches default far smaller so CPU
        training finishes in minutes).
    num_fake / num_real_train / num_real_test:
        Suite composition (contest: 100 fake + 10 real train, 10 real test).
    data_seed:
        Seed for design generation.

    Numerical stage
    ---------------
    solver_iterations:
        AMG-PCG iteration cap for the rough solutions (paper sweet spot: 2).
    solver_preset:
        PowerRush preset for the rough stage: ``"fast"`` (cheap V-cycle,
        the framework's rough-iteration regime) or ``"quality"``.
    solver_iteration_mix:
        When set, the *training* set contains one sample per design per
        listed budget, teaching the model how much to trust the numerical
        channels at any solver effort (required for the Fig. 7 sweep,
        where evaluation budgets vary).  Test samples always use
        ``solver_iterations``.

    Features
    --------
    features:
        Feature-family switches (numerical / hierarchical / normalise).

    Model
    -----
    model_name, base_channels, depth, model_seed:
        Architecture selection and size.

    Training
    --------
    train:
        Loop controls (epochs, lr, batch size, curriculum flag, ...) plus
        the data-parallel engine knobs (``jobs``, ``precision``,
        ``grad_shards``, ``sync_every``, ``loss_scale``) — see
        :class:`repro.train.trainer.TrainConfig`.  The trainer's ``jobs``
        is independent of the pipeline-level ``jobs`` below: one shards
        gradient work inside an epoch, the other fans out whole designs.
    augment:
        Apply the 4x rotation augmentation to the training set.
    oversample_fake / oversample_real:
        Replication factors (contest: 2 / 5); 1 disables.

    Execution
    ---------
    jobs:
        Worker processes for batchable stages (dataset feature extraction,
        batch analysis); 1 keeps everything serial in-process.  Gradient
        sharding during training is controlled by ``train.jobs`` instead.
    sanitize:
        Enable the numerics sanitizer (:mod:`repro.analysis.sanitizer`):
        training traps NaN/Inf at the originating op, analysis records
        numerics findings in the run diagnostics.  Off by default — the
        instrumented path re-checks every leaf-op output.
    backend:
        Compute-kernel tier (:mod:`repro.core.kernels`): ``None`` keeps
        the ambient selection (the ``REPRO_BACKEND`` environment
        variable, defaulting to ``"numpy"``); ``"numpy"`` / ``"numba"``
        pin it for the run.  Requesting ``"numba"`` without the optional
        dependency installed fails fast at pipeline start.
    shm_threshold:
        Minimum ndarray size in bytes for the zero-copy shared-memory
        payload transport (:mod:`repro.core.shm`) in pool batches.
        ``None`` keeps the ambient selection (the ``REPRO_SHM_THRESHOLD``
        environment variable, defaulting to 64 KiB); ``0`` forces plain
        inline pickling for the run.  Results are identical either way —
        this is purely a transport knob.
    """

    pixels: int = 32
    num_fake: int = 8
    num_real_train: int = 2
    num_real_test: int = 2
    data_seed: int = 7
    solver_iterations: int = 2
    solver_preset: str = "fast"
    solver_iteration_mix: tuple[int, ...] | None = None
    features: FeatureConfig = field(default_factory=FeatureConfig)
    model_name: str = "ir_fusion"
    base_channels: int = 6
    depth: int = 3
    model_seed: int = 0
    model_kwargs: dict = field(default_factory=dict)
    train: TrainConfig = field(default_factory=TrainConfig)
    augment: bool = True
    oversample_fake: int = 2
    oversample_real: int = 5
    jobs: int = 1
    sanitize: bool = False
    backend: str | None = None
    shm_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.pixels % (2**self.depth) != 0:
            raise ValueError(
                f"pixels={self.pixels} must be divisible by 2**depth="
                f"{2 ** self.depth}"
            )
        if self.num_fake + self.num_real_train < 1:
            raise ValueError("training suite is empty")
        if self.solver_iterations < 0:
            raise ValueError("solver_iterations must be >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.shm_threshold is not None and self.shm_threshold < 0:
            raise ValueError("shm_threshold must be >= 0 (0 disables)")
        if self.backend is not None:
            from repro.core.kernels import BACKENDS

            if self.backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {self.backend!r}; "
                    f"choose from {BACKENDS}"
                )

    def with_(self, **overrides) -> "FusionConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **overrides)

    @classmethod
    def from_model_meta(cls, meta: dict, **overrides) -> "FusionConfig":
        """The analysis config recorded in a checkpoint's meta sidecar.

        ``train`` writes ``<model>.npz.json`` next to every checkpoint
        with the knobs inference must reproduce (pixels, channel widths,
        depth, solver budget).  Both the CLI ``analyze`` path and the
        serving daemon's model registry rebuild their pipeline config
        from it through this one constructor, so the two can never
        drift.  *overrides* replace any field after the meta is applied
        (e.g. ``jobs=4``, ``sanitize=True``).
        """
        try:
            recorded = meta["config"]
            fields = {
                "pixels": recorded["pixels"],
                "base_channels": recorded["base_channels"],
                "depth": recorded["depth"],
                "solver_iterations": recorded["solver_iterations"],
            }
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"model meta is missing the recorded config field {exc}; "
                "was the sidecar written by `repro train`?"
            ) from exc
        fields.update(overrides)
        return cls(**fields)
