"""Zero-copy shared-memory data plane for the worker pool.

Large numpy arrays crossing the pool's pipes (feature stacks in, result
maps and gradient shards out) used to pay a full pickle round-trip per
attempt.  This module externalizes them into POSIX shared-memory
segments (plain files under ``/dev/shm``) so only a ~100-byte
:class:`ShmArray` descriptor rides the pipe; the receiving process maps
the segment lazily and reconstructs the array as a zero-copy view.

Design notes (hard-won lifetime rules):

- **Views are created with ``np.frombuffer`` on a raw ``mmap``**, never
  through ``multiprocessing.shared_memory``.  ``np.frombuffer`` exports
  the mmap's buffer, so ``mmap.close()`` raises ``BufferError`` while
  any view is alive and the mapping is only unmapped when the last view
  dies — a view can never dangle.  (``SharedMemory.__del__`` closes its
  mapping *under* live numpy views and segfaults; ``np.ndarray(buffer=
  mm)`` does not pin the export either.  Both are banned here.)
- **Unlink-early is safe.**  POSIX keeps the pages alive while any
  mapping exists, so the parent unlinks segments at job end even though
  result views are still in use; the name disappears from ``/dev/shm``
  immediately and the memory is freed when the last view is collected.
  This is what makes crash reclamation watertight: nothing needs to
  outlive the job.
- **No resource tracker.**  Segments are plain ``os.open``/``mmap``
  files created with ``O_EXCL``, so there is no
  ``multiprocessing.resource_tracker`` registration to leak or
  double-unregister across the spawn boundary.
- **Parent-owned lifetime.**  The process-wide :class:`ShmArena`
  refcounts every segment per *scope* (one scope per pool job /
  trainer epoch); ``release_scope`` unlinks segments whose refs drop to
  zero and ``sweep_orphans`` reclaims segments a SIGKILL'd worker
  created but never handed over.  An ``atexit`` hook unlinks anything
  left and reports it via the ``shm.segments_leaked`` counter.

Transport: :func:`dumps` / :func:`loads` are drop-in pickle
replacements that externalize eligible ndarrays (``type(obj) is
np.ndarray``, non-object dtype, ``nbytes`` at or above the threshold)
through the pickle ``persistent_id`` hook.  Eligibility preserves C/F
contiguity the way numpy's own pickle does, so reconstructed arrays are
bitwise- and layout-identical to inline transport.  When ``/dev/shm``
is unavailable (non-Linux, exotic sandboxes) or the threshold is
disabled, both functions degrade transparently to plain pickle and
count ``shm.inline_fallbacks``.

The threshold comes from ``FusionConfig.shm_threshold``, the
``REPRO_SHM_THRESHOLD`` environment variable or the ``--shm-threshold``
CLI flag (``0``/``off`` disables externalization entirely); see the
"payload transport" section of ``docs/performance.md``.
"""

from __future__ import annotations

import atexit
import io
import mmap
import os
import pickle
import sys
import threading
from dataclasses import dataclass

import numpy as np

from repro.obs import counter_add, current_tracer, gauge_set, monotonic

#: Where POSIX shared-memory segments appear as plain files (Linux).
SHM_DIR = "/dev/shm"

#: Default externalization threshold in bytes: arrays smaller than this
#: ship inline (descriptor + mmap overhead beats pickle only for large
#: payloads).
DEFAULT_THRESHOLD = 64 * 1024

#: Environment override for the threshold (``0``/``off`` disables).
THRESHOLD_ENV = "REPRO_SHM_THRESHOLD"

#: Tag namespacing our pickle persistent ids.
_PID_TAG = "repro-shm-ndarray"


def available() -> bool:
    """True when POSIX shared memory is usable on this host."""
    global _AVAILABLE
    if _AVAILABLE is None:
        # The probe is idempotent, but the write must still be locked:
        # pool supervisor and caller threads race through here on first
        # use, and torn init under an unlocked check-then-set is exactly
        # the bug class the worker-context pass exists to keep out.
        with _AVAILABLE_LOCK:
            if _AVAILABLE is None:
                try:
                    probed = os.path.isdir(SHM_DIR) and os.access(
                        SHM_DIR, os.W_OK | os.X_OK
                    )
                except OSError:  # pragma: no cover - exotic failures
                    probed = False
                _AVAILABLE = probed
    return _AVAILABLE


_AVAILABLE: bool | None = None
_AVAILABLE_LOCK = threading.Lock()


def shm_threshold(explicit: int | None = None) -> int:
    """Effective externalization threshold in bytes (0 = disabled).

    *explicit* (e.g. ``FusionConfig.shm_threshold``) wins over the
    ``REPRO_SHM_THRESHOLD`` environment variable, which wins over
    :data:`DEFAULT_THRESHOLD`.
    """
    if explicit is not None:
        return max(0, int(explicit))
    raw = os.environ.get(THRESHOLD_ENV, "").strip().lower()
    if not raw:
        return DEFAULT_THRESHOLD
    if raw in ("off", "none", "disabled"):
        return 0
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_THRESHOLD
    return max(0, value)


# -- attachment cache ----------------------------------------------------------

#: name -> mmap, per access mode.  Process-local; workers populate it
#: lazily on first resolve and drop entries on job end (``detach``).
_ATTACH_LOCK = threading.Lock()
_ATTACHMENTS: dict[tuple[str, bool], mmap.mmap] = {}


def _attach(name: str, writable: bool) -> mmap.mmap:
    key = (name, writable)
    with _ATTACH_LOCK:
        cached = _ATTACHMENTS.get(key)
        if cached is not None and not cached.closed:
            return cached
    path = os.path.join(SHM_DIR, name)
    flags = os.O_RDWR if writable else os.O_RDONLY
    fd = os.open(path, flags)
    try:
        size = os.fstat(fd).st_size
        access = mmap.ACCESS_WRITE if writable else mmap.ACCESS_READ
        mapped = mmap.mmap(fd, size, access=access)
    finally:
        os.close(fd)
    with _ATTACH_LOCK:
        _ATTACHMENTS[key] = mapped
    counter_add("shm.attaches")
    return mapped


def _close_mapping(mapped: mmap.mmap) -> None:
    """Close a mapping now if nothing holds views; else defer to GC.

    ``np.frombuffer`` views pin the mmap's exported buffer, so ``close``
    raises ``BufferError`` while any view is alive — in that case we
    just drop our reference and the mapping unmaps when the last view
    is collected.
    """
    try:
        mapped.close()
    except BufferError:
        pass


def detach(name: str) -> None:
    """Drop this process's cached mappings of *name* (safe under views)."""
    with _ATTACH_LOCK:
        for writable in (False, True):
            mapped = _ATTACHMENTS.pop((name, writable), None)
            if mapped is not None:
                _close_mapping(mapped)


def detach_all() -> None:
    """Drop every cached mapping (worker job-end hygiene)."""
    with _ATTACH_LOCK:
        mappings = list(_ATTACHMENTS.values())
        _ATTACHMENTS.clear()
    for mapped in mappings:
        _close_mapping(mapped)


# -- descriptors ---------------------------------------------------------------


@dataclass(frozen=True)
class ShmArray:
    """A ~100-byte handle for an ndarray living in a shared segment.

    Pickles as plain data; :meth:`resolve` maps the segment (cached per
    process) and returns a zero-copy view.  Read-only resolves hand out
    immutable arrays so accidental mutation of shared inputs fails loud
    instead of corrupting a sibling worker.
    """

    name: str
    dtype: str
    shape: tuple
    order: str = "C"
    offset: int = 0

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def resolve(self, writable: bool = False) -> np.ndarray:
        """Map the segment and return the array view (cached mapping)."""
        start = monotonic()
        mapped = _attach(self.name, writable)
        count = 1
        for dim in self.shape:
            count *= int(dim)
        flat = np.frombuffer(
            mapped, dtype=np.dtype(self.dtype), count=count, offset=self.offset
        )
        array = flat.reshape(self.shape, order=self.order)
        if not writable:
            array.flags.writeable = False
        _record_span("shm_attach", start, bytes=self.nbytes, segment=self.name)
        return array


def subarray(desc: ShmArray, index: int) -> ShmArray:
    """Descriptor for row *index* of a C-ordered block descriptor.

    Lets one segment hold N preallocated slots (the trainer's gradient
    outputs) while each worker receives only its own row's descriptor.
    """
    if desc.order != "C":
        raise ValueError("subarray requires a C-ordered block")
    row_shape = tuple(desc.shape[1:])
    row_bytes = ShmArray(desc.name, desc.dtype, row_shape).nbytes
    if not 0 <= index < desc.shape[0]:
        raise IndexError(f"row {index} out of range for shape {desc.shape}")
    return ShmArray(
        name=desc.name,
        dtype=desc.dtype,
        shape=row_shape,
        order="C",
        offset=desc.offset + index * row_bytes,
    )


def _record_span(name: str, start: float, **attrs) -> None:
    """Attach a completed externalize/attach span to any active trace."""
    tracer = current_tracer()
    if tracer is None:
        return
    end = monotonic()
    tracer.attach(
        {
            "name": name,
            "start": float(start),
            "duration": float(max(end - start, 0.0)),
            "attrs": attrs,
            "children": [],
        }
    )


# -- segment creation ----------------------------------------------------------


def _create(name: str, nbytes: int) -> mmap.mmap:
    """Create an exclusive rw segment of *nbytes* and map it."""
    path = os.path.join(SHM_DIR, name)
    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
    try:
        os.ftruncate(fd, nbytes)
        mapped = mmap.mmap(fd, nbytes, access=mmap.ACCESS_WRITE)
    except BaseException:
        os.close(fd)
        os.unlink(path)
        raise
    os.close(fd)
    return mapped


def _normalized(array: np.ndarray) -> tuple[np.ndarray, str]:
    """Contiguous bytes + order flag, mirroring numpy pickle semantics.

    Fortran-contiguous (non-C) arrays keep their layout so a round
    trip reproduces the exact strides BLAS kernels would otherwise see;
    everything else is written C-contiguous.
    """
    if array.flags.f_contiguous and not array.flags.c_contiguous:
        return np.asfortranarray(array), "F"
    return np.ascontiguousarray(array), "C"


def write_segment(name: str, array: np.ndarray) -> ShmArray:
    """Copy *array* into a fresh segment *name*; returns its descriptor.

    The caller owns the segment (registration/unlink is the arena's or
    the worker protocol's job, not this function's).
    """
    data, order = _normalized(array)
    nbytes = max(int(data.nbytes), 1)
    mapped = _create(name, nbytes)
    try:
        target = np.frombuffer(mapped, dtype=data.dtype, count=data.size)
        target[:] = data.ravel(order="K")
    finally:
        _close_mapping(mapped)
    counter_add("shm.bytes_shared", int(data.nbytes))
    return ShmArray(
        name=name, dtype=data.dtype.str, shape=tuple(data.shape), order=order
    )


# -- the arena -----------------------------------------------------------------


class ShmArena:
    """Ref-counted owner of this process's shared segments.

    Segments are held per *scope* (a string, typically one per pool job
    or trainer run); :meth:`release_scope` unlinks everything whose
    refcount drops to zero.  The arena also *adopts* worker-created
    result segments when their descriptors are unpickled in the parent,
    so crash/quarantine paths can reclaim them centrally.
    """

    def __init__(self, token: str | None = None) -> None:
        self.token = token or f"rs{os.getpid():x}"
        self._lock = threading.Lock()
        #: name -> {"nbytes": int, "refs": {scope: count}}
        self._segments: dict[str, dict] = {}
        self._seq = 0

    # -- naming ----------------------------------------------------------------

    def scope(self, label: str) -> str:
        """A collision-free scope string rooted at this arena's token."""
        return f"{self.token}_{label}"

    def _next_name(self, scope: str) -> str:
        with self._lock:
            self._seq += 1
            return f"{scope}_n{self._seq:x}"

    # -- bookkeeping -----------------------------------------------------------

    def _register(self, name: str, nbytes: int, scope: str) -> None:
        with self._lock:
            entry = self._segments.setdefault(
                name, {"nbytes": int(nbytes), "refs": {}}
            )
            refs = entry["refs"]
            refs[scope] = refs.get(scope, 0) + 1
            active = len(self._segments)
        gauge_set("shm.segments_active", active)

    @property
    def segments_active(self) -> int:
        with self._lock:
            return len(self._segments)

    def retain(self, name: str, scope: str) -> None:
        """Add a reference to an already-registered segment."""
        with self._lock:
            if name not in self._segments:
                raise KeyError(f"segment {name!r} is not registered")
            refs = self._segments[name]["refs"]
            refs[scope] = refs.get(scope, 0) + 1

    # -- creation / adoption ---------------------------------------------------

    def share(self, array: np.ndarray, scope: str) -> ShmArray:
        """Copy *array* into a new arena-owned segment under *scope*."""
        start = monotonic()
        name = self._next_name(scope)
        desc = write_segment(name, array)
        self._register(name, desc.nbytes, scope)
        _record_span(
            "shm_externalize", start, bytes=desc.nbytes, segment=name
        )
        return desc

    def allocate(
        self, shape: tuple, dtype, scope: str
    ) -> ShmArray:
        """A zero-filled writable block under *scope* (trainer slots)."""
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        name = self._next_name(scope)
        mapped = _create(name, max(count * dt.itemsize, 1))
        _close_mapping(mapped)
        self._register(name, count * dt.itemsize, scope)
        return ShmArray(name=name, dtype=dt.str, shape=tuple(shape))

    def adopt(self, desc: ShmArray, scope: str) -> None:
        """Take ownership of a worker-created segment (idempotent-ish:
        one ref per adoption; release_scope drops them all)."""
        self._register(desc.name, desc.nbytes, scope)

    # -- release ---------------------------------------------------------------

    def _unlink(self, name: str) -> None:
        detach(name)
        try:
            os.unlink(os.path.join(SHM_DIR, name))
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - permissions races
            pass

    def release_scope(self, scope: str) -> int:
        """Drop every ref *scope* holds; unlink newly-unreferenced
        segments.  Returns how many segments were unlinked."""
        to_unlink: list[str] = []
        with self._lock:
            for name, entry in list(self._segments.items()):
                refs = entry["refs"]
                if scope in refs:
                    del refs[scope]
                if not refs:
                    del self._segments[name]
                    to_unlink.append(name)
            active = len(self._segments)
        for name in to_unlink:
            self._unlink(name)
        gauge_set("shm.segments_active", active)
        counter_add("shm.segments_released", len(to_unlink))
        return len(to_unlink)

    def sweep_orphans(self, scope: str) -> int:
        """Unlink stray segments named under *scope* that were created
        by a worker but never handed over (SIGKILL mid-result).  Call
        after :meth:`release_scope` at job end."""
        prefix = f"{scope}_"
        try:
            entries = os.listdir(SHM_DIR)
        except OSError:  # pragma: no cover - shm vanished underneath us
            return 0
        swept = 0
        with self._lock:
            registered = set(self._segments)
        for entry in entries:
            if not entry.startswith(prefix) or entry in registered:
                continue
            self._unlink(entry)
            swept += 1
        if swept:
            counter_add("shm.segments_swept", swept)
        return swept

    def shutdown(self) -> int:
        """Unlink every remaining segment; returns the leak count.

        Anything still registered here at interpreter exit is a scope
        someone forgot to release — reclaimed, counted and reported.
        """
        with self._lock:
            leaked = list(self._segments)
            self._segments.clear()
        for name in leaked:
            self._unlink(name)
        if leaked:
            counter_add("shm.segments_leaked", len(leaked))
            print(
                f"repro.core.shm: reclaimed {len(leaked)} leaked shared "
                f"segment(s) at exit: {', '.join(sorted(leaked)[:5])}",
                file=sys.stderr,
            )
        gauge_set("shm.segments_active", 0)
        return len(leaked)


#: The process-wide arena (parent-side owner of pool/trainer segments).
ARENA = ShmArena()
atexit.register(ARENA.shutdown)


# -- pickle transport ----------------------------------------------------------


class _ExternalizingPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into shared segments.

    ``writer(array) -> ShmArray`` decides where bytes land (arena-owned
    for parent → worker payloads, loose worker-created segments for
    worker → parent results).
    """

    def __init__(self, file, threshold: int, writer) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._threshold = threshold
        self._writer = writer
        self.externalized = 0
        self.externalized_bytes = 0

    def persistent_id(self, obj):
        if (
            self._threshold > 0
            and type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= self._threshold
        ):
            desc = self._writer(obj)
            if desc is not None:
                self.externalized += 1
                self.externalized_bytes += int(obj.nbytes)
                return (_PID_TAG, desc)
        return None


class _ResolvingUnpickler(pickle.Unpickler):
    """Unpickler that resolves :class:`ShmArray` descriptors to views.

    ``on_descriptor`` (when given) observes every descriptor before it
    resolves — the pool parent uses it to adopt worker-created result
    segments into the arena.
    """

    def __init__(self, file, on_descriptor=None) -> None:
        super().__init__(file)
        self._on_descriptor = on_descriptor

    def persistent_load(self, pid):
        tag, desc = pid
        if tag != _PID_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        if self._on_descriptor is not None:
            self._on_descriptor(desc)
        return desc.resolve()


def dumps(obj, *, threshold: int | None = None, writer=None) -> bytes:
    """Pickle *obj*, externalizing large ndarrays into shared memory.

    *writer* maps an eligible array to a :class:`ShmArray` (or ``None``
    to keep it inline); the default writes arena-owned segments under a
    transient scope — pool call sites always pass an explicit job-scoped
    writer.  Falls back to plain pickle (counted in
    ``shm.inline_fallbacks``) when shm is unavailable or disabled.
    """
    effective = shm_threshold() if threshold is None else threshold
    if effective <= 0 or not available() or writer is None:
        if effective > 0 and writer is not None:
            counter_add("shm.inline_fallbacks")
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    buffer = io.BytesIO()
    pickler = _ExternalizingPickler(buffer, effective, writer)
    pickler.dump(obj)
    return buffer.getvalue()


def loads(blob: bytes, *, on_descriptor=None):
    """Unpickle a :func:`dumps` blob, resolving shm descriptors to views."""
    return _ResolvingUnpickler(
        io.BytesIO(blob), on_descriptor=on_descriptor
    ).load()
