"""Experiment runners behind the paper's tables and figures.

- :func:`run_main_results`    — Table I (all methods, four metrics).
- :func:`run_tradeoff_study`  — Fig. 7 (IR-Fusion vs PowerRush over 1-10
  solver iterations).
- :func:`run_ablation_study`  — Fig. 8 (remove one technique at a time).

All runners share one design suite per config so rows are comparable, and
report paper-convention metrics (volt errors scale to 1e-4 V in the
rendered tables).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import FusionConfig
from repro.core.pipeline import IRFusionPipeline
from repro.data.dataset import IRDropDataset
from repro.data.synthetic import Design
from repro.eval.evaluate import evaluate_rough_solutions, evaluate_trainer
from repro.features.fusion import FeatureConfig
from repro.models.registry import DISPLAY_NAMES, MODEL_REGISTRY
from repro.train.metrics import Metrics

_FLAT_FEATURES = FeatureConfig(use_numerical=False, hierarchical=False)


def _designs_for(config: FusionConfig) -> tuple[list[Design], list[Design]]:
    pipeline = IRFusionPipeline(config)
    return pipeline.generate_designs()


def _runtime_per_design(
    config: FusionConfig, designs: list[Design], pipeline: IRFusionPipeline
) -> float:
    """Mean end-to-end analysis seconds over *designs* (solver+features+model)."""
    times = []
    for design in designs:
        result = pipeline.analyze_design(design)
        times.append(result.total_seconds)
    return float(np.mean(times))


def run_main_results(
    config: FusionConfig | None = None,
    model_names: list[str] | None = None,
) -> dict[str, Metrics]:
    """Train every method on the shared suite and score the held-out reals.

    Following the paper's setup, all methods train on the augmented and
    oversampled data; the pure-ML baselines consume the flat
    current / effective-distance / density features, while IR-Fusion
    consumes the hierarchical numerical-structural stack (its
    contribution).  Runtime is the mean end-to-end per-design analysis
    time, so IR-Fusion pays for its solver stage just as in Table I.
    """
    config = config or FusionConfig()
    model_names = model_names or list(MODEL_REGISTRY)
    results: dict[str, Metrics] = {}
    for name in model_names:
        features = (
            config.features if name == "ir_fusion" else _FLAT_FEATURES
        )
        train_cfg = replace(
            config.train, use_curriculum=(name == "ir_fusion")
        )
        model_config = config.with_(
            model_name=name, features=features, train=train_cfg
        )
        pipeline = IRFusionPipeline(model_config)
        pipeline.train()
        _, test_set = pipeline.build_datasets()
        _, averaged = evaluate_trainer(pipeline.trainer, test_set)
        _, test_designs = pipeline.generate_designs()
        runtime = _runtime_per_design(model_config, test_designs, pipeline)
        results[DISPLAY_NAMES.get(name, name)] = Metrics(
            mae=averaged.mae,
            f1=averaged.f1,
            mirde=averaged.mirde,
            runtime_seconds=runtime,
        )
    return results


@dataclass
class TradeoffResult:
    """Fig. 7 data: metric series over solver iteration counts."""

    iterations: list[int]
    powerrush_mae: list[float]
    powerrush_f1: list[float]
    fusion_mae: list[float]
    fusion_f1: list[float]

    def fusion_wins_mae_at(self) -> int | None:
        """Smallest iteration count where fusion beats PowerRush's best MAE."""
        best_powerrush = min(self.powerrush_mae)
        for iteration, value in zip(self.iterations, self.fusion_mae):
            if value <= best_powerrush:
                return iteration
        return None

    def equivalent_powerrush_iterations(self, at: int) -> int | None:
        """How many pure-solver iterations match fusion's accuracy at *at*.

        The paper's headline: IR-Fusion at 2 iterations matches PowerRush
        at 10.  Returns the smallest sweep budget whose PowerRush MAE is
        at or below fusion's MAE at budget *at* (``None`` if PowerRush
        never catches up within the sweep).
        """
        fusion_value = self.fusion_mae[self.iterations.index(at)]
        for iteration, value in zip(self.iterations, self.powerrush_mae):
            if value <= fusion_value:
                return iteration
        return None


def run_tradeoff_study(
    config: FusionConfig | None = None,
    iterations: list[int] | None = None,
) -> TradeoffResult:
    """IR-Fusion vs PowerRush across solver iteration budgets (Fig. 7).

    The fusion model is trained once on a mixed-budget training set (so it
    learns how far to trust the numerical channels at any solver effort);
    at evaluation time its features are rebuilt with each iteration cap,
    exactly as a deployed flow would trade solver effort for accuracy.
    """
    config = config or FusionConfig()
    iterations = iterations or list(range(1, 11))
    if config.solver_iteration_mix is None:
        # teach the model every budget regime it will be evaluated at
        config = config.with_(solver_iteration_mix=(1, 2, 4, 8))
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    _, test_designs = pipeline.generate_designs()

    result = TradeoffResult([], [], [], [], [])
    for budget in iterations:
        test_set = IRDropDataset.from_designs(
            test_designs,
            config.features,
            solver_iterations=budget,
            solver_preset=config.solver_preset,
        )
        rough = evaluate_rough_solutions(test_set)
        _, fused = evaluate_trainer(pipeline.trainer, test_set)
        result.iterations.append(budget)
        result.powerrush_mae.append(rough.mae)
        result.powerrush_f1.append(rough.f1)
        result.fusion_mae.append(fused.mae)
        result.fusion_f1.append(fused.f1)
    return result


# Fig. 8 variant definitions: label → config transformation.
def _without_numerical(config: FusionConfig) -> FusionConfig:
    return config.with_(features=replace(config.features, use_numerical=False))


def _without_hierarchical(config: FusionConfig) -> FusionConfig:
    return config.with_(features=replace(config.features, hierarchical=False))


def _without_inception(config: FusionConfig) -> FusionConfig:
    return config.with_(model_kwargs={**config.model_kwargs, "use_inception": False})


def _without_cbam(config: FusionConfig) -> FusionConfig:
    return config.with_(model_kwargs={**config.model_kwargs, "use_cbam": False})


def _without_augmentation(config: FusionConfig) -> FusionConfig:
    return config.with_(augment=False)


def _without_curriculum(config: FusionConfig) -> FusionConfig:
    return config.with_(train=replace(config.train, use_curriculum=False))


ABLATION_VARIANTS = {
    "w/o Num. Solu.": _without_numerical,
    "w/o Hier. Feat.": _without_hierarchical,
    "w/o Inception": _without_inception,
    "w/o CBAM": _without_cbam,
    "w/o Data Aug.": _without_augmentation,
    "w/o Curr. Lear.": _without_curriculum,
}


@dataclass
class AblationResult:
    """Fig. 8 data: full-model metrics plus per-variant metrics/deltas."""

    full: Metrics
    variants: dict[str, Metrics]

    def mae_increase_percent(self, variant: str) -> float:
        """Red bars of Fig. 8: MAE growth when the technique is removed."""
        if self.full.mae == 0:
            return float("nan")
        return 100.0 * (self.variants[variant].mae - self.full.mae) / self.full.mae

    def f1_decrease_percent(self, variant: str) -> float:
        """Blue bars of Fig. 8: F1 loss when the technique is removed."""
        if self.full.f1 == 0:
            return float("nan")
        return 100.0 * (self.full.f1 - self.variants[variant].f1) / self.full.f1


def _train_and_score(config: FusionConfig) -> Metrics:
    pipeline = IRFusionPipeline(config)
    pipeline.train()
    _, test_set = pipeline.build_datasets()
    _, averaged = evaluate_trainer(pipeline.trainer, test_set)
    return averaged


def run_ablation_study(
    config: FusionConfig | None = None,
    variants: list[str] | None = None,
) -> AblationResult:
    """Retrain IR-Fusion with each technique removed (Fig. 8)."""
    config = config or FusionConfig()
    base_train = replace(config.train, use_curriculum=True)
    config = config.with_(model_name="ir_fusion", train=base_train)
    names = variants or list(ABLATION_VARIANTS)
    full = _train_and_score(config)
    results: dict[str, Metrics] = {}
    for name in names:
        try:
            transform = ABLATION_VARIANTS[name]
        except KeyError:
            raise ValueError(
                f"unknown ablation {name!r}; choose from "
                f"{sorted(ABLATION_VARIANTS)}"
            ) from None
        results[name] = _train_and_score(transform(config))
    return AblationResult(full=full, variants=results)
