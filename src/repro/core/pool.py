"""Persistent, spawn-safe, supervised worker pool.

This is the execution substrate under :func:`repro.core.batch.parallel_map`
and :class:`~repro.core.batch.BatchAnalyzer`, built for long-lived
processes (servers, schedulers) where the old fork-per-call engine had to
degrade to serial:

- **spawn context** — workers are started with the ``spawn`` method, so
  the pool is safe off the main thread, under nested/threaded callers,
  and on platforms without ``fork``.  Job payloads (the callable and a
  chaos plan) are pickled once per worker per job; items once per job.
- **persistent** — workers are long-lived and lazily started; the module
  pool survives across ``map`` calls, amortising interpreter start-up,
  and shuts itself down after ``idle_timeout`` seconds without work.  A
  long-lived owner (the serving daemon) pins the runtime across request
  gaps with :meth:`WorkerPool.keep_alive`, so warm workers never respawn
  cold mid-service.
- **supervised** — the parent watches per-worker heartbeats, process
  liveness and per-task budgets.  A crashed worker is respawned and its
  in-flight item retried with exponential backoff plus deterministic
  jitter; a hung task is killed at its timeout; an item that keeps
  killing or hanging workers is *quarantined* with a structured
  :class:`QuarantineRecord` instead of poisoning the batch.
- **deadline-aware** — a whole-batch deadline caps every per-task budget,
  and the effective budget rides into the worker as a
  :func:`repro.obs.deadline_scope`, so the solver cascade inside can
  short-circuit stages it cannot finish in time.
- **observable** — workers ship span trees and counter deltas back with
  every result; the supervisor emits ``pool.workers_respawned``,
  ``task.retries``, ``task.timeouts`` and ``task.quarantined`` counters
  plus per-attempt ``task_attempt`` spans.

The parent **never deadlocks on a sick pool**: every worker has its own
pipe (a SIGKILL'd worker can only corrupt its own channel), the
supervisor is a daemon thread whose crash fails pending jobs with
:class:`PoolUnusableError` (callers fall back to serial), and every item
of every job resolves to a result, a captured error, or a quarantine
record.

Chaos testing: a :class:`repro.testing.faults.WorkerFaultPlan` handed to
``map(fault_plan=...)`` (or via the ``REPRO_CHAOS`` environment variable,
see :mod:`repro.core.batch`) deterministically kills, hangs, slows or
transiently fails chosen items inside the workers, so every supervision
path above is testable on schedule.

Span timestamps from workers are comparable with the parent's because
Linux shares one ``CLOCK_MONOTONIC`` epoch across processes (same
assumption the fork path made).

Payload transport: large ndarrays inside job payloads, items and
results travel through the shared-memory data plane
(:mod:`repro.core.shm`) instead of the pipe — the pipe carries a
~100-byte descriptor per array.  Parent-created segments are
ref-counted per job in the process-wide arena and released when the job
finishes (on every path: success, quarantine, deadline, supervisor
crash, shutdown); worker-created result segments are *adopted* by the
parent when the result is unpickled, and anything a SIGKILL'd worker
left behind is reclaimed by a job-scoped orphan sweep.  Disable with
``REPRO_SHM_THRESHOLD=off`` to fall back to inline pickling
byte-for-byte identically.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import traceback as _tb
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, Sequence

from repro.core import shm as _shm
from repro.obs import (
    counter_add,
    counters_delta,
    deadline_scope,
    merge_metrics,
    metrics_snapshot,
    monotonic,
    trace,
)

#: Environment marker set inside pool workers.  ``parallel_map`` checks
#: it so a nested call inside a worker runs serially instead of spawning
#: grandchild pools (workers are daemonic and cannot have children).
WORKER_ENV = "REPRO_POOL_WORKER"


class PoolUnusableError(RuntimeError):
    """The pool cannot run this job (unpicklable payload, dead runtime).

    Callers treat this as "use another execution path", never as a
    per-item failure: :func:`repro.core.batch.parallel_map` falls back to
    the fork engine or serial execution.
    """


class TransientTaskError(RuntimeError):
    """An error the pool retries (with backoff) instead of recording.

    Raise it — or a subclass — from task code for failures that are
    expected to succeed on a second attempt (lost locks, torn caches,
    injected flakiness).  Any other exception is captured as the item's
    final error without retry, matching the classic ``parallel_map``
    contract that deterministic failures are data, not crashes.
    """


@dataclass(frozen=True)
class PoolOptions:
    """Supervision knobs (per-``map`` values override these defaults).

    Attributes
    ----------
    task_timeout:
        Budget in seconds for one task *attempt*, measured from the
        worker's start acknowledgement (queueing and worker start-up time
        never count).  ``None`` = unlimited.
    retries:
        Extra attempts allowed per item after a crash, timeout or
        :class:`TransientTaskError` (so an item runs at most
        ``retries + 1`` times before quarantine).
    deadline:
        Whole-batch budget in seconds; unfinished items are quarantined
        when it expires.  ``None`` = unlimited.
    backoff_base, backoff_cap:
        Exponential retry backoff: attempt ``k`` waits
        ``min(cap, base * 2**(k-1))`` scaled by a deterministic jitter in
        ``[0.5, 1.5)`` (no RNG — jitter is hashed from item and attempt).
    heartbeat_interval, heartbeat_timeout:
        Workers send a heartbeat every *interval* seconds from a daemon
        thread; a worker silent for *timeout* seconds is presumed frozen,
        killed and respawned.
    idle_timeout:
        The supervisor stops every worker and exits after this many
        seconds without jobs; the next ``map`` restarts lazily.
    """

    task_timeout: float | None = None
    retries: int = 2
    deadline: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 30.0
    idle_timeout: float = 300.0


@dataclass(frozen=True)
class QuarantineRecord:
    """Why an item was removed from the batch instead of resolved.

    ``reason`` is machine-readable: ``"crash"`` (kept killing workers),
    ``"timeout"`` (kept exceeding the task budget), ``"transient"``
    (retryable errors past the retry budget) or ``"deadline"`` (the
    whole-batch deadline expired first).
    """

    index: int
    reason: str
    error: str | None
    traceback: str | None
    attempts: int
    elapsed_seconds: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "reason": self.reason,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class TaskOutcome:
    """Terminal state of one item: result, captured error, or quarantine."""

    index: int
    result: object | None = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1
    quarantine: QuarantineRecord | None = None
    injected_faults: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and self.quarantine is None

    @property
    def quarantined(self) -> bool:
        return self.quarantine is not None


@dataclass
class PoolMapResult:
    """Outcomes plus the telemetry the caller may graft into its trace."""

    outcomes: list[TaskOutcome]
    span_payloads: list[dict]
    attempt_spans: list[dict]


class PoolKeepAlive:
    """Ownership handle pinning a pool's runtime while held.

    While at least one handle is outstanding the supervisor never
    idle-retires its workers, so a long-lived owner (the serving daemon)
    keeps warm workers — and their per-process caches — across arbitrary
    request gaps instead of paying a cold respawn after ``idle_timeout``.
    Release with :meth:`release` or use the handle as a context manager;
    releasing twice is a no-op.  An explicit :meth:`WorkerPool.shutdown`
    still wins over any keep-alive.
    """

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._release_keepalive()

    def __enter__(self) -> "PoolKeepAlive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def _jitter(index: int, attempt: int) -> float:
    """Deterministic pseudo-jitter in ``[0, 1)`` (no RNG, no wall clock)."""
    return (zlib.crc32(f"{index}:{attempt}".encode()) % 1024) / 1024.0


def backoff_delay(
    attempt: int, index: int, base: float, cap: float
) -> float:
    """Jittered exponential backoff before retry *attempt* (1-based)."""
    raw = base * (2.0 ** max(attempt - 1, 0))
    return min(cap, raw) * (0.5 + _jitter(index, attempt))


# -- worker side ---------------------------------------------------------------


def _execute(fn: Callable, item, budget: float | None) -> tuple:
    """Run one item; returns ``(result, error, traceback, retryable)``."""
    try:
        if budget is not None:
            with deadline_scope(budget):
                return fn(item), None, None, False
        return fn(item), None, None, False
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        return (
            None,
            f"{type(exc).__name__}: {exc}",
            _tb.format_exc(),
            isinstance(exc, TransientTaskError),
        )


def _run_task(job, index: int, attempt: int, item_bytes: bytes, budget):
    """One task attempt inside the worker; everything becomes data."""
    payload = {
        "index": index,
        "attempt": attempt,
        "result": None,
        "error": None,
        "traceback": None,
        "retryable": False,
        "injected": None,
        "span_tree": None,
        "metrics": None,
    }
    if job is None:
        payload["error"] = "RuntimeError: worker has no payload for this job"
        payload["retryable"] = True
        return payload
    if isinstance(job, str):  # the job payload failed to unpickle
        payload["error"] = f"JobSetupError: {job}"
        return payload
    fn, fault_plan, traced = job
    before = metrics_snapshot()
    try:
        # Shm descriptors inside the item resolve to zero-copy views.
        item = _shm.loads(item_bytes)
        if fault_plan is not None:
            # May SIGKILL us, hang, sleep, or raise TransientTaskError.
            payload["injected"] = fault_plan.apply(index, attempt)
    except Exception as exc:  # noqa: BLE001 - injected/transport failures
        payload["error"] = f"{type(exc).__name__}: {exc}"
        payload["traceback"] = _tb.format_exc()
        payload["retryable"] = isinstance(exc, TransientTaskError)
    else:
        if traced:
            with trace("item", index=index, attempt=attempt) as tracer:
                result, error, tb, retryable = _execute(fn, item, budget)
            payload["span_tree"] = tracer.root.to_dict()
        else:
            result, error, tb, retryable = _execute(fn, item, budget)
        payload.update(
            result=result, error=error, traceback=tb, retryable=retryable
        )
    payload["metrics"] = counters_delta(before)
    return payload


def _dump_result(payload: dict, scope, threshold: int, task_id: int) -> bytes:
    """Serialize a task result, externalizing large arrays when enabled.

    Worker-created segments are named under the job scope
    (``<scope>_w<pid>t<task>k<n>``) so the parent can adopt them on
    unpickle — and sweep them as orphans if this process dies before
    the result lands.  On a serialization failure every segment this
    attempt created is unlinked here, then the classic
    unpicklable-result fallback reports the error inline.
    """
    created: list[str] = []

    def writer(array):
        name = f"{scope}_w{os.getpid():x}t{task_id:x}k{len(created):x}"
        descriptor = _shm.write_segment(name, array)
        created.append(name)
        return descriptor

    try:
        if scope is not None and threshold > 0:
            return _shm.dumps(payload, threshold=threshold, writer=writer)
        return pickle.dumps(payload)
    except Exception as exc:  # noqa: BLE001 - unpicklable result
        for name in created:
            try:
                os.unlink(os.path.join(_shm.SHM_DIR, name))
            except OSError:
                pass
        payload.update(
            result=None,
            span_tree=None,
            metrics=None,
            retryable=False,
            error=f"{type(exc).__name__}: result of item "
            f"{payload['index']} is not picklable ({exc})",
        )
        return pickle.dumps(payload)


def _worker_main(slot: int, conn, heartbeat_interval: float) -> None:
    """Worker loop: receive job payloads and tasks, send acks and results."""
    os.environ[WORKER_ENV] = "1"
    # Race sanitizer coverage extends into workers: spawn children do
    # not run the CLI entry point, so re-arm from the env var here.
    from repro.analysis.racecheck import install_from_env

    install_from_env()
    send_lock = threading.Lock()

    def send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, ValueError, EOFError, BrokenPipeError):
            return False

    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            if not send(("heartbeat", slot)):
                return

    threading.Thread(
        target=heartbeat, name=f"repro-pool-{slot}-heartbeat", daemon=True
    ).start()

    jobs: dict[int, tuple | str] = {}
    #: job id -> (shm scope or None, externalization threshold).
    transports: dict[int, tuple] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone
            kind = message[0]
            if kind == "exit":
                break
            if kind == "job":
                _, job_id, blob, scope, threshold = message
                transports[job_id] = (scope, threshold)
                try:
                    jobs[job_id] = _shm.loads(blob)
                except Exception as exc:  # noqa: BLE001 - reported per task
                    jobs[job_id] = f"{type(exc).__name__}: {exc}"
            elif kind == "forget":
                jobs.pop(message[1], None)
                transports.pop(message[1], None)
                # Job-end hygiene: drop cached segment mappings.  Views
                # still alive inside another job's payload keep their
                # mapping pinned (close defers to GC), so this is safe.
                _shm.detach_all()
            elif kind == "task":
                _, job_id, task_id, index, attempt, item_bytes, budget = message
                if not send(("start", slot, job_id, task_id)):
                    break
                payload = _run_task(
                    jobs.get(job_id), index, attempt, item_bytes, budget
                )
                scope, threshold = transports.get(job_id, (None, 0))
                blob = _dump_result(payload, scope, threshold, task_id)
                if not send(("result", slot, job_id, task_id, blob)):
                    break
    finally:
        stop.set()


# -- parent-side bookkeeping ---------------------------------------------------


class _Task:
    __slots__ = (
        "job",
        "task_id",
        "index",
        "attempt",
        "budget",
        "dispatched_at",
        "acked_at",
        "worker_slot",
    )

    def __init__(self, job: "_Job", task_id: int, index: int, attempt: int):
        self.job = job
        self.task_id = task_id
        self.index = index
        self.attempt = attempt
        self.budget: float | None = None
        self.dispatched_at: float | None = None
        self.acked_at: float | None = None
        self.worker_slot: int | None = None


class _Job:
    """One ``map`` call: items, retry state and terminal outcomes."""

    def __init__(
        self,
        job_id: int,
        payload: bytes,
        items: list[bytes],
        timeout: float | None,
        retries: int,
        deadline: float | None,
        backoff_base: float,
        backoff_cap: float,
    ) -> None:
        self.id = job_id
        self.payload = payload
        self.items = items
        #: Shm transport (set by ``map``): job scope string (or None for
        #: inline transport) and the externalization threshold workers
        #: apply to results.
        self.scope: str | None = None
        self.threshold: int = 0
        self.timeout = timeout
        self.retries = retries
        self.deadline_at = None if deadline is None else monotonic() + deadline
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.outcomes: list[TaskOutcome | None] = [None] * len(items)
        self.remaining = len(items)
        self.pending: deque[_Task] = deque(
            _Task(self, task_id, index, attempt=1)
            for task_id, index in enumerate(range(len(items)))
        )
        self.waiting: list[tuple[float, _Task]] = []  # (due, task) retries
        self.active: dict[int, _Task] = {}
        self.first_dispatch: dict[int, float] = {}
        self.injected: dict[int, list[str]] = {}
        self.task_counter = len(items)
        self.span_payloads: list[dict] = []
        self.attempt_spans: list[dict] = []
        self.done = threading.Event()
        self.fatal: str | None = None

    def next_task_id(self) -> int:
        self.task_counter += 1
        return self.task_counter

    def record_attempt_span(
        self, task: _Task, end: float, outcome: str
    ) -> None:
        start = task.acked_at or task.dispatched_at or end
        self.attempt_spans.append(
            {
                "name": "task_attempt",
                "start": float(start),
                "duration": float(max(end - start, 0.0)),
                "attrs": {
                    "index": task.index,
                    "attempt": task.attempt,
                    "outcome": outcome,
                },
                "children": [],
            }
        )

    def resolve(self, index: int, outcome: TaskOutcome) -> None:
        if self.outcomes[index] is None:
            outcome.injected_faults = self.injected.get(index, [])
            self.outcomes[index] = outcome
            self.remaining -= 1

    def elapsed(self, index: int, now: float) -> float:
        return now - self.first_dispatch.get(index, now)

    def quarantine(
        self,
        task: _Task,
        reason: str,
        error: str | None,
        traceback: str | None,
        now: float,
    ) -> None:
        counter_add("task.quarantined")
        record = QuarantineRecord(
            index=task.index,
            reason=reason,
            error=error,
            traceback=traceback,
            attempts=task.attempt,
            elapsed_seconds=self.elapsed(task.index, now),
        )
        self.resolve(
            task.index,
            TaskOutcome(
                index=task.index,
                error=error,
                traceback=traceback,
                attempts=task.attempt,
                quarantine=record,
            ),
        )

    def retry_or_quarantine(
        self,
        task: _Task,
        reason: str,
        error: str,
        traceback: str | None,
        now: float,
    ) -> None:
        """Schedule a backoff retry, or quarantine past the budget."""
        if task.attempt <= self.retries:
            counter_add("task.retries")
            retry = _Task(
                self, self.next_task_id(), task.index, task.attempt + 1
            )
            due = now + backoff_delay(
                task.attempt, task.index, self.backoff_base, self.backoff_cap
            )
            self.waiting.append((due, retry))
        else:
            self.quarantine(task, reason, error, traceback, now)


class _WorkerHandle:
    __slots__ = ("slot", "process", "conn", "jobs_sent", "task", "last_seen")

    def __init__(self, slot: int, process, conn, now: float) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.jobs_sent: set[int] = set()
        self.task: _Task | None = None
        self.last_seen = now


class WorkerPool:
    """Supervised spawn pool; see the module docstring for semantics."""

    def __init__(
        self,
        max_workers: int = 1,
        options: PoolOptions | None = None,
    ) -> None:
        self.options = options or PoolOptions()
        self._context = get_context("spawn")
        self._lock = threading.Lock()
        self._intake: deque[_Job] = deque()
        self._target = max(1, int(max_workers))
        self._running = False
        self._shutdown = False
        self._supervisor: threading.Thread | None = None
        self._workers: list[_WorkerHandle] = []
        self._wake_r: int | None = None
        self._wake_w: int | None = None
        self._job_counter = 0
        self._slot_counter = 0
        self._keepalive = 0

    # -- public API ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._shutdown

    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        jobs: int | None = None,
        timeout: float | None = None,
        retries: int | None = None,
        deadline: float | None = None,
        fault_plan=None,
        traced: bool = False,
        shm_threshold: int | None = None,
    ) -> PoolMapResult:
        """Run *fn* over *items* on the pool; every item terminates.

        Raises :class:`PoolUnusableError` when the job cannot run on the
        pool at all (unpicklable payload, pool shut down, supervisor
        dead) — per-item failures never raise.

        *shm_threshold* overrides the ambient shared-memory
        externalization threshold for this job's payload transport
        (``None`` = :func:`repro.core.shm.shm_threshold` default).
        """
        items = list(items)
        opts = self.options
        timeout = opts.task_timeout if timeout is None else float(timeout)
        retries = opts.retries if retries is None else max(0, int(retries))
        deadline = opts.deadline if deadline is None else float(deadline)
        with self._lock:
            if self._shutdown:
                raise PoolUnusableError("pool is shut down")
            self._job_counter += 1
            job_id = self._job_counter
        threshold = _shm.shm_threshold(shm_threshold)
        use_shm = threshold > 0 and _shm.available()
        scope = _shm.ARENA.scope(f"j{job_id:x}") if use_shm else None
        writer = (
            (lambda array: _shm.ARENA.share(array, scope)) if use_shm else None
        )
        # The scope is owned here until the job is handed to the
        # supervisor (which releases it at job completion); every other
        # exit — unpicklable payload, empty items, shutdown race, or an
        # unexpected exception anywhere in between — must release it.
        handed_off = False
        try:
            try:
                payload = _shm.dumps(
                    (fn, fault_plan, traced), threshold=threshold, writer=writer
                )
                item_blobs = [
                    _shm.dumps(item, threshold=threshold, writer=writer)
                    for item in items
                ]
            except Exception as exc:  # noqa: BLE001 - anything unpicklable
                raise PoolUnusableError(
                    f"job payload is not picklable: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            counter_add(
                "transport.pickled_bytes",
                len(payload) + sum(len(blob) for blob in item_blobs),
            )
            if not items:
                return PoolMapResult([], [], [])
            with self._lock:
                if self._shutdown:
                    raise PoolUnusableError("pool is shut down")
                job = _Job(
                    job_id,
                    payload,
                    item_blobs,
                    timeout,
                    retries,
                    deadline,
                    opts.backoff_base,
                    opts.backoff_cap,
                )
                job.scope = scope
                job.threshold = threshold if use_shm else 0
                if jobs is not None:
                    self._target = max(
                        self._target, max(1, min(int(jobs), len(items)))
                    )
                self._ensure_running_locked()
                self._intake.append(job)
                handed_off = True
        finally:
            if scope is not None and not handed_off:
                _shm.ARENA.release_scope(scope)
        self._wake()
        while not job.done.wait(0.2):
            supervisor = self._supervisor
            if supervisor is None or not supervisor.is_alive():
                raise PoolUnusableError("pool supervisor died")
        if job.fatal is not None:
            raise PoolUnusableError(job.fatal)
        return PoolMapResult(
            list(job.outcomes), job.span_payloads, job.attempt_spans
        )

    def keep_alive(self) -> PoolKeepAlive:
        """Pin the pool's runtime: no idle retirement while held.

        Returns a :class:`PoolKeepAlive` handle (also a context manager).
        Stacks: the supervisor idles out only once every outstanding
        handle is released *and* ``idle_timeout`` then elapses without
        work.  Raises :class:`PoolUnusableError` on a shut-down pool.
        """
        with self._lock:
            if self._shutdown:
                raise PoolUnusableError("pool is shut down")
            self._keepalive += 1
        return PoolKeepAlive(self)

    def _release_keepalive(self) -> None:
        with self._lock:
            self._keepalive = max(0, self._keepalive - 1)

    def shutdown(self) -> None:
        """Stop the supervisor and every worker (idempotent).

        Overrides any outstanding :meth:`keep_alive` handle — explicit
        shutdown always wins.
        """
        with self._lock:
            self._shutdown = True
            running = self._running
            supervisor = self._supervisor
        if running:
            self._wake()
        if supervisor is not None:
            supervisor.join(timeout=10.0)

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of live workers (observability / tests)."""
        return [
            w.process.pid
            for w in self._workers
            if w.process.is_alive() and w.process.pid is not None
        ]

    # -- lifecycle -------------------------------------------------------------

    def _ensure_running_locked(self) -> None:
        if self._running:
            return
        self._wake_r, self._wake_w = os.pipe()
        self._running = True
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _wake(self) -> None:
        wake_w = self._wake_w
        if wake_w is not None:
            try:
                os.write(wake_w, b"x")
            except OSError:
                pass

    def _spawn_worker(self, now: float) -> _WorkerHandle:
        self._slot_counter += 1
        slot = self._slot_counter
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(slot, child_conn, self.options.heartbeat_interval),
            name=f"repro-pool-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(slot, process, parent_conn, now)

    def _discard_worker(self, worker: _WorkerHandle, kill: bool) -> None:
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _stop_workers(self, workers: list[_WorkerHandle]) -> None:
        for worker in workers:
            try:
                worker.conn.send(("exit",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            self._discard_worker(worker, kill=True)

    def _retire_locked(self) -> tuple[tuple, list[_WorkerHandle]]:
        """Atomically claim this supervisor's runtime for teardown.

        Must run under ``self._lock``.  Marks the pool not-running and
        *moves* the wake pipe and worker list into the caller: a
        ``map`` arriving after this point starts a fresh supervisor with
        fresh resources, and the retiring thread can only ever tear down
        what it claimed here.  (The old code reset ``_running`` and
        closed ``self._wake_*`` unconditionally in the supervisor's
        ``finally`` — a successor supervisor started in the gap had its
        wake pipe closed and its workers stopped out from under it,
        stranding freshly queued work.)
        """
        self._running = False
        wake = (self._wake_r, self._wake_w)
        self._wake_r = self._wake_w = None
        workers = self._workers
        self._workers = []
        return wake, workers

    # -- supervision -----------------------------------------------------------

    def _supervise(self) -> None:
        jobs: list[_Job] = []
        opts = self.options
        last_activity = monotonic()
        retired: tuple[tuple, list[_WorkerHandle]] | None = None
        try:
            while True:
                with self._lock:
                    while self._intake:
                        jobs.append(self._intake.popleft())
                    shutdown = self._shutdown
                    target = self._target
                    keepalive = self._keepalive
                if shutdown:
                    for job in jobs:
                        job.fatal = "pool shut down"
                        self._release_transport(job)
                        job.done.set()
                    break
                now = monotonic()
                if jobs or keepalive:
                    # Outstanding keep-alive handles count as activity:
                    # the idle countdown starts only once the last owner
                    # releases (see :meth:`keep_alive`).
                    last_activity = now
                self._reap_and_respawn(jobs, target if jobs else 0, now)
                self._check_deadlines(jobs, now)
                self._check_timeouts(jobs, now)
                self._check_heartbeats(jobs, now)
                self._promote_retries(jobs, now)
                self._dispatch(jobs, now)
                finished = [job for job in jobs if job.remaining == 0]
                for job in finished:
                    self._finish(job)
                jobs = [job for job in jobs if job.remaining > 0]
                if not jobs and monotonic() - last_activity > opts.idle_timeout:
                    with self._lock:
                        if (
                            not self._intake
                            and not self._shutdown
                            and self._keepalive == 0
                        ):
                            retired = self._retire_locked()
                            break
                self._poll(jobs, now)
        except Exception:  # noqa: BLE001 - a sick supervisor must not hang callers
            error = _tb.format_exc()
            with self._lock:
                pending = list(self._intake)
                self._intake.clear()
                retired = self._retire_locked()
            for job in jobs + pending:
                job.fatal = f"pool supervisor crashed:\n{error}"
                self._release_transport(job)
                job.done.set()
        finally:
            if retired is None:
                # Shutdown path (or an exit without an explicit retire):
                # claim whatever still belongs to this supervisor run,
                # unless a successor already took over the runtime.
                with self._lock:
                    if self._supervisor is threading.current_thread():
                        retired = self._retire_locked()
            if retired is not None:
                wake, workers = retired
                self._stop_workers(workers)
                for fd in wake:
                    if fd is not None:
                        try:
                            os.close(fd)
                        except OSError:
                            pass

    def _poll(self, jobs: list[_Job], now: float) -> None:
        """Wait for worker messages / wake-ups, bounded by the next event."""
        timeout = 0.25 if jobs else 0.5
        for job in jobs:
            if job.deadline_at is not None:
                timeout = min(timeout, job.deadline_at - now)
            for due, _ in job.waiting:
                timeout = min(timeout, due - now)
            for task in job.active.values():
                if task.budget is not None and task.acked_at is not None:
                    timeout = min(
                        timeout, task.acked_at + task.budget - now
                    )
        timeout = max(0.01, timeout)
        sources: list = [
            w.conn for w in self._workers if w.process.is_alive()
        ]
        if self._wake_r is not None:
            sources.append(self._wake_r)
        if not sources:
            return
        for ready in connection.wait(sources, timeout):
            if ready == self._wake_r:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
                continue
            worker = next(
                (w for w in self._workers if w.conn is ready), None
            )
            if worker is not None:
                self._drain(worker, jobs)

    def _drain(self, worker: _WorkerHandle, jobs: list[_Job]) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                # Channel torn — the reaper will confirm death and retry
                # the in-flight item; nothing more to read here.
                return
            worker.last_seen = monotonic()
            kind = message[0]
            if kind == "heartbeat":
                continue
            if kind == "start":
                _, _, job_id, task_id = message
                job = next((j for j in jobs if j.id == job_id), None)
                task = job.active.get(task_id) if job is not None else None
                if task is not None:
                    task.acked_at = monotonic()
            elif kind == "result":
                _, _, job_id, task_id, blob = message
                worker.task = None
                job = next((j for j in jobs if j.id == job_id), None)
                if job is None:
                    continue  # late result for a finished/cancelled job
                task = job.active.pop(task_id, None)
                if task is None:
                    continue
                self._on_result(job, task, blob)

    def _on_result(self, job: _Job, task: _Task, blob: bytes) -> None:
        now = monotonic()
        counter_add("transport.pickled_bytes", len(blob))
        scope = job.scope

        def adopt(descriptor) -> None:
            # Worker-created result segment: the parent takes ownership
            # under the job scope so crash/quarantine cleanup is central.
            _shm.ARENA.adopt(descriptor, scope)
            counter_add("shm.bytes_adopted", descriptor.nbytes)

        try:
            payload = _shm.loads(
                blob, on_descriptor=adopt if scope is not None else None
            )
        except Exception as exc:  # noqa: BLE001 - corrupt payload
            payload = {
                "error": f"PayloadError: {type(exc).__name__}: {exc}",
                "traceback": None,
                "retryable": True,
            }
        metrics = payload.get("metrics")
        if metrics:
            merge_metrics(metrics)
        span_tree = payload.get("span_tree")
        if span_tree is not None:
            job.span_payloads.append(span_tree)
        injected = payload.get("injected")
        if injected:
            job.injected.setdefault(task.index, []).append(injected)
        error = payload.get("error")
        if error is None:
            job.record_attempt_span(task, now, "ok")
            job.resolve(
                task.index,
                TaskOutcome(
                    index=task.index,
                    result=payload.get("result"),
                    attempts=task.attempt,
                ),
            )
        elif payload.get("retryable"):
            job.record_attempt_span(task, now, "transient_error")
            job.retry_or_quarantine(
                task, "transient", error, payload.get("traceback"), now
            )
        else:
            job.record_attempt_span(task, now, "error")
            job.resolve(
                task.index,
                TaskOutcome(
                    index=task.index,
                    error=error,
                    traceback=payload.get("traceback"),
                    attempts=task.attempt,
                ),
            )

    def _on_worker_death(
        self, worker: _WorkerHandle, jobs: list[_Job], reason: str
    ) -> None:
        task = worker.task
        worker.task = None
        if task is None:
            return
        job = task.job
        if job.remaining == 0 or job not in jobs:
            return
        job.active.pop(task.task_id, None)
        now = monotonic()
        job.record_attempt_span(task, now, reason)
        if reason == "timeout":
            error = (
                f"TimeoutError: item {task.index} exceeded the task "
                f"timeout of {task.budget:.3g}s (attempt {task.attempt})"
            )
        else:
            error = (
                f"WorkerCrashError: worker died while running item "
                f"{task.index} (attempt {task.attempt})"
            )
        job.retry_or_quarantine(task, reason, error, None, now)

    def _reap_and_respawn(
        self, jobs: list[_Job], target: int, now: float
    ) -> None:
        alive: list[_WorkerHandle] = []
        respawns = 0
        for worker in self._workers:
            if worker.process.is_alive():
                alive.append(worker)
                continue
            self._drain(worker, jobs)  # salvage results sent before death
            if worker.process.is_alive():  # raced: it spoke, keep it
                alive.append(worker)
                continue
            self._on_worker_death(worker, jobs, "crash")
            self._discard_worker(worker, kill=False)
            respawns += 1
        self._workers = alive
        if respawns:
            counter_add("pool.workers_respawned", respawns)
        while len(self._workers) < target:
            self._workers.append(self._spawn_worker(now))

    def _kill_worker_of(self, task: _Task, jobs: list[_Job]) -> None:
        worker = next(
            (w for w in self._workers if w.slot == task.worker_slot), None
        )
        if worker is not None:
            worker.task = None
            self._discard_worker(worker, kill=True)
            self._workers.remove(worker)
            counter_add("pool.workers_respawned")
            self._workers.append(self._spawn_worker(monotonic()))

    def _check_timeouts(self, jobs: list[_Job], now: float) -> None:
        for job in jobs:
            for task in list(job.active.values()):
                if task.budget is None or task.acked_at is None:
                    continue
                if now - task.acked_at <= task.budget:
                    continue
                counter_add("task.timeouts")
                job.active.pop(task.task_id, None)
                # The worker is wedged inside the task: kill + respawn.
                self._kill_worker_of(task, jobs)
                job.record_attempt_span(task, now, "timeout")
                error = (
                    f"TimeoutError: item {task.index} exceeded the task "
                    f"timeout of {task.budget:.3g}s (attempt {task.attempt})"
                )
                job.retry_or_quarantine(task, "timeout", error, None, now)

    def _check_heartbeats(self, jobs: list[_Job], now: float) -> None:
        limit = self.options.heartbeat_timeout
        for worker in list(self._workers):
            if not worker.process.is_alive():
                continue
            if now - worker.last_seen <= limit:
                continue
            # Alive but silent past the heartbeat budget: presumed frozen.
            self._discard_worker(worker, kill=True)
            self._workers.remove(worker)
            counter_add("pool.workers_respawned")
            self._on_worker_death(worker, jobs, "crash")
            self._workers.append(self._spawn_worker(now))

    def _check_deadlines(self, jobs: list[_Job], now: float) -> None:
        for job in jobs:
            if job.deadline_at is None or now <= job.deadline_at:
                continue
            message = (
                "DeadlineExceededError: batch deadline expired "
                f"{now - job.deadline_at:.3g}s ago"
            )
            for task in list(job.active.values()):
                job.active.pop(task.task_id, None)
                self._kill_worker_of(task, jobs)
                job.record_attempt_span(task, now, "deadline")
                job.quarantine(
                    task,
                    "deadline",
                    f"{message} while item {task.index} was running",
                    None,
                    now,
                )
            for _, task in job.waiting:
                job.quarantine(
                    task,
                    "deadline",
                    f"{message} before item {task.index} could retry",
                    None,
                    now,
                )
            job.waiting = []
            while job.pending:
                task = job.pending.popleft()
                job.quarantine(
                    task,
                    "deadline",
                    f"{message} before item {task.index} started",
                    None,
                    now,
                )

    def _promote_retries(self, jobs: list[_Job], now: float) -> None:
        for job in jobs:
            due_now = [t for due, t in job.waiting if due <= now]
            job.waiting = [(due, t) for due, t in job.waiting if due > now]
            job.pending.extend(due_now)

    def _dispatch(self, jobs: list[_Job], now: float) -> None:
        idle = [
            w
            for w in self._workers
            if w.task is None and w.process.is_alive()
        ]
        for job in jobs:
            while idle and job.pending:
                worker = idle.pop()
                task = job.pending.popleft()
                budget = job.timeout
                if job.deadline_at is not None:
                    remaining = max(job.deadline_at - now, 0.01)
                    budget = (
                        remaining
                        if budget is None
                        else min(budget, remaining)
                    )
                task.budget = budget
                task.dispatched_at = now
                task.worker_slot = worker.slot
                try:
                    if job.id not in worker.jobs_sent:
                        worker.conn.send(
                            ("job", job.id, job.payload, job.scope,
                             job.threshold)
                        )
                        worker.jobs_sent.add(job.id)
                    worker.conn.send(
                        (
                            "task",
                            job.id,
                            task.task_id,
                            task.index,
                            task.attempt,
                            job.items[task.index],
                            budget,
                        )
                    )
                except (OSError, ValueError, BrokenPipeError):
                    # Send failed ⇒ the worker is dead; the attempt never
                    # started, so requeue without burning a retry.
                    job.pending.appendleft(task)
                    continue
                worker.task = task
                job.active[task.task_id] = task
                job.first_dispatch.setdefault(task.index, now)

    def _finish(self, job: _Job) -> None:
        for worker in self._workers:
            if job.id in worker.jobs_sent:
                try:
                    worker.conn.send(("forget", job.id))
                except (OSError, ValueError, BrokenPipeError):
                    pass
                worker.jobs_sent.discard(job.id)
        self._release_transport(job)
        job.done.set()

    def _release_transport(self, job: _Job) -> None:
        """Reclaim every shm segment tied to *job* (idempotent).

        Releases the parent's per-job refs (items, payload, adopted
        results — unlink-early is safe, live result views pin their
        pages), then sweeps segments a SIGKILL'd worker created under
        the job scope but never handed over.  By the time a job
        finishes every worker that ran its tasks is either idle or
        joined, so nothing can recreate scope-named segments after the
        sweep.
        """
        scope = job.scope
        if scope is None:
            return
        job.scope = None
        _shm.ARENA.release_scope(scope)
        _shm.ARENA.sweep_orphans(scope)


# -- module-level pool ---------------------------------------------------------

_GLOBAL: WorkerPool | None = None
_GLOBAL_LOCK = threading.Lock()


def get_pool(max_workers: int | None = None) -> WorkerPool:
    """The shared lazy pool (created on first use, replaced if shut down)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None or _GLOBAL.closed:
            _GLOBAL = WorkerPool(max_workers or 1)
        return _GLOBAL


def shutdown_pool() -> None:
    """Stop the shared pool's workers (no-op when never started)."""
    with _GLOBAL_LOCK:
        pool = _GLOBAL
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_pool)
