"""Top-level configuration, pipeline, and experiment runners."""

from repro.core.config import FusionConfig
from repro.core.experiment import (
    AblationResult,
    run_ablation_study,
    run_main_results,
    run_tradeoff_study,
)
from repro.core.pipeline import AnalysisResult, IRFusionPipeline

__all__ = [
    "AblationResult",
    "AnalysisResult",
    "FusionConfig",
    "IRFusionPipeline",
    "run_ablation_study",
    "run_main_results",
    "run_tradeoff_study",
]
