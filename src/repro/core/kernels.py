"""Tiered numerical kernel backend: frozen numpy + optional numba.

The two numeric hot loops of the whole flow — the conv GEMMs behind
:mod:`repro.nn.functional` and the CSR matvec inside the PCG iteration —
are routed through this module so a faster native backend can be swapped
in without touching any call site.

Two tiers:

``numpy`` (default, frozen)
    Delegates straight to ``np.matmul`` / scipy's CSR ``@``.  This tier
    is the *bitwise contract*: every golden-value and determinism test in
    the repository pins its outputs, so it must never change behaviour.

``numba`` (optional, opt-in)
    Blocked/threaded kernels JIT-compiled at first use.  The GEMM tier
    engages only for float32 operands (the mixed-precision compute path);
    fp64 GEMMs always fall through to numpy so the frozen fp64 kernel
    branches stay bitwise stable even under ``REPRO_BACKEND=numba``.  The
    CSR matvec tier runs in any dtype — solver results then agree with
    the numpy backend to rounding (reordered reductions), which is what
    the ``backend-equivalence`` CI job checks.

Selection, in priority order:

1. :func:`set_backend` / :func:`use_backend` (programmatic, e.g. from
   ``FusionConfig.backend`` or the CLI ``--backend`` flag);
2. the ``REPRO_BACKEND`` environment variable;
3. the ``numpy`` default.

Requesting ``numba`` when the extra is not installed raises immediately
(install with ``pip install repro[perf]``) — a benchmark silently running
the fallback would report fiction.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp

from repro.obs import counter_add

#: Environment variable consulted when no backend was set programmatically.
BACKEND_ENV = "REPRO_BACKEND"

BACKENDS = ("numpy", "numba")

_LOCK = threading.Lock()
_BACKEND: str | None = None  # None = not yet resolved (env or default)
_NUMBA_KERNELS: dict | None = None  # compiled lazily, once


class BackendUnavailableError(RuntimeError):
    """Requested kernel backend cannot be used in this environment."""


def numba_available() -> bool:
    """True when the optional numba extra is importable."""
    try:
        import numba  # noqa: F401
    except Exception:  # pragma: no cover - import machinery varies
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """Backends usable right now (``numpy`` always; ``numba`` if installed)."""
    if numba_available():
        return BACKENDS
    return ("numpy",)


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}"
        )
    if name == "numba" and not numba_available():
        raise BackendUnavailableError(
            "backend 'numba' requested but numba is not installed; "
            "install the [perf] extra or use REPRO_BACKEND=numpy"
        )
    return name


def backend_name() -> str:
    """The active backend, resolving ``REPRO_BACKEND`` on first use."""
    global _BACKEND
    backend = _BACKEND
    if backend is None:
        with _LOCK:
            if _BACKEND is None:
                _BACKEND = _validate(os.environ.get(BACKEND_ENV, "numpy"))
            backend = _BACKEND
    return backend


def set_backend(name: str | None) -> None:
    """Select the kernel backend process-wide.

    ``None`` resets to the environment/default resolution.  Selecting
    ``"numba"`` raises :class:`BackendUnavailableError` when the extra is
    missing rather than silently falling back.
    """
    global _BACKEND
    with _LOCK:
        _BACKEND = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str):
    """Context manager scoping a backend selection (tests, benchmarks)."""
    global _BACKEND
    with _LOCK:
        previous = _BACKEND
        _BACKEND = _validate(name)
    try:
        yield
    finally:
        with _LOCK:
            _BACKEND = previous


# ---------------------------------------------------------------------------
# numba tier (compiled on first use; this module imports without numba)
# ---------------------------------------------------------------------------


def _numba_kernels() -> dict:
    """Compile (once) and return the jitted kernels."""
    global _NUMBA_KERNELS
    kernels = _NUMBA_KERNELS
    if kernels is not None:
        return kernels
    with _LOCK:
        if _NUMBA_KERNELS is not None:
            return _NUMBA_KERNELS
        import numba

        @numba.njit(parallel=True, fastmath=True, nogil=True)
        def gemm2d(a, b, out):  # pragma: no cover - requires numba
            # Blocked over rows of A; each prange block streams B once.
            m, k = a.shape
            n = b.shape[1]
            block = 64
            blocks = (m + block - 1) // block
            for bi in numba.prange(blocks):
                lo = bi * block
                hi = min(lo + block, m)
                for i in range(lo, hi):
                    for j in range(n):
                        out[i, j] = 0.0
                    for p in range(k):
                        aip = a[i, p]
                        if aip != 0.0:
                            for j in range(n):
                                out[i, j] += aip * b[p, j]

            return out

        @numba.njit(parallel=True, fastmath=True, nogil=True)
        def gemm3d(a, b, out):  # pragma: no cover - requires numba
            # Batched GEMM: parallelise over the batch dimension.
            batch, m, k = a.shape
            n = b.shape[2]
            for nb in numba.prange(batch):
                for i in range(m):
                    for j in range(n):
                        out[nb, i, j] = 0.0
                    for p in range(k):
                        aip = a[nb, i, p]
                        if aip != 0.0:
                            for j in range(n):
                                out[nb, i, j] += aip * b[nb, p, j]
            return out

        @numba.njit(parallel=True, nogil=True)
        def spmv(indptr, indices, data, x, out):  # pragma: no cover
            n = indptr.shape[0] - 1
            for i in numba.prange(n):
                acc = 0.0
                for p in range(indptr[i], indptr[i + 1]):
                    acc += data[p] * x[indices[p]]
                out[i] = acc
            return out

        _NUMBA_KERNELS = {"gemm2d": gemm2d, "gemm3d": gemm3d, "spmv": spmv}
    return _NUMBA_KERNELS


def _numba_matmul_applies(a: np.ndarray, b: np.ndarray) -> bool:
    """The numba GEMM tier only takes over fp32 2-D/3-D products.

    fp64 products stay on numpy so the frozen fp64 kernel branches remain
    bitwise stable regardless of the selected backend.
    """
    return (
        a.dtype == np.float32
        and b.dtype == np.float32
        and a.ndim in (2, 3)
        and b.ndim == a.ndim
    )


# ---------------------------------------------------------------------------
# public kernels
# ---------------------------------------------------------------------------


def matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Backend-dispatched matrix product (``np.matmul`` semantics).

    The numpy tier *is* ``np.matmul`` — bitwise identical to calling it
    directly.  The numba tier engages only for float32 2-D/3-D operands
    (see :func:`_numba_matmul_applies`); anything else falls through.
    """
    if backend_name() == "numba" and _numba_matmul_applies(a, b):
        kernels = _numba_kernels()
        a_c = np.ascontiguousarray(a)
        b_c = np.ascontiguousarray(b)
        if a.ndim == 2:
            shape = (a.shape[0], b.shape[1])
            result = out if out is not None else np.empty(shape, dtype=a.dtype)
            kernels["gemm2d"](a_c, b_c, result)
        else:
            if a_c.shape[0] != b_c.shape[0]:
                # Broadcasting batches is numpy territory.
                return np.matmul(a, b, out=out) if out is not None else np.matmul(a, b)
            shape = (a.shape[0], a.shape[1], b.shape[2])
            result = out if out is not None else np.empty(shape, dtype=a.dtype)
            kernels["gemm3d"](a_c, b_c, result)
        counter_add("kernels.numba_gemm")
        return result
    if out is not None:
        return np.matmul(a, b, out=out)
    return np.matmul(a, b)


def csr_matvec(
    matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Backend-dispatched CSR sparse matrix–vector product.

    The numpy tier delegates to scipy's ``matrix @ x`` (bitwise frozen);
    the numba tier runs a row-parallel accumulation, identical up to
    floating-point reassociation.
    """
    if backend_name() == "numba" and isinstance(matrix, sp.csr_matrix):
        kernels = _numba_kernels()
        x_c = np.ascontiguousarray(x, dtype=np.float64)
        result = (
            out
            if out is not None
            else np.empty(matrix.shape[0], dtype=np.float64)
        )
        kernels["spmv"](matrix.indptr, matrix.indices, matrix.data, x_c, result)
        counter_add("kernels.numba_spmv")
        return result
    product = matrix @ x
    if out is not None:
        out[...] = product
        return out
    return product
