"""Parallel batch-analysis engine.

Fans independent per-design work (end-to-end analysis, training-set
feature extraction) across ``multiprocessing`` workers:

- **fork-safe**: workers are forked from the parent, so the trained model,
  the designs and the warm AMG setup cache are inherited copy-on-write —
  nothing is re-pickled per task except a tiny item index;
- **seed-deterministic**: the analysis path draws no runtime randomness
  and results are keyed back to their submission index, so the output
  list is identical to a serial run regardless of completion order;
- **diagnostics-preserving**: every :class:`AnalysisResult` (including
  its :class:`~repro.diagnostics.RunDiagnostics`) crosses the process
  boundary intact;
- **gracefully degrading**: per-item exceptions are captured as strings,
  and if the pool itself breaks (a worker is killed) the unfinished items
  are recomputed serially in the parent instead of failing the batch.

Platforms without the ``fork`` start method fall back to serial
execution outright — the engine never requires pickling closures.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs import (
    counter_add,
    counters_delta,
    current_tracer,
    merge_metrics,
    metrics_snapshot,
    span,
    trace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import AnalysisResult, IRFusionPipeline
    from repro.data.synthetic import Design


#: (fn, items, traced) inherited by forked workers; never pickled.
_WORKER_STATE: tuple[Callable, Sequence, bool] | None = None

#: Serialises use of :data:`_WORKER_STATE`.  Without it, overlapping
#: ``parallel_map`` calls would clobber the shared state and fork
#: workers running the *wrong* ``fn``.  Held for the whole parallel
#: section; a contender that cannot take it degrades to serial
#: execution instead of racing.  Forked workers inherit a *held* copy
#: of the lock, so a nested ``parallel_map`` inside a worker lands on
#: the serial path (threaded callers are already diverted to serial
#: before the lock — forking off the main thread is unsafe).
_WORKER_LOCK = threading.Lock()


def _worker_apply(index: int):
    """Run one item in a worker; exceptions become data, not crashes.

    Returns ``(index, result, error, span_tree, metrics)``.  The last
    two are ``None`` unless the parent had an active trace at fork time,
    in which case the item runs under its own tracer and ships the
    serialized span tree plus the counter movement it caused, so the
    parent can graft both into its run telemetry.
    """
    fn, items, traced = _WORKER_STATE
    if not traced:
        try:
            return index, fn(items[index]), None, None, None
        except Exception as exc:  # noqa: BLE001 - captured per item by design
            return index, None, f"{type(exc).__name__}: {exc}", None, None
    before = metrics_snapshot()
    result = error = None
    with trace("item", index=index) as tracer:
        try:
            result = fn(items[index])
        except Exception as exc:  # noqa: BLE001 - captured per item by design
            error = f"{type(exc).__name__}: {exc}"
    return index, result, error, tracer.root.to_dict(), counters_delta(before)


def _apply_serial(fn: Callable, item) -> tuple[object | None, str | None]:
    try:
        return fn(item), None
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        return None, f"{type(exc).__name__}: {exc}"


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: int,
) -> tuple[list[tuple[object | None, str | None]], bool]:
    """Order-preserving map of *fn* over *items* across *jobs* processes.

    Returns ``(outcomes, degraded)`` where ``outcomes[k]`` is
    ``(result, None)`` on success or ``(None, "ErrType: message")`` on a
    per-item failure, and *degraded* is True when any part of the batch
    had to fall back to serial execution (no fork support, a broken
    worker pool, a call from a non-main thread — forking there is
    unsafe under CPython — or another ``parallel_map`` already in
    flight: the module lock serialises use of the shared worker state,
    and a nested call from inside a worker inherits the held lock and
    degrades to serial rather than clobber it).  ``jobs <= 1`` or a
    single item runs serially without ever touching multiprocessing.

    When the calling thread has an active :mod:`repro.obs` trace, each
    worker item runs under its own tracer and ships its span tree and
    counter movement back with the result; both are grafted into the
    caller's trace/metrics, so a traced batch reads like one run.
    """
    global _WORKER_STATE
    items = list(items)
    jobs = max(1, min(int(jobs), len(items))) if items else 1
    if jobs == 1:
        return [_apply_serial(fn, item) for item in items], False

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return [_apply_serial(fn, item) for item in items], True

    if threading.current_thread() is not threading.main_thread():
        # Forking from a non-main thread while other threads run is
        # unsafe in CPython: the child can inherit another thread's
        # held interpreter lock (e.g. threading's limbo lock) and
        # deadlock before its worker loop even starts.  Threaded
        # callers get a correct serial answer instead.
        return [_apply_serial(fn, item) for item in items], True

    if not _WORKER_LOCK.acquire(blocking=False):
        # Another parallel_map holds the worker state — a concurrent
        # thread, or this *is* a nested call inside a forked worker
        # (which inherited the held lock).  Racing would run the wrong
        # fn; degrade to serial instead.
        return [_apply_serial(fn, item) for item in items], True

    results: list[tuple[object | None, str | None] | None] = [None] * len(items)
    pending = set(range(len(items)))
    degraded = False
    _WORKER_STATE = (fn, items, current_tracer() is not None)
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = {
                pool.submit(_worker_apply, index): index
                for index in range(len(items))
            }
            for future in as_completed(futures):
                try:
                    index, value, error, span_tree, metrics = future.result()
                except Exception:  # noqa: BLE001 - worker death ⇒ redo serially
                    degraded = True
                    continue
                tracer = current_tracer()
                if span_tree is not None and tracer is not None:
                    tracer.attach(span_tree)
                if metrics is not None:
                    merge_metrics(metrics)
                results[index] = (value, error)
                pending.discard(index)
    except Exception:  # noqa: BLE001 - pool-level failure ⇒ redo serially
        degraded = True
    finally:
        _WORKER_STATE = None
        _WORKER_LOCK.release()

    if pending:
        degraded = True
        for index in sorted(pending):
            results[index] = _apply_serial(fn, items[index])
    return results, degraded  # type: ignore[return-value]


def tree_reduce(values: Sequence, combine: Callable = None):
    """Reduce *values* by pairwise combination in a fixed tree order.

    The reduction tree depends only on ``len(values)`` — never on worker
    count or completion order — so floating-point sums are reproducible
    run-to-run: level by level, element ``2k`` combines with ``2k + 1``
    and an odd tail passes through unchanged.  The default *combine* is
    ``lambda a, b: a + b`` (numpy arrays sum elementwise).

    The training engine reduces per-shard gradient vectors with this so
    a sharded run's summed gradient is a pure function of the shard
    decomposition, not of how many processes computed the shards.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    if combine is None:
        combine = lambda a, b: a + b  # noqa: E731 - default pairwise sum
    while len(values) > 1:
        paired = [
            combine(values[k], values[k + 1])
            for k in range(0, len(values) - 1, 2)
        ]
        if len(values) % 2:
            paired.append(values[-1])
        values = paired
    return values[0]


@dataclass
class BatchItem:
    """Outcome of one design in a batch run."""

    name: str
    result: "AnalysisResult | None"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class BatchReport:
    """Everything a batch-analysis run produced.

    Attributes
    ----------
    items:
        Per-design outcomes, in submission order.
    jobs:
        Worker count the batch was asked to use.
    degraded:
        True when any work fell back to serial execution (dead workers,
        missing fork support).
    total_seconds:
        Wall-clock time for the whole batch.
    """

    items: list[BatchItem] = field(default_factory=list)
    jobs: int = 1
    degraded: bool = False
    total_seconds: float = 0.0

    @property
    def results(self) -> list["AnalysisResult"]:
        """Successful results only (submission order)."""
        return [item.result for item in self.items if item.ok]

    @property
    def num_failed(self) -> int:
        return sum(1 for item in self.items if not item.ok)

    def summary_lines(self) -> list[str]:
        lines = [
            f"batch: designs={len(self.items)} failed={self.num_failed} "
            f"jobs={self.jobs} degraded={str(self.degraded).lower()} "
            f"wall_s={self.total_seconds:.2f}"
        ]
        for item in self.items:
            if not item.ok:
                lines.append(f"  failed[{item.name}]: {item.error}")
        return lines


class BatchAnalyzer:
    """Fan a trained pipeline's analysis across worker processes.

    Parameters
    ----------
    pipeline:
        A trained :class:`~repro.core.pipeline.IRFusionPipeline` (workers
        inherit its model weights via fork, so it is never re-pickled).
    jobs:
        Worker count; defaults to the pipeline config's ``jobs`` field.
    """

    def __init__(
        self, pipeline: "IRFusionPipeline", jobs: int | None = None
    ) -> None:
        self.pipeline = pipeline
        self.jobs = int(jobs if jobs is not None else pipeline.config.jobs)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def analyze_designs(self, designs: Sequence["Design"]) -> BatchReport:
        """Analyse many synthetic designs; per-design failures are recorded."""
        counter_add("batch.items", len(designs))
        with span("batch", items=len(designs), jobs=self.jobs) as batch_span:
            outcomes, degraded = parallel_map(
                self.pipeline.analyze_design, designs, self.jobs
            )
        return BatchReport(
            items=[
                BatchItem(name=design.name, result=result, error=error)
                for design, (result, error) in zip(designs, outcomes)
            ],
            jobs=self.jobs,
            degraded=degraded,
            total_seconds=batch_span.duration,
        )

    def analyze_files(self, paths: Sequence) -> BatchReport:
        """Analyse many SPICE decks from disk."""
        counter_add("batch.items", len(paths))
        with span("batch", items=len(paths), jobs=self.jobs) as batch_span:
            outcomes, degraded = parallel_map(
                self.pipeline.analyze_file, paths, self.jobs
            )
        return BatchReport(
            items=[
                BatchItem(name=str(path), result=result, error=error)
                for path, (result, error) in zip(paths, outcomes)
            ],
            jobs=self.jobs,
            degraded=degraded,
            total_seconds=batch_span.duration,
        )
