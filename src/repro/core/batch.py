"""Parallel batch-analysis engine.

Fans independent per-design work (end-to-end analysis, training-set
feature extraction, gradient shards) across worker processes.  Since
PR 6 the default substrate is the persistent spawn-safe pool in
:mod:`repro.core.pool`:

- **spawn-safe**: the pool parallelizes correctly from non-main threads
  and under nesting — the cases the old fork-per-call engine had to
  degrade to serial;
- **supervised**: crashed workers are respawned and their items retried
  with backoff, hung items are killed at ``task_timeout``, repeat
  offenders are quarantined with a structured record, and a whole-batch
  ``deadline`` bounds the run (see :mod:`repro.core.pool`);
- **seed-deterministic**: results are keyed back to their submission
  index, so the output list is identical to a serial run regardless of
  completion order;
- **diagnostics-preserving**: every :class:`AnalysisResult` (including
  its :class:`~repro.diagnostics.RunDiagnostics`) crosses the process
  boundary intact;
- **gracefully degrading**: per-item exceptions are captured as data,
  and when the pool cannot run a job at all (unpicklable closure, no
  spawn support) the batch falls back to the legacy fork engine and,
  past that, to serial execution in the parent — never an exception.

Execution-mode selection (``mode=`` argument, overridden by the
``REPRO_POOL_MODE`` environment variable):

======== =============================================================
mode     behavior
======== =============================================================
auto     spawn pool, falling back to fork, falling back to serial
spawn    the supervised pool only (serial if it cannot run the job)
fork     the legacy fork-per-call engine (kept for bitwise-comparison
         tests and fork-specific regressions)
serial   in-process loop, no multiprocessing at all
======== =============================================================

Every fallback to serial execution increments the
``batch.serial_fallbacks`` counter and is surfaced as a note on
:class:`BatchReport`, so lost parallelism is visible to operators
instead of silent.  ``REPRO_CHAOS`` (a
:meth:`repro.testing.faults.WorkerFaultPlan.from_spec` string such as
``kill@1,flaky@3``) injects worker faults into every pool batch — the
hook the CI chaos-smoke job uses.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.pool import (
    PoolUnusableError,
    QuarantineRecord,
    TaskOutcome,
    WORKER_ENV,
    get_pool,
)
from repro.obs import (
    counter_add,
    counters_delta,
    current_tracer,
    merge_metrics,
    metrics_snapshot,
    span,
    trace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import AnalysisResult, IRFusionPipeline
    from repro.data.synthetic import Design

#: Execution modes accepted by :func:`parallel_map_ex` / ``REPRO_POOL_MODE``.
_MODES = ("auto", "spawn", "fork", "serial")


def _serial_fallback(reason: str, count: int = 1) -> None:
    """Record that *count* batches lost parallelism (obs + nothing else)."""
    counter_add("batch.serial_fallbacks", count)
    counter_add(f"batch.serial_fallbacks.{reason}", count)


# -- legacy fork engine --------------------------------------------------------

#: (fn, items, traced) inherited by forked workers; never pickled.
_WORKER_STATE: tuple[Callable, Sequence, bool] | None = None

#: Serialises use of :data:`_WORKER_STATE`.  Without it, overlapping
#: fork-path calls would clobber the shared state and fork workers
#: running the *wrong* ``fn``.  Held for the whole parallel section; a
#: contender that cannot take it degrades to serial execution instead
#: of racing.  Forked workers inherit a *held* copy of the lock, so a
#: nested fork-path call inside a worker lands on the serial path.
_WORKER_LOCK = threading.Lock()


def _worker_apply(index: int):
    """Run one item in a forked worker; exceptions become data.

    Returns ``(index, result, error, traceback, span_tree, metrics)``.
    The last two are ``None`` unless the parent had an active trace at
    fork time, in which case the item runs under its own tracer and
    ships the serialized span tree plus the counter movement it caused,
    so the parent can graft both into its run telemetry.
    """
    fn, items, traced = _WORKER_STATE
    if not traced:
        try:
            return index, fn(items[index]), None, None, None, None
        except Exception as exc:  # noqa: BLE001 - captured per item by design
            return (
                index,
                None,
                f"{type(exc).__name__}: {exc}",
                _traceback.format_exc(),
                None,
                None,
            )
    before = metrics_snapshot()
    result = error = error_tb = None
    with trace("item", index=index) as tracer:
        try:
            result = fn(items[index])
        except Exception as exc:  # noqa: BLE001 - captured per item by design
            error = f"{type(exc).__name__}: {exc}"
            error_tb = _traceback.format_exc()
    return (
        index,
        result,
        error,
        error_tb,
        tracer.root.to_dict(),
        counters_delta(before),
    )


def _apply_serial(fn: Callable, item, index: int) -> TaskOutcome:
    try:
        return TaskOutcome(index=index, result=fn(item))
    except Exception as exc:  # noqa: BLE001 - captured per item by design
        return TaskOutcome(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            traceback=_traceback.format_exc(),
        )


def _serial_map(fn: Callable, items: Sequence) -> list[TaskOutcome]:
    return [_apply_serial(fn, item, k) for k, item in enumerate(items)]


def _fork_map(
    fn: Callable, items: Sequence, jobs: int
) -> tuple[list[TaskOutcome], bool]:
    """The pre-pool fork engine: fork-per-call, main-thread-only.

    Kept behind ``mode="fork"`` for bitwise-comparison tests, and as the
    ``auto`` fallback when the pool cannot pickle a job (forked workers
    inherit closures and open state copy-on-write).  Returns
    ``(outcomes, degraded)`` with *degraded* True when any part of the
    batch had to run serially.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        _serial_fallback("no_fork")
        return _serial_map(fn, items), True

    if threading.current_thread() is not threading.main_thread():
        # Forking from a non-main thread while other threads run is
        # unsafe in CPython: the child can inherit another thread's held
        # interpreter lock and deadlock before its worker loop starts.
        _serial_fallback("fork_off_main_thread")
        return _serial_map(fn, items), True

    if not _WORKER_LOCK.acquire(blocking=False):
        # Another fork-path call holds the worker state — a concurrent
        # thread, or this *is* a nested call inside a forked worker
        # (which inherited the held lock).  Racing would run the wrong
        # fn; degrade to serial instead.
        _serial_fallback("fork_reentry")
        return _serial_map(fn, items), True

    global _WORKER_STATE
    results: list[TaskOutcome | None] = [None] * len(items)
    pending = set(range(len(items)))
    degraded = False
    _WORKER_STATE = (fn, items, current_tracer() is not None)
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = {
                pool.submit(_worker_apply, index): index
                for index in range(len(items))
            }
            for future in as_completed(futures):
                try:
                    index, value, error, tb, span_tree, metrics = (
                        future.result()
                    )
                except Exception:  # noqa: BLE001 - worker death ⇒ redo serially
                    degraded = True
                    continue
                tracer = current_tracer()
                if span_tree is not None and tracer is not None:
                    tracer.attach(span_tree)
                if metrics is not None:
                    merge_metrics(metrics)
                results[index] = TaskOutcome(
                    index=index, result=value, error=error, traceback=tb
                )
                pending.discard(index)
    except Exception:  # noqa: BLE001 - pool-level failure ⇒ redo serially
        degraded = True
    finally:
        _WORKER_STATE = None
        _WORKER_LOCK.release()

    if pending:
        degraded = True
        _serial_fallback("fork_worker_death")
        for index in sorted(pending):
            results[index] = _apply_serial(fn, items[index], index)
    return results, degraded  # type: ignore[return-value]


# -- pool engine + mode dispatch -----------------------------------------------


def _chaos_plan():
    """The ``REPRO_CHAOS`` worker-fault plan, or ``None``."""
    spec = os.environ.get("REPRO_CHAOS")
    if not spec:
        return None
    from repro.testing.faults import WorkerFaultPlan  # lazy: avoids a cycle

    return WorkerFaultPlan.from_spec(spec)


def _pool_map(
    fn: Callable,
    items: Sequence,
    jobs: int,
    task_timeout: float | None,
    retries: int | None,
    deadline: float | None,
    fault_plan,
    shm_threshold: int | None,
) -> list[TaskOutcome]:
    """Run the batch on the shared spawn pool; telemetry rides back."""
    tracer = current_tracer()
    result = get_pool(jobs).map(
        fn,
        items,
        jobs=jobs,
        timeout=task_timeout,
        retries=retries,
        deadline=deadline,
        fault_plan=fault_plan if fault_plan is not None else _chaos_plan(),
        traced=tracer is not None,
        shm_threshold=shm_threshold,
    )
    if tracer is not None:
        for payload in result.span_payloads:
            tracer.attach(payload)
        for payload in result.attempt_spans:
            tracer.attach(payload)
    return result.outcomes


def parallel_map_ex(
    fn: Callable,
    items: Sequence,
    jobs: int,
    *,
    task_timeout: float | None = None,
    retries: int | None = None,
    deadline: float | None = None,
    fault_plan=None,
    mode: str | None = None,
    shm_threshold: int | None = None,
) -> tuple[list[TaskOutcome], bool]:
    """Order-preserving supervised map of *fn* over *items*.

    Returns ``(outcomes, degraded)`` where ``outcomes[k]`` is the
    :class:`~repro.core.pool.TaskOutcome` for item *k* — a result, a
    captured error (with traceback and attempt count), or a
    :class:`~repro.core.pool.QuarantineRecord` — and *degraded* is True
    when any part of the batch fell back to serial execution.

    *task_timeout*, *retries* and *deadline* are honoured on the pool
    path (see :class:`~repro.core.pool.PoolOptions`); the fork and
    serial paths run each item once with no timeout.  *mode* picks the
    engine (``auto``/``spawn``/``fork``/``serial``, see the module
    docstring); the ``REPRO_POOL_MODE`` environment variable overrides
    it, and inside a pool worker the call always runs serially (workers
    are daemonic and cannot have children).

    On the pool path, large ndarrays in items and results cross via the
    shared-memory data plane (:mod:`repro.core.shm`) rather than the
    pipe; *shm_threshold* overrides the ambient externalization
    threshold (``REPRO_SHM_THRESHOLD``) for this batch, and ``0``
    forces inline transport.  Results are bitwise-identical either
    way; externalized result arrays are handed back as read-only
    views.

    When the calling thread has an active :mod:`repro.obs` trace, each
    worker item runs under its own tracer and ships its span tree and
    counter movement back with the result; both are grafted into the
    caller's trace/metrics, so a traced batch reads like one run.
    """
    items = list(items)
    jobs = max(1, min(int(jobs), len(items))) if items else 1
    mode = os.environ.get("REPRO_POOL_MODE") or mode or "auto"
    if mode not in _MODES:
        raise ValueError(f"unknown pool mode {mode!r}; expected one of {_MODES}")

    if jobs == 1:
        return _serial_map(fn, items), False
    if os.environ.get(WORKER_ENV):
        # Nested call inside a pool worker: daemonic processes cannot
        # have children, so run serially (correct, just not parallel).
        _serial_fallback("nested_in_worker")
        return _serial_map(fn, items), True
    if mode == "serial":
        return _serial_map(fn, items), False
    if mode == "fork":
        return _fork_map(fn, items, jobs)

    try:
        return (
            _pool_map(
                fn, items, jobs, task_timeout, retries, deadline, fault_plan,
                shm_threshold,
            ),
            False,
        )
    except PoolUnusableError:
        if mode == "auto":
            return _fork_map(fn, items, jobs)
        _serial_fallback("pool_unusable")
        return _serial_map(fn, items), True


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: int,
) -> tuple[list[tuple[object | None, str | None]], bool]:
    """Compatibility wrapper: :func:`parallel_map_ex` without the knobs.

    Returns ``(outcomes, degraded)`` where ``outcomes[k]`` is
    ``(result, None)`` on success or ``(None, "ErrType: message")`` on a
    per-item failure, and *degraded* is True when any part of the batch
    fell back to serial execution.  ``jobs <= 1`` or a single item runs
    serially without ever touching multiprocessing.
    """
    outcomes, degraded = parallel_map_ex(fn, items, jobs)
    return [(o.result, o.error) for o in outcomes], degraded


def tree_reduce(values: Sequence, combine: Callable = None):
    """Reduce *values* by pairwise combination in a fixed tree order.

    The reduction tree depends only on ``len(values)`` — never on worker
    count or completion order — so floating-point sums are reproducible
    run-to-run: level by level, element ``2k`` combines with ``2k + 1``
    and an odd tail passes through unchanged.  The default *combine* is
    ``lambda a, b: a + b`` (numpy arrays sum elementwise).

    The training engine reduces per-shard gradient vectors with this so
    a sharded run's summed gradient is a pure function of the shard
    decomposition, not of how many processes computed the shards.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    if combine is None:
        combine = lambda a, b: a + b  # noqa: E731 - default pairwise sum
    while len(values) > 1:
        paired = [
            combine(values[k], values[k + 1])
            for k in range(0, len(values) - 1, 2)
        ]
        if len(values) % 2:
            paired.append(values[-1])
        values = paired
    return values[0]


#: Worker-side pipeline cache keyed by (weight fingerprint, config repr).
#: A persistent pool worker analysing repeat jobs with the same trained
#: model skips the model rebuild + weight copy entirely; bounded so a
#: long-lived worker cycling through many models cannot grow without
#: limit.
_PIPELINE_CACHE: dict[tuple[str, str], object] = {}
_PIPELINE_CACHE_MAX = 4
#: Guards _PIPELINE_CACHE: the worker's heartbeat thread runs next to
#: task execution, and the serving daemon will run tasks concurrently.
_PIPELINE_CACHE_LOCK = threading.Lock()


class _PipelineTask:
    """Shippable per-deck analysis task with a worker-side model cache.

    In the parent this is a thin wrapper over a trained
    :class:`~repro.core.pipeline.IRFusionPipeline`; fork/serial engines
    call straight through.  Under the spawn pool it pickles as
    ``(method, config, channels, state_dict, fingerprint)`` — the state
    dict's arrays ride the shm transport, so weights ship once per
    (job, worker) as descriptors — and the worker rebuilds the pipeline
    once per fingerprint, caching it across tasks *and* jobs.  The
    fingerprint (:func:`repro.nn.serialize.state_fingerprint`) covers
    every weight byte, so a retrained model can never hit a stale
    cache entry.
    """

    def __init__(self, pipeline: "IRFusionPipeline", method: str) -> None:
        self.pipeline = pipeline
        self.method = method

    def __getstate__(self) -> dict:
        from repro.nn.serialize import state_fingerprint

        state = self.pipeline.model.state_dict()
        return {
            "method": self.method,
            "config": self.pipeline.config,
            "channels": self.pipeline._trained_channels,
            "state": state,
            "fingerprint": state_fingerprint(state),
        }

    def __setstate__(self, payload: dict) -> None:
        self.method = payload["method"]
        self.pipeline = None
        self._payload = payload

    def _rebuild(self) -> "IRFusionPipeline":
        payload = self._payload
        key = (payload["fingerprint"], repr(payload["config"]))
        with _PIPELINE_CACHE_LOCK:
            pipeline = _PIPELINE_CACHE.get(key)
        if pipeline is None:
            counter_add("batch.pipeline_cache_misses")
            from repro.core.pipeline import IRFusionPipeline

            pipeline = IRFusionPipeline(payload["config"])
            pipeline.load_model_state(payload["state"], payload["channels"])
            # The rebuild itself runs outside the lock (it is the slow
            # part); a racing duplicate build is resolved first-writer
            # -wins, same policy as the AMG setup cache.
            with _PIPELINE_CACHE_LOCK:
                winner = _PIPELINE_CACHE.get(key)
                if winner is not None:
                    pipeline = winner
                else:
                    while len(_PIPELINE_CACHE) >= _PIPELINE_CACHE_MAX:
                        _PIPELINE_CACHE.pop(next(iter(_PIPELINE_CACHE)))
                    _PIPELINE_CACHE[key] = pipeline
        else:
            counter_add("batch.pipeline_cache_hits")
        self.pipeline = pipeline
        return pipeline

    def __call__(self, item):
        pipeline = self.pipeline
        if pipeline is None:
            pipeline = self._rebuild()
        return getattr(pipeline, self.method)(item)


@dataclass
class BatchItem:
    """Outcome of one design in a batch run.

    ``error`` holds the one-line summary, ``traceback`` the full worker
    traceback when one was captured, ``attempts`` how many times the
    item ran (> 1 after crash/timeout/transient retries), and
    ``quarantine`` the structured record when the item was removed from
    the batch instead of resolved.
    """

    name: str
    result: "AnalysisResult | None"
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1
    quarantine: QuarantineRecord | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def quarantined(self) -> bool:
        return self.quarantine is not None


@dataclass
class BatchReport:
    """Everything a batch-analysis run produced.

    Attributes
    ----------
    items:
        Per-design outcomes, in submission order.
    jobs:
        Worker count the batch was asked to use.
    degraded:
        True when any work fell back to serial execution (dead workers,
        missing fork/spawn support, nested callers).
    total_seconds:
        Wall-clock time for the whole batch.
    notes:
        Operator-facing observations (lost parallelism, quarantines).
    """

    items: list[BatchItem] = field(default_factory=list)
    jobs: int = 1
    degraded: bool = False
    total_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def results(self) -> list["AnalysisResult"]:
        """Successful results only (submission order)."""
        return [item.result for item in self.items if item.ok]

    @property
    def num_failed(self) -> int:
        return sum(1 for item in self.items if not item.ok)

    @property
    def num_quarantined(self) -> int:
        return sum(1 for item in self.items if item.quarantined)

    def summary_lines(self) -> list[str]:
        lines = [
            f"batch: designs={len(self.items)} failed={self.num_failed} "
            f"jobs={self.jobs} degraded={str(self.degraded).lower()} "
            f"wall_s={self.total_seconds:.2f}"
        ]
        for item in self.items:
            if item.quarantined:
                record = item.quarantine
                lines.append(
                    f"  quarantined[{item.name}]: reason={record.reason} "
                    f"attempts={record.attempts} "
                    f"elapsed_s={record.elapsed_seconds:.2f}: {item.error}"
                )
            elif not item.ok:
                suffix = (
                    f" (attempts={item.attempts})" if item.attempts > 1 else ""
                )
                lines.append(f"  failed[{item.name}]: {item.error}{suffix}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return lines


class BatchAnalyzer:
    """Fan a trained pipeline's analysis across worker processes.

    Parameters
    ----------
    pipeline:
        A trained :class:`~repro.core.pipeline.IRFusionPipeline`.
    jobs:
        Worker count; defaults to the pipeline config's ``jobs`` field.
    task_timeout:
        Per-design budget in seconds (pool path); hung designs are
        killed, retried and eventually quarantined.
    retries:
        Extra attempts per design after a crash/timeout/transient error
        (pool default when ``None``).
    deadline:
        Whole-batch budget in seconds; unfinished designs are
        quarantined when it expires.
    """

    def __init__(
        self,
        pipeline: "IRFusionPipeline",
        jobs: int | None = None,
        *,
        task_timeout: float | None = None,
        retries: int | None = None,
        deadline: float | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.jobs = int(jobs if jobs is not None else pipeline.config.jobs)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.task_timeout = task_timeout
        self.retries = retries
        self.deadline = deadline

    def _run(self, fn: Callable, names: list[str], work: Sequence) -> BatchReport:
        counter_add("batch.items", len(work))
        with span("batch", items=len(work), jobs=self.jobs) as batch_span:
            outcomes, degraded = parallel_map_ex(
                fn,
                work,
                self.jobs,
                task_timeout=self.task_timeout,
                retries=self.retries,
                deadline=self.deadline,
                shm_threshold=self.pipeline.config.shm_threshold,
            )
        report = BatchReport(
            items=[
                BatchItem(
                    name=name,
                    result=outcome.result,
                    error=outcome.error,
                    traceback=outcome.traceback,
                    attempts=outcome.attempts,
                    quarantine=outcome.quarantine,
                )
                for name, outcome in zip(names, outcomes)
            ],
            jobs=self.jobs,
            degraded=degraded,
            total_seconds=batch_span.duration,
        )
        if degraded and self.jobs > 1:
            note = (
                "parallelism degraded: part of the batch ran serially "
                "(see the batch.serial_fallbacks counter)"
            )
            report.notes.append(note)
            for item in report.items:
                if item.ok and item.result.diagnostics is not None:
                    item.result.diagnostics.warnings.append(note)
        if report.num_quarantined:
            report.notes.append(
                f"{report.num_quarantined} item(s) quarantined; see "
                "quarantine records above"
            )
        retried = sum(1 for item in report.items if item.attempts > 1)
        if retried:
            report.notes.append(f"{retried} item(s) needed retries")
        return report

    def _task(self, method: str) -> Callable:
        """Per-design callable for the pool.

        Trained pipelines ship as a :class:`_PipelineTask` so spawn
        workers can cache the rebuilt model by weight fingerprint (and
        the weights themselves ride the shm transport); untrained
        pipelines (ML disabled / numerical-only) fall back to the plain
        bound method.
        """
        pipeline = self.pipeline
        if pipeline.model is not None and pipeline._trained_channels is not None:
            return _PipelineTask(pipeline, method)
        return getattr(pipeline, method)

    def analyze_designs(self, designs: Sequence["Design"]) -> BatchReport:
        """Analyse many synthetic designs; per-design failures are recorded."""
        return self._run(
            self._task("analyze_design"),
            [design.name for design in designs],
            designs,
        )

    def analyze_files(self, paths: Sequence) -> BatchReport:
        """Analyse many SPICE decks from disk."""
        return self._run(
            self._task("analyze_file"), [str(path) for path in paths], paths
        )
