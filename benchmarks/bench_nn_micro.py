"""Micro-benchmarks for the numpy NN framework.

Throughput of the hot kernels (conv forward/backward, CBAM, Inception)
and full-model inference for every registered architecture — the numbers
that explain the ML share of the Table-I runtime column.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.registry import MODEL_REGISTRY, create_model
from repro.nn.attention import CBAM
from repro.nn.inception import InceptionB
from repro.nn.layers import Conv2d

SHAPE = (2, 8, 32, 32)


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).standard_normal(SHAPE)


def test_benchmark_conv_forward(benchmark, x):
    conv = Conv2d(8, 8, 3, rng=np.random.default_rng(1))
    out = benchmark(lambda: conv(x))
    assert out.shape == SHAPE


def test_benchmark_conv_backward(benchmark, x):
    conv = Conv2d(8, 8, 3, rng=np.random.default_rng(1))
    out = conv(x)
    grad = np.ones_like(out)
    benchmark(lambda: conv.backward(grad))


def test_benchmark_cbam(benchmark, x):
    cbam = CBAM(8, rng=np.random.default_rng(1))
    out = benchmark(lambda: cbam(x))
    assert out.shape == SHAPE


def test_benchmark_inception_b(benchmark, x):
    block = InceptionB(8, 8, rng=np.random.default_rng(1))
    out = benchmark(lambda: block(x))
    assert out.shape == SHAPE


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_benchmark_model_inference(benchmark, name, x):
    model = create_model(name, in_channels=8, base_channels=6, depth=3, seed=0)
    model.eval()
    out = benchmark(lambda: model(x))
    assert out.shape == (2, 1, 32, 32)


def test_benchmark_ir_fusion_training_step(benchmark, x):
    from repro.nn.losses import MAELoss
    from repro.nn.optim import Adam

    model = create_model("ir_fusion", in_channels=8, base_channels=6, depth=3)
    loss = MAELoss()
    optimizer = Adam(model.parameters(), lr=1e-3)
    target = np.zeros((2, 1, 32, 32))

    def step():
        prediction = model(x)
        loss.forward(prediction, target)
        model.zero_grad()
        model.backward(loss.backward())
        optimizer.step()

    benchmark(step)
