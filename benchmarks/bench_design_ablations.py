"""Ablations of this reproduction's own design decisions (DESIGN.md §6).

Not a paper figure: these benches quantify the engineering choices the
reproduction makes on top of the paper's description, so future changes
can be judged against them.

1. **Flat initial guess** — rough-solution quality at 2 iterations from
   ``v = vdd`` versus ``x0 = 0``.
2. **Zero-initialised head** — short-budget training with the fusion
   starting point versus a randomly initialised head.
3. **Numerical-channel scaling** — well-conditioned (scale = label
   scale) versus badly scaled numerical inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import bench_config, save_artifact
from repro.core.pipeline import IRFusionPipeline
from repro.eval.evaluate import evaluate_trainer
from repro.features.fusion import FeatureConfig
from repro.mna.stamper import build_reduced_system
from repro.solvers.amg_pcg import AMGPCGSolver
from repro.solvers.base import SolverOptions
from repro.solvers.direct import DirectSolver
from repro.solvers.powerrush import PRESETS
from repro.train.trainer import TrainConfig


def _small_config(**overrides):
    return bench_config(
        num_fake=8,
        num_real_train=3,
        num_real_test=2,
        train=TrainConfig(epochs=8, batch_size=8, use_curriculum=True),
        **overrides,
    )


def test_flat_start_ablation(benchmark, capsys):
    """Rough MAE at 2 iterations: flat v=vdd start vs zero start."""

    def run():
        config = bench_config()
        pipeline = IRFusionPipeline(config)
        designs, _ = pipeline.generate_designs()
        amg_options, cycle_options = PRESETS["fast"]
        rows = []
        for design in designs[:4]:
            system = build_reduced_system(design.grid)
            golden = DirectSolver().solve(system.matrix, system.rhs).x
            vdd = design.spec.supply_voltage
            solver = AMGPCGSolver(
                SolverOptions(max_iterations=2, tol=1e-16),
                amg_options,
                cycle_options,
            )
            zero = solver.solve(system.matrix, system.rhs).x
            flat = solver.solve(
                system.matrix, system.rhs, x0=np.full(system.size, vdd)
            ).x
            rows.append(
                (
                    design.name,
                    float(np.abs(zero - golden).mean()),
                    float(np.abs(flat - golden).mean()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Design ablation 1: initial guess for the rough solve (2 iters)",
        f"{'design':<12s} {'zero-start MAE':>15s} {'flat-start MAE':>15s}",
    ]
    for name, zero_mae, flat_mae in rows:
        lines.append(f"{name:<12s} {zero_mae * 1e4:>13.1f}e-4 {flat_mae * 1e4:>13.1f}e-4")
    text = "\n".join(lines)
    save_artifact("design_ablation_flat_start.txt", text)
    with capsys.disabled():
        print("\n" + text)
    # the flat start must win on every design, usually by a lot
    assert all(flat < zero for _, zero, flat in rows)


def test_zero_init_head_ablation(benchmark, capsys):
    """Short-budget training: fusion starting point vs random head."""

    def run():
        results = {}
        for variant in ("zero_head", "random_head"):
            config = _small_config()
            pipeline = IRFusionPipeline(config)
            train_raw, test = pipeline.build_datasets()
            prepared = pipeline.prepare_training_set(train_raw)
            model = pipeline.build_model(in_channels=len(prepared.channels))
            if variant == "random_head":
                rng = np.random.default_rng(123)
                model.head.weight.data[:] = 0.05 * rng.standard_normal(
                    model.head.weight.data.shape
                )
            from repro.models.registry import preferred_loss
            from repro.train.trainer import Trainer

            trainer = Trainer(
                model, loss=preferred_loss("ir_fusion"), config=config.train
            )
            trainer.fit(prepared)
            _, averaged = evaluate_trainer(trainer, test)
            results[variant] = averaged
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Design ablation 2: regression-head initialisation (8 epochs)",
        f"{'variant':<14s} {'MAE(1e-4V)':>11s} {'F1':>6s}",
    ]
    for variant, metrics in results.items():
        lines.append(
            f"{variant:<14s} {metrics.mae * 1e4:>11.2f} {metrics.f1:>6.3f}"
        )
    text = "\n".join(lines)
    save_artifact("design_ablation_zero_head.txt", text)
    with capsys.disabled():
        print("\n" + text)
    # starting at the numerical solution should not hurt (usually helps)
    assert results["zero_head"].mae <= results["random_head"].mae * 1.25


def test_numerical_scale_ablation(benchmark, capsys):
    """Numerical channels at label scale vs badly conditioned."""

    def run():
        results = {}
        for label, scale in (("matched", 20.0), ("tiny", 0.01)):
            config = _small_config().with_(
                features=FeatureConfig(numerical_scale=scale)
            )
            pipeline = IRFusionPipeline(config)
            pipeline.train()
            _, test = pipeline.build_datasets()
            _, averaged = evaluate_trainer(pipeline.trainer, test)
            results[label] = averaged
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Design ablation 3: numerical channel scaling (8 epochs)",
        f"{'variant':<10s} {'MAE(1e-4V)':>11s} {'F1':>6s}",
    ]
    for label, metrics in results.items():
        lines.append(
            f"{label:<10s} {metrics.mae * 1e4:>11.2f} {metrics.f1:>6.3f}"
        )
    text = "\n".join(lines)
    save_artifact("design_ablation_numerical_scale.txt", text)
    with capsys.disabled():
        print("\n" + text)
    # note: residual learning keeps even badly scaled inputs usable; the
    # matched scale should not be (meaningfully) worse
    assert results["matched"].mae <= results["tiny"].mae * 1.25
